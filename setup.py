"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools/pip lack PEP 660 editable-wheel support
(the legacy ``setup.py develop`` path needs no ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A+ Indexes: Tunable and Space-Efficient Adjacency "
        "Lists in Graph Database Management Systems' (ICDE 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
