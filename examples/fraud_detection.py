"""Fraud detection on a synthetic transfer network (the Table IV scenario).

Generates a financial transfer graph (accounts with ``acc``/``city``
properties, transfers with ``amt``/``date``/``currency``), then shows how the
same money-flow queries get progressively faster as the A+ indexing subsystem
is tuned:

1. primary index only (configuration ``D``),
2. plus the city-sorted vertex-partitioned view ``VPc`` — WCOJ MULTI-EXTEND
   plans become available for the city-equality patterns,
3. plus the money-flow edge-partitioned view ``EPc`` — plans can jump straight
   from a matched transfer to the qualifying follow-up transfers.

Run with::

    python examples/fraud_detection.py
"""

from __future__ import annotations

import time

from repro import Database, Direction
from repro.graph.generators import FinancialGraphSpec, generate_financial_graph
from repro.workloads import fraud


def build_graph():
    spec = FinancialGraphSpec(num_vertices=2000, num_edges=24000, num_cities=48, seed=42)
    graph = generate_financial_graph(spec)
    print(f"generated transfer network: {graph.describe()}")
    return graph


def timed_run(db, query):
    started = time.perf_counter()
    result = db.run(query)
    elapsed = time.perf_counter() - started
    return result.count, elapsed


def main() -> None:
    graph = build_graph()
    queries = fraud.build_workload(graph, selectivity=0.05)
    alpha = fraud.amount_alpha(graph, 0.05)
    print(f"money-flow cut alpha = {alpha} (5% selectivity)\n")

    # Configuration D: primary index only.
    plain = Database(graph)

    # Configuration D+VPc.
    with_vpc = Database(graph)
    vpc_view, vpc_config = fraud.vpc_view_and_config()
    creation = with_vpc.create_vertex_index(
        vpc_view,
        directions=(Direction.FORWARD, Direction.BACKWARD),
        config=vpc_config,
        name="VPc",
    )
    print(f"created VPc ({creation.indexed_edges} offsets) in {creation.seconds:.2f}s")

    # Configuration D+VPc+EPc.
    with_epc = Database(graph)
    with_epc.create_vertex_index(
        vpc_view,
        directions=(Direction.FORWARD, Direction.BACKWARD),
        config=vpc_config,
        name="VPc",
    )
    epc_view, epc_config = fraud.epc_view_and_config(alpha)
    creation = with_epc.create_edge_index(epc_view, config=epc_config, name="EPc")
    print(
        f"created EPc ({creation.indexed_edges} qualifying 2-hop entries) "
        f"in {creation.seconds:.2f}s\n"
    )

    configs = {"D": plain, "D+VPc": with_vpc, "D+VPc+EPc": with_epc}
    for name in ("MF1", "MF3", "MF5"):
        query = queries[name]
        print(f"--- {name} ---")
        baseline = None
        for config_name, db in configs.items():
            count, seconds = timed_run(db, query)
            speedup = f"  ({baseline / seconds:.1f}x vs D)" if baseline else ""
            print(f"  {config_name:<12} {seconds:7.3f}s  {count} matches{speedup}")
            if baseline is None:
                baseline = seconds
        print()

    print("plan for MF3 under D+VPc+EPc (the paper's Figure 6 analogue):")
    print(with_epc.plan(queries["MF3"]).describe())
    print()

    print("memory cost of the tuning:")
    for config_name, db in configs.items():
        megabytes = db.memory_report().total_megabytes()
        print(f"  {config_name:<12} {megabytes:8.2f} MB")


if __name__ == "__main__":
    main()
