"""Tuning the primary A+ index for a labelled subgraph workload (Table II).

Generates a ``G_{4,2}``-style labelled graph (4 vertex labels, 2 edge labels)
and evaluates a few labelled subgraph queries under the three primary-index
configurations of the paper:

* ``D``  — partition by edge label, sort by neighbour ID,
* ``Ds`` — additionally sort by neighbour label (no memory overhead), and
* ``Dp`` — additionally *partition* by neighbour label (small overhead).

It also shows the DDL-level interface (``RECONFIGURE PRIMARY INDEXES``) and
how the plans change: under ``Dp`` the neighbour-label predicate disappears
from the plan because the right sub-list is addressed directly.

Run with::

    python examples/index_tuning.py
"""

from __future__ import annotations

import time

from repro import Database
from repro.bench.harness import config_d, config_dp, config_ds
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.workloads import labelled_subgraph

QUERIES = ("SQ1", "SQ4", "SQ8", "SQ11")
VERTEX_LABELS, EDGE_LABELS = 4, 2


def main() -> None:
    graph = generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=3000,
            num_edges=42000,
            num_vertex_labels=VERTEX_LABELS,
            num_edge_labels=EDGE_LABELS,
            seed=17,
        )
    )
    print(f"generated labelled graph: {graph.describe()}\n")
    queries = labelled_subgraph.build_workload(
        VERTEX_LABELS, EDGE_LABELS, names=QUERIES
    )

    configs = {"D": config_d(), "Ds": config_ds(), "Dp": config_dp()}
    databases = {}
    for name, config in configs.items():
        started = time.perf_counter()
        databases[name] = Database(graph, primary_config=config)
        build_seconds = time.perf_counter() - started
        megabytes = databases[name].memory_report().total_megabytes()
        print(f"built {name:<3} ({config.describe()}) in {build_seconds:.2f}s, {megabytes:.2f} MB")
    print()

    for query_name, query in queries.items():
        print(f"--- {query_name} ---")
        baseline = None
        for config_name, db in databases.items():
            result = db.run(query)
            speedup = f"  ({baseline / result.seconds:.2f}x vs D)" if baseline else ""
            print(
                f"  {config_name:<3} {result.seconds:7.3f}s  {result.count} matches{speedup}"
            )
            if baseline is None:
                baseline = result.seconds
        print()

    print("plan for SQ4 under D (neighbour labels filtered per edge):")
    print(databases["D"].plan(queries["SQ4"]).describe())
    print()
    print("plan for SQ4 under Dp (neighbour labels addressed as partitions):")
    print(databases["Dp"].plan(queries["SQ4"]).describe())
    print()

    print("the same tuning through the DDL interface:")
    db = Database(graph)
    result = db.execute_ddl(
        "RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label, vnbr.label SORT BY vnbr.ID"
    )
    print(
        f"  RECONFIGURE PRIMARY INDEXES ... applied in {result.seconds:.2f}s; "
        f"new config: {db.primary_index.config.describe()}"
    )


if __name__ == "__main__":
    main()
