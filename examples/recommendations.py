"""MagicRecs-style recommendations on a follower graph (the Table III scenario).

Generates a follower network whose edges carry a ``time`` property and runs
the MagicRecs queries: for a user ``a1``, find the users ``a2..ak`` that
``a1`` started following recently and recommend their common followers.

The example contrasts the system's default configuration ``D`` with ``D+VPt``,
a secondary vertex-partitioned index whose lists are sorted on the edge
``time`` property.  Because the index shares the primary index's partitioning
levels and stores only offset lists, the extra memory is a few percent, while
the recently-followed predicate is answered by binary search.

Run with::

    python examples/recommendations.py
"""

from __future__ import annotations

import time

from repro import Database, Direction
from repro.bench.harness import vpt_view_and_config
from repro.graph.generators import SocialGraphSpec, generate_social_graph
from repro.workloads import magicrecs


def main() -> None:
    graph = generate_social_graph(
        SocialGraphSpec(num_vertices=3000, num_edges=36000, seed=9)
    )
    print(f"generated follower graph: {graph.describe()}")

    queries = magicrecs.build_workload(graph, selectivity=0.05)
    alpha = magicrecs.time_threshold(graph, 0.05)
    print(f"'recently followed' threshold alpha = {alpha} (5% of edges)\n")

    default_db = Database(graph)

    tuned_db = Database(graph)
    view, config = vpt_view_and_config()
    creation = tuned_db.create_vertex_index(
        view, directions=(Direction.FORWARD,), config=config, name="VPt"
    )
    print(
        f"created VPt ({creation.indexed_edges} offsets, shares the primary's "
        f"partitioning levels) in {creation.seconds:.2f}s\n"
    )

    for name, query in queries.items():
        print(f"--- {name} ---")
        for config_name, db in (("D", default_db), ("D+VPt", tuned_db)):
            started = time.perf_counter()
            result = db.run(query)
            elapsed = time.perf_counter() - started
            print(
                f"  {config_name:<7} {elapsed:7.3f}s  {result.count} recommendations, "
                f"{result.stats.predicate_evaluations} predicate evaluations"
            )
        print()

    print("plan for MR1 under D+VPt (time predicate answered by binary search):")
    print(tuned_db.plan(queries["MR1"]).describe())
    print()

    base_mb = default_db.memory_report().total_megabytes()
    tuned_mb = tuned_db.memory_report().total_megabytes()
    print(
        f"index memory: D = {base_mb:.2f} MB, D+VPt = {tuned_mb:.2f} MB "
        f"({tuned_mb / base_mb:.2f}x)"
    )


if __name__ == "__main__":
    main()
