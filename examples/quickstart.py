"""Quickstart: the paper's running example (Figure 1) end to end.

Builds the small financial graph from Figure 1 of the paper, opens a
:class:`repro.Database` on it, runs the 2-hop queries of Examples 1, 2 and 4
(Section II / III-A), and then tunes the system exactly as the paper does:
first by reconfiguring the primary A+ index with a nested ``currency``
partition, then by creating the ``LargeUSDTrnx`` secondary vertex-partitioned
view of Example 6.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, QueryGraph, cmp, prop
from repro.graph import running_example_graph


def example_1_two_hop(db: Database) -> None:
    """Example 1: MATCH c1-[r1]->a1-[r2]->a2 WHERE c1.name = 'Alice'."""
    query = QueryGraph("example-1")
    query.add_vertex("c1", label="Customer")
    query.add_vertex("a1", label="Account")
    query.add_vertex("a2", label="Account")
    query.add_edge("c1", "a1", name="r1")
    query.add_edge("a1", "a2", name="r2")
    query.add_predicate(cmp(prop("c1", "name"), "=", "Alice"))

    result = db.run(query, materialize=True)
    print("Example 1 — accounts reachable in two hops from Alice:")
    print(db.plan(query).describe())
    print(f"  {result.count} matches, e.g. {result.matches[:3]}\n")


def example_2_owns_then_wire(db: Database) -> None:
    """Example 2: label-partitioned access (Owns then Wire)."""
    query = QueryGraph("example-2")
    query.add_vertex("c1", label="Customer")
    query.add_vertex("a1", label="Account")
    query.add_vertex("a2", label="Account")
    query.add_edge("c1", "a1", label="Owns", name="r1")
    query.add_edge("a1", "a2", label="Wire", name="r2")
    query.add_predicate(cmp(prop("c1", "name"), "=", "Alice"))

    print("Example 2 — wire transfers from accounts Alice owns:")
    print(f"  {db.count(query)} matches\n")


def example_4_currency_partition(db: Database) -> None:
    """Example 4: reconfigure the primary index to partition by currency."""
    query = QueryGraph("example-4")
    query.add_vertex("c1", label="Customer")
    query.add_vertex("a1", label="Account")
    query.add_vertex("a2", label="Account")
    query.add_edge("c1", "a1", label="Owns", name="r1")
    query.add_edge("a1", "a2", label="Wire", name="r2")
    query.add_predicate(cmp(prop("c1", "name"), "=", "Alice"))
    query.add_predicate(cmp(prop("r2", "currency"), "=", "USD"))

    print("Example 4 — USD wires from Alice's accounts, before tuning:")
    print(db.plan(query).describe())

    result = db.execute_ddl(
        "RECONFIGURE PRIMARY INDEXES "
        "PARTITION BY eadj.label, eadj.currency "
        "SORT BY vnbr.ID"
    )
    print(f"\n  reconfigured primary indexes in {result.seconds * 1000:.1f} ms")
    print("after tuning (currency now addressed as a partition, no filter):")
    print(db.plan(query).describe())
    print(f"  {db.count(query)} matches\n")


def example_6_secondary_view(db: Database) -> None:
    """Example 6: the LargeUSDTrnx 1-hop view as a secondary index."""
    creation = db.execute_ddl(
        "CREATE 1-HOP VIEW LargeUSDTrnx "
        "MATCH vs-[eadj]->vd "
        "WHERE eadj.currency=USD, eadj.amt>100 "
        "INDEX AS FW-BW "
        "PARTITION BY eadj.label SORT BY vnbr.ID"
    )
    print(
        f"Example 6 — created secondary indexes {creation.names} "
        f"({creation.indexed_edges} indexed edges) in {creation.seconds * 1000:.1f} ms"
    )

    query = QueryGraph("large-usd")
    query.add_vertex("a1", label="Account")
    query.add_vertex("a2", label="Account")
    query.add_edge("a1", "a2", name="t")
    query.add_predicate(cmp(prop("t", "currency"), "=", "USD"))
    query.add_predicate(cmp(prop("t", "amt"), ">", 150))
    plan = db.plan(query)
    print("plan for 'USD transfers above 150' (uses the view):")
    print(plan.describe())
    print(f"  {db.count(query)} matches\n")


def main() -> None:
    graph = running_example_graph()
    db = Database(graph)
    print(f"loaded {graph.describe()}\n")

    example_1_two_hop(db)
    example_2_owns_then_wire(db)
    example_4_currency_partition(db)
    example_6_secondary_view(db)

    print("index memory breakdown:")
    print(db.memory_report().format_table())


if __name__ == "__main__":
    main()
