"""Ablation — offset lists vs bitmaps for secondary vertex-partitioned indexes.

Section III-B3 discusses a bitmap design as an alternative to offset lists:
one bit per primary-index edge, valid only when the secondary index keeps the
primary's sort order.  The trade-off the paper describes, reproduced here by
sweeping the view's selectivity:

* at low selectivity (view keeps most edges) bitmaps are smaller,
* as the view becomes more selective, offset lists shrink with it while the
  bitmap stays the same size, and the bitmap's access cost (one bit test per
  primary edge in the list) stays flat while the offset list touches only the
  qualifying edges.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.graph import Direction
from repro.index.bitmap import BitmapSecondaryIndex
from repro.index.config import IndexConfig
from repro.index.primary import PrimaryIndex
from repro.index.vertex_partitioned import VertexPartitionedIndex
from repro.index.views import OneHopView
from repro.bench.reporting import Table
from repro.predicates import Predicate, cmp, prop
from repro.workloads.datasets import financial_dataset

from common import BENCH_SCALE, print_header

#: View selectivities swept by the ablation (fraction of edges kept).
SELECTIVITIES = (0.8, 0.4, 0.2, 0.1, 0.05, 0.01)


def _graph():
    return financial_dataset("wt", scale=BENCH_SCALE)


def _view(selectivity: float) -> OneHopView:
    # Amounts are uniform in [1, 1000]: amt <= 1000 * selectivity keeps
    # roughly the requested fraction of edges.
    threshold = int(1000 * selectivity)
    return OneHopView(
        name=f"amt-below-{threshold}",
        predicate=Predicate.of(cmp(prop("eadj", "amt"), "<=", threshold)),
    )


def run_experiment():
    graph = _graph()
    primary = PrimaryIndex(graph)
    rows: List[dict] = []
    for selectivity in SELECTIVITIES:
        view = _view(selectivity)
        offsets = VertexPartitionedIndex(
            graph, view, Direction.FORWARD, IndexConfig.default(), primary.forward
        )
        bitmap = BitmapSecondaryIndex(graph, view, Direction.FORWARD, primary.forward)
        bitmap_cost = sum(
            bitmap.access_cost(v) for v in range(graph.num_vertices)
        )
        offset_cost = offsets.num_indexed_edges
        breakdown = offsets.memory_breakdown()
        rows.append(
            {
                "selectivity": selectivity,
                "indexed_edges": offsets.num_indexed_edges,
                # Compare the list payloads of the two techniques; the CSR
                # partition levels an offset-list index may need are reported
                # separately since a bitmap cannot support re-partitioning at all.
                "offset_bytes": breakdown.offset_list_bytes,
                "offset_level_bytes": breakdown.partition_level_bytes,
                "bitmap_bytes": bitmap.nbytes(),
                "offset_cost": offset_cost,
                "bitmap_cost": bitmap_cost,
            }
        )
    return rows


def build_table(rows) -> Table:
    table = Table(
        title="Ablation — offset lists vs bitmaps (forward secondary index)",
        columns=[
            "view selectivity",
            "indexed edges",
            "offset-list bytes",
            "offset level bytes",
            "bitmap bytes",
            "entries touched/scan (offsets)",
            "bit tests/scan (bitmap)",
        ],
    )
    for row in rows:
        table.add_row(
            row["selectivity"],
            row["indexed_edges"],
            row["offset_bytes"],
            row["offset_level_bytes"],
            row["bitmap_bytes"],
            row["offset_cost"],
            row["bitmap_cost"],
        )
    table.add_note(
        "expected crossover: bitmaps win on storage only while the view keeps "
        "most edges; their access cost never drops with selectivity"
    )
    return table


@pytest.mark.parametrize("selectivity", [0.4, 0.05])
def test_benchmark_offset_index_build(benchmark, selectivity):
    graph = _graph()
    primary = PrimaryIndex(graph)
    view = _view(selectivity)
    benchmark.extra_info["selectivity"] = selectivity
    index = benchmark(
        lambda: VertexPartitionedIndex(
            graph, view, Direction.FORWARD, IndexConfig.default(), primary.forward
        )
    )
    assert index.num_indexed_edges >= 0


@pytest.mark.parametrize("selectivity", [0.4, 0.05])
def test_benchmark_bitmap_index_build(benchmark, selectivity):
    graph = _graph()
    primary = PrimaryIndex(graph)
    view = _view(selectivity)
    benchmark.extra_info["selectivity"] = selectivity
    index = benchmark(
        lambda: BitmapSecondaryIndex(graph, view, Direction.FORWARD, primary.forward)
    )
    assert index.num_indexed_edges >= 0


def main() -> None:
    print_header("Ablation — offset lists vs bitmaps (Section III-B3 discussion)")
    print(build_table(run_experiment()).render())


if __name__ == "__main__":
    main()
