"""Table V — comparison against fixed-adjacency-list baseline engines.

The paper compares GraphflowDB (configs D and Dp) against Neo4j and TigerGraph
on SQ1, SQ2, SQ3 and SQ13.  The closed-source systems are modelled here by the
baseline engines of :mod:`repro.baselines`, which share the executor but are
pinned to a fixed adjacency-list structure (see DESIGN.md for the
substitution).  The point being reproduced is the *mechanism*: the baselines
have no way to be tuned (no reconfiguration, no secondary indexes, no tunable
sort), so the A+-tuned configuration Dp wins or closes the gap on join-heavy
queries.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines import Neo4jLikeEngine, TigerGraphLikeEngine
from repro.bench.harness import config_d, config_dp, database_with_primary_config
from repro.bench.reporting import Table
from repro.workloads import WorkloadRunner, labelled_subgraph
from repro.workloads.datasets import labelled_dataset

from common import BENCH_SCALE, REPETITIONS, TABLE5_DATASETS, TABLE5_LABELS, print_header

QUERIES = ("SQ1", "SQ2", "SQ3", "SQ13")
#: Label alphabets per dataset, mirroring LJ_{12,2} and WT_{4,2} in the paper.
LABELS = TABLE5_LABELS

#: Paper runtimes (seconds) for WT_{4,2}, for shape reference only.
PAPER_WT42 = {
    "GraphflowDB-D": {"SQ1": 0.6, "SQ2": 4.6, "SQ3": 5.5, "SQ13": 767.5},
    "GraphflowDB-Dp": {"SQ1": 0.3, "SQ2": 2.1, "SQ3": 3.1, "SQ13": 235.7},
    "TigerGraph": {"SQ1": 1.6, "SQ2": 7.1, "SQ3": 10.2, "SQ13": 29.5},
    "Neo4j": {"SQ1": 1650.0, "SQ2": 876.0, "SQ3": 82.9, "SQ13": None},
}


def engines_for(graph) -> Dict[str, object]:
    return {
        "GraphflowDB-D": database_with_primary_config(graph, "D", config_d()).database,
        "GraphflowDB-Dp": database_with_primary_config(graph, "Dp", config_dp()).database,
        "TigerGraph-like": TigerGraphLikeEngine(graph),
        "Neo4j-like": Neo4jLikeEngine(graph),
    }


def run_experiment(dataset: str):
    vertex_labels, edge_labels = LABELS[dataset]
    graph = labelled_dataset(dataset, vertex_labels, edge_labels, scale=BENCH_SCALE)
    queries = labelled_subgraph.build_workload(
        vertex_labels, edge_labels, names=QUERIES
    )
    measurements = {}
    for name, engine in engines_for(graph).items():
        runner = WorkloadRunner(engine, name)
        measurements[name] = runner.run(queries, repetitions=REPETITIONS)
    return measurements


def build_table(dataset: str, measurements) -> Table:
    vertex_labels, edge_labels = LABELS[dataset]
    table = Table(
        title=(
            f"Table V — system comparison on "
            f"{dataset.upper()}_{{{vertex_labels},{edge_labels}}} stand-in (seconds)"
        ),
        columns=["engine"] + [f"{q}" for q in QUERIES] + ["paper (WT_{4,2}) SQ1/SQ13"],
    )
    paper_keys = {
        "GraphflowDB-D": "GraphflowDB-D",
        "GraphflowDB-Dp": "GraphflowDB-Dp",
        "TigerGraph-like": "TigerGraph",
        "Neo4j-like": "Neo4j",
    }
    for name, measurement in measurements.items():
        paper = PAPER_WT42[paper_keys[name]]
        paper_note = f"{paper['SQ1']} / {paper['SQ13'] if paper['SQ13'] is not None else '>1800'}"
        table.add_row(
            name,
            *[measurement.runtime(q) for q in QUERIES],
            paper_note,
        )
    table.add_note(
        "baselines are fixed-structure models of the commercial systems (see "
        "DESIGN.md); the reproduced claim is that they cannot be tuned, not "
        "their absolute constants"
    )
    return table


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def wt_engines():
    vertex_labels, edge_labels = LABELS["brk"]
    graph = labelled_dataset("brk", vertex_labels, edge_labels, scale=BENCH_SCALE)
    return engines_for(graph)


@pytest.mark.parametrize(
    "engine_name", ["GraphflowDB-D", "GraphflowDB-Dp", "TigerGraph-like", "Neo4j-like"]
)
def test_benchmark_sq1_across_engines(benchmark, wt_engines, engine_name):
    vertex_labels, edge_labels = LABELS["brk"]
    query = labelled_subgraph.build_query("SQ1", vertex_labels, edge_labels)
    engine = wt_engines[engine_name]
    plan = engine.plan(query)
    benchmark.extra_info["engine"] = engine_name
    count = benchmark(lambda: engine.run(plan).count)
    assert count >= 0


def main() -> None:
    print_header("Table V — GraphflowDB (D, Dp) vs fixed-structure baselines")
    for dataset in TABLE5_DATASETS:
        measurements = run_experiment(dataset)
        print(build_table(dataset, measurements).render())
        print()


if __name__ == "__main__":
    main()
