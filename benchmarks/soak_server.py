"""Concurrent-client soak for the query server: run hot, exit clean.

A time-boxed smoke that exercises the server's whole steady-state surface —
admission (policy ``reject``, so overload actually rejects), per-query
deadlines (a slice of submissions carries a tight timeout), persistent-pool
leasing, and graceful drain — under more client threads than admission
slots, then asserts the three properties a long-lived service must not
lose:

* **no leaked processes** — after every phase drains,
  ``multiprocessing.active_children()`` is empty (persistent pools are
  closed, not abandoned),
* **no deadlocks** — a watchdog hard-exits the interpreter (``os._exit(2)``)
  if the soak outlives its global budget, so a wedged queue fails the job
  instead of hanging it,
* **counter consistency** — after drain,
  ``submitted == admitted + rejected + shed`` and
  ``admitted == completed + failed``, and every successful query returned
  the serial oracle's count,
* **bounded plan cache** — clients submit query graphs (not pre-built
  plans), so every submission rides the PR 10 plan cache; after the soak
  the cache must hold at most ``capacity`` entries (no unbounded growth)
  and ``plan_cache_hits + plan_cache_misses`` must equal the QueryGraph
  submissions counted in ``submitted``.

One phase runs per backend (``thread`` always; ``process`` where ``fork``
is available), splitting ``--seconds`` between them.  Exits non-zero on
any violation; CI runs it as the ``server-soak`` job.

Usage::

    PYTHONPATH=src python benchmarks/soak_server.py [--seconds 60] [--clients 6]
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import threading
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from common import print_header  # noqa: E402

from repro import Database  # noqa: E402
from repro.errors import (  # noqa: E402
    QueryCancelledError,
    QueryTimeoutError,
    ServerOverloadedError,
)
from repro.query.backends import fork_available  # noqa: E402
from repro.server import DatabaseServer, ServerConfig  # noqa: E402

from bench_server_load import (  # noqa: E402
    _build_db,
    _one_hop,
    _triangle,
    _two_hop,
)

#: Grace added to the requested soak length before the watchdog shoots the
#: interpreter: startup, drain, and one slow admitted query per slot.
WATCHDOG_GRACE_SECONDS = 120.0
#: Every Nth submission carries this deadline, exercising queue-deadline
#: shedding and in-flight timeout aborts alongside the happy path.
TIGHT_TIMEOUT_SECONDS = 0.02
TIGHT_TIMEOUT_EVERY = 7


def _soak_phase(
    db: Database,
    backend: str,
    seconds: float,
    clients: int,
) -> Dict:
    queries = [_one_hop(), _two_hop(), _triangle()]
    plans = [db.plan(q) for q in queries]
    oracles = [db.count(plan, parallelism=1) for plan in plans]
    server = DatabaseServer(
        db,
        ServerConfig(
            max_concurrent=2,
            max_queue_depth=3,
            policy="reject",
            parallelism=2,
            backend=backend,
        ),
    )
    wrong: List[str] = []
    outcomes = {"ok": 0, "rejected": 0, "timeout": 0, "cancelled": 0}
    lock = threading.Lock()
    deadline = time.monotonic() + seconds

    def client(index: int) -> None:
        rng = np.random.RandomState(1000 + index)
        issued = 0
        while time.monotonic() < deadline:
            rank = int(rng.randint(len(queries)))
            issued += 1
            timeout = (
                TIGHT_TIMEOUT_SECONDS
                if issued % TIGHT_TIMEOUT_EVERY == 0
                else None
            )
            try:
                # Submit the *query graph*, not the plan: the soak then also
                # exercises the plan cache's steady state (every submission
                # after the first is a fingerprint hit on one generation).
                count = server.count(queries[rank], timeout=timeout)
            except ServerOverloadedError:
                with lock:
                    outcomes["rejected"] += 1
                # Back off like a real client would; an immediate resubmit
                # turns the soak into a pure admission-lock spin test.
                time.sleep(0.002)
                continue
            except QueryTimeoutError:
                with lock:
                    outcomes["timeout"] += 1
                continue
            except QueryCancelledError:
                with lock:
                    outcomes["cancelled"] += 1
                continue
            if count != oracles[rank]:
                with lock:
                    wrong.append(
                        f"backend={backend} rank={rank}: {count} != {oracles[rank]}"
                    )
                return
            with lock:
                outcomes["ok"] += 1

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.drain()

    failures: List[str] = list(wrong)
    leaked = multiprocessing.active_children()
    if leaked:
        failures.append(
            f"backend={backend}: {len(leaked)} leaked child processes "
            f"after drain: {[p.pid for p in leaked]}"
        )
    stats = server.stats.snapshot()
    if stats["submitted"] != stats["admitted"] + stats["rejected"] + stats["shed"]:
        failures.append(
            f"backend={backend}: admission counters do not reconcile: {stats}"
        )
    if stats["admitted"] != stats["completed"] + stats["failed"]:
        failures.append(
            f"backend={backend}: completion counters do not reconcile: {stats}"
        )
    if outcomes["ok"] == 0:
        failures.append(f"backend={backend}: soak completed zero queries")
    if outcomes["ok"] != stats["completed"]:
        failures.append(
            f"backend={backend}: clients saw {outcomes['ok']} successes but "
            f"the server counted {stats['completed']}"
        )
    cache = db.plan_cache
    if len(cache) > cache.capacity:
        failures.append(
            f"backend={backend}: plan cache grew past its bound "
            f"({len(cache)} entries > capacity {cache.capacity})"
        )
    if stats["plan_cache_hits"] + stats["plan_cache_misses"] != stats["submitted"]:
        failures.append(
            f"backend={backend}: plan-cache counters do not reconcile with "
            f"the QueryGraph submissions: {stats}"
        )
    return {
        "backend": backend,
        "outcomes": outcomes,
        "stats": stats,
        "plan_cache_entries": len(cache),
        "plan_cache": cache.stats.snapshot(),
        "pools_created": server.supervisor.pools_created,
        "pools_reused": server.supervisor.pools_reused,
        "failures": failures,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seconds",
        type=float,
        default=60.0,
        help="total soak length, split across backends (default 60)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=6,
        help="concurrent client threads per phase (default 6)",
    )
    args = parser.parse_args()

    # The deadlock backstop: if any queue wedges, fail loudly instead of
    # letting the job hang until the CI-level timeout reaps it.
    watchdog = threading.Timer(
        args.seconds + WATCHDOG_GRACE_SECONDS,
        lambda: (
            print("soak_server: WATCHDOG FIRED — deadlock suspected", flush=True),
            os._exit(2),
        ),
    )
    watchdog.daemon = True
    watchdog.start()

    backends = ["thread"] + (["process"] if fork_available() else [])
    per_phase = args.seconds / len(backends)
    print_header(
        f"Server soak: {args.clients} clients x {len(backends)} backends, "
        f"{args.seconds:.0f}s total"
    )
    db = _build_db()
    failures: List[str] = []
    for backend in backends:
        phase = _soak_phase(db, backend, per_phase, args.clients)
        outcomes, stats = phase["outcomes"], phase["stats"]
        print(
            f"{backend:<8} ok={outcomes['ok']} rejected={outcomes['rejected']} "
            f"timeout={outcomes['timeout']} cancelled={outcomes['cancelled']} "
            f"submitted={stats['submitted']} shed={stats['shed']} "
            f"pools_created={phase['pools_created']} "
            f"pools_reused={phase['pools_reused']}"
        )
        failures.extend(phase["failures"])
    watchdog.cancel()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: no leaks, no deadlocks, counters reconcile")
    return 0


if __name__ == "__main__":
    sys.exit(main())
