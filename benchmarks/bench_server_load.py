"""Closed-loop concurrent-client load benchmark for the query server.

``CLIENT_THREADS`` clients hammer one :class:`repro.server.DatabaseServer`
with a Zipf-weighted mix of pre-planned queries (a hot 1-hop count, a
mid-weight 2-hop path and a rare triangle), each client running a closed
loop: submit, wait for the result, verify it against the serial oracle,
submit the next.  Two sides are measured over the *same* deterministic pick
sequence:

* ``rowwise_*``   — the seed's service shape: every client calls
  ``Database.count`` directly, so each query plans its own executor and
  (above one worker) its own short-lived pool, and nothing bounds how many
  run at once (``CLIENT_THREADS × PARALLELISM`` worker threads in flight),
* ``vectorized_*`` — the server: ``SERVER_SLOTS`` admission slots feeding
  persistent pools leased from the supervisor, policy ``block`` so every
  query is eventually admitted (the measured phase sheds nothing).

The served phase submits **query graphs**, not pre-built plans: the PR 10
plan cache makes that the cheap path (each pattern plans once per store
generation; every later submission is a fingerprint hit returning the same
pinned plan object, which the persistent pools' payload registry then
reuses without re-pickling).  The row records the resulting
``plan_cache_hits`` / ``plan_cache_misses`` and *asserts* hits > 0 on the
hot Zipf mix — a cold cache on every submission would mean fingerprinting
broke.  A third phase replays the same pick sequences against a
``plan_cache_capacity=0`` database (``nocache_*`` keys) so the report
shows what per-submission re-planning costs end-to-end, and the planning
path itself is timed off the closed loop (``planning_fresh_*`` vs
``planning_hit_*``): the cache-hit planning p50 must be *below* the
fresh-planning p50, and the run fails if it is not.

``speedup`` is direct/server wall clock.  The baseline marks the scenario
``no_floor``: the ratio mixes pool amortization (a win) with admission
queueing (a deliberate cost) and is advisory — correctness is what the
benchmark enforces.  Every result, on both sides, must equal the serial
oracle's count, and the server's counters must reconcile
(``submitted == admitted + rejected + shed``; the measured phase must shed
nothing under ``block``).

A separate *overload* phase then offers ``OVERLOAD_MULTIPLIER ×`` the
server's total capacity (slots + queue depth) through the ``reject``
policy and asserts the contract under saturation: excess queries are
rejected with the typed :class:`~repro.errors.ServerOverloadedError`, a
sampler thread never observes more than ``max_concurrent`` queries
running, every admitted query still returns the oracle count, and the
counters reconcile after drain.

Reported per side: wall seconds, sustained QPS, p50/p99 latency; plus the
overload phase's offered/admitted/rejected split and the supervisor's
pool-reuse counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_load.py [--output PATH]

Writes ``BENCH_server_load.json`` to the repository root by default.  The
same row rides along in ``bench_extend_throughput.py``'s report as the
``server_load`` scenario, so ``benchmarks/check_regression.py`` tracks it
(the row must exist) without applying a ratio floor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Sequence

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SCALE, print_header  # noqa: E402

from repro import Database  # noqa: E402
from repro.errors import ServerOverloadedError  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    SocialGraphSpec,
    generate_social_graph,
)
from repro.query.pattern import QueryGraph  # noqa: E402
from repro.server import DatabaseServer, ServerConfig  # noqa: E402

#: Graph size at scale 1.0 — small enough that per-query work is dominated
#: by the service path under test (admission, leasing, dispatch), not the
#: scan itself.
NUM_VERTICES = int(4_000 * BENCH_SCALE)
NUM_EDGES = int(16_000 * BENCH_SCALE)

#: Closed-loop clients hammering the server concurrently.
CLIENT_THREADS = 8
#: Queries each client issues in the measured phase.
QUERIES_PER_CLIENT = max(int(12 * BENCH_SCALE), 4)
#: Admission slots (concurrent queries) of the measured server.
SERVER_SLOTS = 2
#: Morsel workers per admitted query.
PARALLELISM = 2
#: Persistent-pool backend of the measured server.
SERVER_BACKEND = "thread"
#: Zipf exponent of the query mix (rank-1 query dominates).
ZIPF_EXPONENT = 1.2
#: Offered load of the overload phase, as a multiple of the server's total
#: capacity (slots + queue depth) — the acceptance criterion's 4×.
OVERLOAD_MULTIPLIER = 4
#: Seed for the deterministic per-client pick sequences.
SEED = 0x5EED

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_server_load.json",
)


def _build_db() -> Database:
    graph = generate_social_graph(
        SocialGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            skew=0.6,
            time_range=1_000_000,
            seed=13,
        )
    )
    return Database(graph)


def _one_hop() -> QueryGraph:
    q = QueryGraph("hot-one-hop")
    q.add_vertex("a", label="User")
    q.add_vertex("b", label="User")
    q.add_edge("a", "b", label="Follows", name="e1")
    return q


def _two_hop() -> QueryGraph:
    q = QueryGraph("mid-two-hop")
    q.add_vertex("a", label="User")
    q.add_vertex("b", label="User")
    q.add_vertex("c", label="User")
    q.add_edge("a", "b", label="Follows", name="e1")
    q.add_edge("b", "c", label="Follows", name="e2")
    return q


def _triangle() -> QueryGraph:
    q = QueryGraph("rare-triangle")
    q.add_vertex("a", label="User")
    q.add_vertex("b", label="User")
    q.add_vertex("c", label="User")
    q.add_edge("a", "b", label="Follows", name="e1")
    q.add_edge("b", "c", label="Follows", name="e2")
    q.add_edge("a", "c", label="Follows", name="e3")
    return q


def _zipf_weights(ranks: int, exponent: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, ranks + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def _pick_sequences(ranks: int) -> List[np.ndarray]:
    """One deterministic Zipf pick sequence per client (same on both sides)."""
    weights = _zipf_weights(ranks, ZIPF_EXPONENT)
    return [
        np.random.RandomState(SEED + client).choice(
            ranks, size=QUERIES_PER_CLIENT, p=weights
        )
        for client in range(CLIENT_THREADS)
    ]


def _closed_loop(run_one, picks: Sequence[np.ndarray]):
    """Run every client's pick sequence concurrently; return (seconds, lat).

    ``run_one(rank)`` executes one query and returns its count; latencies
    are per-query wall seconds across all clients.
    """
    latencies: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    start = threading.Barrier(len(picks) + 1)

    def client(sequence: np.ndarray) -> None:
        mine: List[float] = []
        try:
            start.wait()
            for rank in sequence:
                begun = time.perf_counter()
                run_one(int(rank))
                mine.append(time.perf_counter() - begun)
        except BaseException as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append(exc)
            return
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(sequence,), daemon=True)
        for sequence in picks
    ]
    for thread in threads:
        thread.start()
    start.wait()
    begun = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begun
    if errors:
        raise RuntimeError(f"server_load: client failed: {errors[0]!r}") from errors[0]
    return elapsed, latencies


def _percentiles_ms(latencies: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1000.0
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def _overload_phase(db: Database, plan, oracle: int) -> Dict:
    """Offer 4× the server's capacity under ``reject``; assert the contract."""
    config = ServerConfig(
        max_concurrent=1,
        max_queue_depth=2,
        policy="reject",
        parallelism=PARALLELISM,
        backend=SERVER_BACKEND,
    )
    offered = OVERLOAD_MULTIPLIER * (config.max_concurrent + config.max_queue_depth)
    completed = rejected = 0
    wrong: List[str] = []
    max_running = [0]
    lock = threading.Lock()
    server = DatabaseServer(db, config)
    stop_sampling = threading.Event()

    def sampler() -> None:
        while not stop_sampling.is_set():
            observed = server.running()
            with lock:
                max_running[0] = max(max_running[0], observed)
            time.sleep(0.001)

    watcher = threading.Thread(target=sampler, daemon=True)
    watcher.start()
    try:
        start = threading.Barrier(offered)

        def client() -> None:
            nonlocal completed, rejected
            start.wait()
            try:
                count = server.count(plan)
            except ServerOverloadedError as exc:
                assert exc.policy == "reject"
                with lock:
                    rejected += 1
                return
            if count != oracle:
                with lock:
                    wrong.append(f"{count} != {oracle}")
                return
            with lock:
                completed += 1

        threads = [
            threading.Thread(target=client, daemon=True) for _ in range(offered)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        server.drain()
        stop_sampling.set()
        watcher.join()
    stats = server.stats.snapshot()
    if wrong:
        raise RuntimeError(
            f"server_load: admitted query diverged from the oracle under "
            f"overload: {wrong[0]}"
        )
    if stats["submitted"] != stats["admitted"] + stats["rejected"] + stats["shed"]:
        raise RuntimeError(f"server_load: overload counters do not reconcile: {stats}")
    if stats["submitted"] != offered:
        raise RuntimeError(
            f"server_load: offered {offered} but server saw {stats['submitted']}"
        )
    if rejected == 0:
        raise RuntimeError(
            "server_load: 4x overload produced zero rejections — the "
            "admission queue is not bounding anything"
        )
    if max_running[0] > config.max_concurrent:
        raise RuntimeError(
            f"server_load: observed {max_running[0]} concurrent queries "
            f"with max_concurrent={config.max_concurrent}"
        )
    return {
        "offered": offered,
        "completed": completed,
        "rejected_observed": rejected,
        "max_observed_running": max_running[0],
        "stats": stats,
    }


def server_load_scenario_row() -> Dict:
    """The ``server_load`` scenario row (shared key layout + extras)."""
    db = _build_db()
    queries = [_one_hop(), _two_hop(), _triangle()]
    # Planning each pattern once here both produces the oracle plans and
    # warms the plan cache: the served phase below submits the QueryGraphs
    # and every submission resolves to these exact plan objects (which is
    # also what keys the pools' payload reuse).
    plans = [db.plan(q) for q in queries]
    oracles = [db.count(plan, parallelism=1) for plan in plans]
    picks = _pick_sequences(len(plans))
    total_queries = sum(len(sequence) for sequence in picks)
    total_edges = sum(
        oracles[int(rank)] for sequence in picks for rank in sequence
    )

    def run_direct(rank: int) -> None:
        count = db.count(plans[rank], parallelism=PARALLELISM, backend=SERVER_BACKEND)
        if count != oracles[rank]:
            raise RuntimeError(
                f"server_load: direct count diverged ({count} != {oracles[rank]})"
            )

    direct_seconds, direct_latencies = _closed_loop(run_direct, picks)

    server = DatabaseServer(
        db,
        ServerConfig(
            max_concurrent=SERVER_SLOTS,
            max_queue_depth=CLIENT_THREADS,
            policy="block",
            parallelism=PARALLELISM,
            backend=SERVER_BACKEND,
        ),
    )
    try:

        def run_served(rank: int) -> None:
            count = server.count(queries[rank])
            if count != oracles[rank]:
                raise RuntimeError(
                    f"server_load: served count diverged "
                    f"({count} != {oracles[rank]})"
                )

        server_seconds, server_latencies = _closed_loop(run_served, picks)
    finally:
        server.drain()
    stats = server.stats.snapshot()
    if stats["submitted"] != stats["admitted"] + stats["rejected"] + stats["shed"]:
        raise RuntimeError(f"server_load: counters do not reconcile: {stats}")
    if stats["completed"] != total_queries or stats["shed"] or stats["rejected"]:
        raise RuntimeError(
            f"server_load: the block-policy measured phase must complete "
            f"every query ({total_queries} offered): {stats}"
        )
    if stats["plan_cache_hits"] + stats["plan_cache_misses"] != total_queries:
        raise RuntimeError(
            f"server_load: plan-cache counters do not reconcile with the "
            f"{total_queries} QueryGraph submissions: {stats}"
        )
    if stats["plan_cache_hits"] == 0:
        raise RuntimeError(
            "server_load: zero plan-cache hits on the hot Zipf mix — "
            "fingerprint canonicalization or the cache key is broken"
        )
    if db.plan_cache.stats.misses > len(queries):
        raise RuntimeError(
            f"server_load: {db.plan_cache.stats.misses} plannings for "
            f"{len(queries)} patterns on one store generation"
        )
    supervisor = server.supervisor

    # No-cache comparison: the same pick sequences against a database whose
    # plan cache is disabled, so every submission re-plans.
    nocache_db = Database(db.graph, plan_cache_capacity=0)
    nocache_server = DatabaseServer(
        nocache_db,
        ServerConfig(
            max_concurrent=SERVER_SLOTS,
            max_queue_depth=CLIENT_THREADS,
            policy="block",
            parallelism=PARALLELISM,
            backend=SERVER_BACKEND,
        ),
    )
    try:

        def run_nocache(rank: int) -> None:
            count = nocache_server.count(queries[rank])
            if count != oracles[rank]:
                raise RuntimeError(
                    f"server_load: no-cache count diverged "
                    f"({count} != {oracles[rank]})"
                )

        nocache_seconds, nocache_latencies = _closed_loop(run_nocache, picks)
    finally:
        nocache_server.drain()
    nocache_stats = nocache_server.stats.snapshot()
    if nocache_stats["plan_cache_hits"] != 0:
        raise RuntimeError(
            f"server_load: capacity-0 cache reported hits: {nocache_stats}"
        )

    # Planning-path latencies, measured off the closed loop: at ~tens of
    # milliseconds per executed query the end-to-end phase percentiles are
    # noise-bound, so the cache's direct effect is reported (and asserted)
    # where it acts — the synchronous planning step of every submission.
    fresh_samples: List[float] = []
    hit_samples: List[float] = []
    for build in (_one_hop, _two_hop, _triangle):
        for _ in range(20):
            db.plan_cache.clear()
            begun = time.perf_counter()
            db.plan(build())
            fresh_samples.append(time.perf_counter() - begun)
        db.plan(build())
        for _ in range(20):
            begun = time.perf_counter()
            db.plan(build())
            hit_samples.append(time.perf_counter() - begun)
    planning_fresh = _percentiles_ms(fresh_samples)
    planning_hit = _percentiles_ms(hit_samples)
    if planning_hit["p50_ms"] >= planning_fresh["p50_ms"]:
        raise RuntimeError(
            f"server_load: cache-hit planning p50 "
            f"({planning_hit['p50_ms']:.3f}ms) is not below fresh planning "
            f"p50 ({planning_fresh['p50_ms']:.3f}ms)"
        )
    row = {
        "extended_edges": int(total_edges),
        "rowwise_seconds": direct_seconds,
        "vectorized_seconds": server_seconds,
        "rowwise_eps": total_edges / direct_seconds if direct_seconds else 0.0,
        "vectorized_eps": total_edges / server_seconds if server_seconds else 0.0,
        "speedup": (
            direct_seconds / server_seconds if server_seconds else float("inf")
        ),
        "queries": total_queries,
        "clients": CLIENT_THREADS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "server_slots": SERVER_SLOTS,
        "parallelism": PARALLELISM,
        "backend": SERVER_BACKEND,
        "zipf_exponent": ZIPF_EXPONENT,
        "direct_qps": total_queries / direct_seconds if direct_seconds else 0.0,
        "server_qps": total_queries / server_seconds if server_seconds else 0.0,
        "server_counters": stats,
        "plan_cache_hits": stats["plan_cache_hits"],
        "plan_cache_misses": stats["plan_cache_misses"],
        "nocache_seconds": nocache_seconds,
        "nocache_qps": (
            total_queries / nocache_seconds if nocache_seconds else 0.0
        ),
        "planning_fresh_p50_ms": planning_fresh["p50_ms"],
        "planning_fresh_p99_ms": planning_fresh["p99_ms"],
        "planning_hit_p50_ms": planning_hit["p50_ms"],
        "planning_hit_p99_ms": planning_hit["p99_ms"],
        "planning_p50_speedup": (
            planning_fresh["p50_ms"] / planning_hit["p50_ms"]
            if planning_hit["p50_ms"]
            else float("inf")
        ),
        "pools_created": supervisor.pools_created,
        "pools_reused": supervisor.pools_reused,
        "pools_recycled": supervisor.pools_recycled,
        "degraded_leases": supervisor.degraded_leases,
    }
    for key, value in _percentiles_ms(server_latencies).items():
        row[key] = value
    for key, value in _percentiles_ms(direct_latencies).items():
        row[f"direct_{key}"] = value
    for key, value in _percentiles_ms(nocache_latencies).items():
        row[f"nocache_{key}"] = value
    row["overload"] = _overload_phase(db, plans[0], oracles[0])
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="path of the JSON results file (default: repo root)",
    )
    args = parser.parse_args()

    print_header(
        f"Server load: {CLIENT_THREADS} closed-loop clients vs "
        f"{SERVER_SLOTS}-slot admission ({NUM_EDGES:,} edges)"
    )
    row = server_load_scenario_row()
    print(
        f"queries={row['queries']}  direct {row['direct_qps']:.1f} qps "
        f"(p50 {row['direct_p50_ms']:.1f}ms / p99 {row['direct_p99_ms']:.1f}ms)  "
        f"server {row['server_qps']:.1f} qps "
        f"(p50 {row['p50_ms']:.1f}ms / p99 {row['p99_ms']:.1f}ms)"
    )
    print(
        f"plan cache: {row['plan_cache_hits']} hits / "
        f"{row['plan_cache_misses']} misses; no-cache replay "
        f"{row['nocache_qps']:.1f} qps (p50 {row['nocache_p50_ms']:.1f}ms); "
        f"planning p50 {row['planning_fresh_p50_ms']:.3f}ms fresh -> "
        f"{row['planning_hit_p50_ms']:.3f}ms hit "
        f"({row['planning_p50_speedup']:.1f}x)"
    )
    overload = row["overload"]
    print(
        f"overload: offered={overload['offered']} "
        f"completed={overload['completed']} "
        f"rejected={overload['rejected_observed']} "
        f"max_running={overload['max_observed_running']}"
    )
    report = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "num_edges": NUM_EDGES,
            "bench_scale": BENCH_SCALE,
            "clients": CLIENT_THREADS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "server_slots": SERVER_SLOTS,
            "parallelism": PARALLELISM,
            "backend": SERVER_BACKEND,
            "zipf_exponent": ZIPF_EXPONENT,
            "overload_multiplier": OVERLOAD_MULTIPLIER,
            "seed": SEED,
        },
        "scenarios": {"server_load": row},
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nresults written to {args.output}")


if __name__ == "__main__":
    main()
