"""Closed-loop concurrent-client load benchmark for the query server.

``CLIENT_THREADS`` clients hammer one :class:`repro.server.DatabaseServer`
with a Zipf-weighted mix of pre-planned queries (a hot 1-hop count, a
mid-weight 2-hop path and a rare triangle), each client running a closed
loop: submit, wait for the result, verify it against the serial oracle,
submit the next.  Two sides are measured over the *same* deterministic pick
sequence:

* ``rowwise_*``   — the seed's service shape: every client calls
  ``Database.count`` directly, so each query plans its own executor and
  (above one worker) its own short-lived pool, and nothing bounds how many
  run at once (``CLIENT_THREADS × PARALLELISM`` worker threads in flight),
* ``vectorized_*`` — the server: ``SERVER_SLOTS`` admission slots feeding
  persistent pools leased from the supervisor, policy ``block`` so every
  query is eventually admitted (the measured phase sheds nothing).

``speedup`` is direct/server wall clock.  The baseline marks the scenario
``no_floor``: the ratio mixes pool amortization (a win) with admission
queueing (a deliberate cost) and is advisory — correctness is what the
benchmark enforces.  Every result, on both sides, must equal the serial
oracle's count, and the server's counters must reconcile
(``submitted == admitted + rejected + shed``; the measured phase must shed
nothing under ``block``).

A separate *overload* phase then offers ``OVERLOAD_MULTIPLIER ×`` the
server's total capacity (slots + queue depth) through the ``reject``
policy and asserts the contract under saturation: excess queries are
rejected with the typed :class:`~repro.errors.ServerOverloadedError`, a
sampler thread never observes more than ``max_concurrent`` queries
running, every admitted query still returns the oracle count, and the
counters reconcile after drain.

Reported per side: wall seconds, sustained QPS, p50/p99 latency; plus the
overload phase's offered/admitted/rejected split and the supervisor's
pool-reuse counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_load.py [--output PATH]

Writes ``BENCH_server_load.json`` to the repository root by default.  The
same row rides along in ``bench_extend_throughput.py``'s report as the
``server_load`` scenario, so ``benchmarks/check_regression.py`` tracks it
(the row must exist) without applying a ratio floor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Sequence

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SCALE, print_header  # noqa: E402

from repro import Database  # noqa: E402
from repro.errors import ServerOverloadedError  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    SocialGraphSpec,
    generate_social_graph,
)
from repro.query.pattern import QueryGraph  # noqa: E402
from repro.server import DatabaseServer, ServerConfig  # noqa: E402

#: Graph size at scale 1.0 — small enough that per-query work is dominated
#: by the service path under test (admission, leasing, dispatch), not the
#: scan itself.
NUM_VERTICES = int(4_000 * BENCH_SCALE)
NUM_EDGES = int(16_000 * BENCH_SCALE)

#: Closed-loop clients hammering the server concurrently.
CLIENT_THREADS = 8
#: Queries each client issues in the measured phase.
QUERIES_PER_CLIENT = max(int(12 * BENCH_SCALE), 4)
#: Admission slots (concurrent queries) of the measured server.
SERVER_SLOTS = 2
#: Morsel workers per admitted query.
PARALLELISM = 2
#: Persistent-pool backend of the measured server.
SERVER_BACKEND = "thread"
#: Zipf exponent of the query mix (rank-1 query dominates).
ZIPF_EXPONENT = 1.2
#: Offered load of the overload phase, as a multiple of the server's total
#: capacity (slots + queue depth) — the acceptance criterion's 4×.
OVERLOAD_MULTIPLIER = 4
#: Seed for the deterministic per-client pick sequences.
SEED = 0x5EED

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_server_load.json",
)


def _build_db() -> Database:
    graph = generate_social_graph(
        SocialGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            skew=0.6,
            time_range=1_000_000,
            seed=13,
        )
    )
    return Database(graph)


def _one_hop() -> QueryGraph:
    q = QueryGraph("hot-one-hop")
    q.add_vertex("a", label="User")
    q.add_vertex("b", label="User")
    q.add_edge("a", "b", label="Follows", name="e1")
    return q


def _two_hop() -> QueryGraph:
    q = QueryGraph("mid-two-hop")
    q.add_vertex("a", label="User")
    q.add_vertex("b", label="User")
    q.add_vertex("c", label="User")
    q.add_edge("a", "b", label="Follows", name="e1")
    q.add_edge("b", "c", label="Follows", name="e2")
    return q


def _triangle() -> QueryGraph:
    q = QueryGraph("rare-triangle")
    q.add_vertex("a", label="User")
    q.add_vertex("b", label="User")
    q.add_vertex("c", label="User")
    q.add_edge("a", "b", label="Follows", name="e1")
    q.add_edge("b", "c", label="Follows", name="e2")
    q.add_edge("a", "c", label="Follows", name="e3")
    return q


def _zipf_weights(ranks: int, exponent: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, ranks + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def _pick_sequences(ranks: int) -> List[np.ndarray]:
    """One deterministic Zipf pick sequence per client (same on both sides)."""
    weights = _zipf_weights(ranks, ZIPF_EXPONENT)
    return [
        np.random.RandomState(SEED + client).choice(
            ranks, size=QUERIES_PER_CLIENT, p=weights
        )
        for client in range(CLIENT_THREADS)
    ]


def _closed_loop(run_one, picks: Sequence[np.ndarray]):
    """Run every client's pick sequence concurrently; return (seconds, lat).

    ``run_one(rank)`` executes one query and returns its count; latencies
    are per-query wall seconds across all clients.
    """
    latencies: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    start = threading.Barrier(len(picks) + 1)

    def client(sequence: np.ndarray) -> None:
        mine: List[float] = []
        try:
            start.wait()
            for rank in sequence:
                begun = time.perf_counter()
                run_one(int(rank))
                mine.append(time.perf_counter() - begun)
        except BaseException as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append(exc)
            return
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(sequence,), daemon=True)
        for sequence in picks
    ]
    for thread in threads:
        thread.start()
    start.wait()
    begun = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begun
    if errors:
        raise RuntimeError(f"server_load: client failed: {errors[0]!r}") from errors[0]
    return elapsed, latencies


def _percentiles_ms(latencies: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1000.0
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def _overload_phase(db: Database, plan, oracle: int) -> Dict:
    """Offer 4× the server's capacity under ``reject``; assert the contract."""
    config = ServerConfig(
        max_concurrent=1,
        max_queue_depth=2,
        policy="reject",
        parallelism=PARALLELISM,
        backend=SERVER_BACKEND,
    )
    offered = OVERLOAD_MULTIPLIER * (config.max_concurrent + config.max_queue_depth)
    completed = rejected = 0
    wrong: List[str] = []
    max_running = [0]
    lock = threading.Lock()
    server = DatabaseServer(db, config)
    stop_sampling = threading.Event()

    def sampler() -> None:
        while not stop_sampling.is_set():
            observed = server.running()
            with lock:
                max_running[0] = max(max_running[0], observed)
            time.sleep(0.001)

    watcher = threading.Thread(target=sampler, daemon=True)
    watcher.start()
    try:
        start = threading.Barrier(offered)

        def client() -> None:
            nonlocal completed, rejected
            start.wait()
            try:
                count = server.count(plan)
            except ServerOverloadedError as exc:
                assert exc.policy == "reject"
                with lock:
                    rejected += 1
                return
            if count != oracle:
                with lock:
                    wrong.append(f"{count} != {oracle}")
                return
            with lock:
                completed += 1

        threads = [
            threading.Thread(target=client, daemon=True) for _ in range(offered)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        server.drain()
        stop_sampling.set()
        watcher.join()
    stats = server.stats.snapshot()
    if wrong:
        raise RuntimeError(
            f"server_load: admitted query diverged from the oracle under "
            f"overload: {wrong[0]}"
        )
    if stats["submitted"] != stats["admitted"] + stats["rejected"] + stats["shed"]:
        raise RuntimeError(f"server_load: overload counters do not reconcile: {stats}")
    if stats["submitted"] != offered:
        raise RuntimeError(
            f"server_load: offered {offered} but server saw {stats['submitted']}"
        )
    if rejected == 0:
        raise RuntimeError(
            "server_load: 4x overload produced zero rejections — the "
            "admission queue is not bounding anything"
        )
    if max_running[0] > config.max_concurrent:
        raise RuntimeError(
            f"server_load: observed {max_running[0]} concurrent queries "
            f"with max_concurrent={config.max_concurrent}"
        )
    return {
        "offered": offered,
        "completed": completed,
        "rejected_observed": rejected,
        "max_observed_running": max_running[0],
        "stats": stats,
    }


def server_load_scenario_row() -> Dict:
    """The ``server_load`` scenario row (shared key layout + extras)."""
    db = _build_db()
    queries = [_one_hop(), _two_hop(), _triangle()]
    # Pre-built plans: the persistent process/thread pools key payload reuse
    # on plan identity, and re-planning per submission is not what a serving
    # client does.
    plans = [db.plan(q) for q in queries]
    oracles = [db.count(plan, parallelism=1) for plan in plans]
    picks = _pick_sequences(len(plans))
    total_queries = sum(len(sequence) for sequence in picks)
    total_edges = sum(
        oracles[int(rank)] for sequence in picks for rank in sequence
    )

    def run_direct(rank: int) -> None:
        count = db.count(plans[rank], parallelism=PARALLELISM, backend=SERVER_BACKEND)
        if count != oracles[rank]:
            raise RuntimeError(
                f"server_load: direct count diverged ({count} != {oracles[rank]})"
            )

    direct_seconds, direct_latencies = _closed_loop(run_direct, picks)

    server = DatabaseServer(
        db,
        ServerConfig(
            max_concurrent=SERVER_SLOTS,
            max_queue_depth=CLIENT_THREADS,
            policy="block",
            parallelism=PARALLELISM,
            backend=SERVER_BACKEND,
        ),
    )
    try:

        def run_served(rank: int) -> None:
            count = server.count(plans[rank])
            if count != oracles[rank]:
                raise RuntimeError(
                    f"server_load: served count diverged "
                    f"({count} != {oracles[rank]})"
                )

        server_seconds, server_latencies = _closed_loop(run_served, picks)
    finally:
        server.drain()
    stats = server.stats.snapshot()
    if stats["submitted"] != stats["admitted"] + stats["rejected"] + stats["shed"]:
        raise RuntimeError(f"server_load: counters do not reconcile: {stats}")
    if stats["completed"] != total_queries or stats["shed"] or stats["rejected"]:
        raise RuntimeError(
            f"server_load: the block-policy measured phase must complete "
            f"every query ({total_queries} offered): {stats}"
        )
    supervisor = server.supervisor
    row = {
        "extended_edges": int(total_edges),
        "rowwise_seconds": direct_seconds,
        "vectorized_seconds": server_seconds,
        "rowwise_eps": total_edges / direct_seconds if direct_seconds else 0.0,
        "vectorized_eps": total_edges / server_seconds if server_seconds else 0.0,
        "speedup": (
            direct_seconds / server_seconds if server_seconds else float("inf")
        ),
        "queries": total_queries,
        "clients": CLIENT_THREADS,
        "queries_per_client": QUERIES_PER_CLIENT,
        "server_slots": SERVER_SLOTS,
        "parallelism": PARALLELISM,
        "backend": SERVER_BACKEND,
        "zipf_exponent": ZIPF_EXPONENT,
        "direct_qps": total_queries / direct_seconds if direct_seconds else 0.0,
        "server_qps": total_queries / server_seconds if server_seconds else 0.0,
        "server_counters": stats,
        "pools_created": supervisor.pools_created,
        "pools_reused": supervisor.pools_reused,
        "pools_recycled": supervisor.pools_recycled,
        "degraded_leases": supervisor.degraded_leases,
    }
    for key, value in _percentiles_ms(server_latencies).items():
        row[key] = value
    for key, value in _percentiles_ms(direct_latencies).items():
        row[f"direct_{key}"] = value
    row["overload"] = _overload_phase(db, plans[0], oracles[0])
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="path of the JSON results file (default: repo root)",
    )
    args = parser.parse_args()

    print_header(
        f"Server load: {CLIENT_THREADS} closed-loop clients vs "
        f"{SERVER_SLOTS}-slot admission ({NUM_EDGES:,} edges)"
    )
    row = server_load_scenario_row()
    print(
        f"queries={row['queries']}  direct {row['direct_qps']:.1f} qps "
        f"(p50 {row['direct_p50_ms']:.1f}ms / p99 {row['direct_p99_ms']:.1f}ms)  "
        f"server {row['server_qps']:.1f} qps "
        f"(p50 {row['p50_ms']:.1f}ms / p99 {row['p99_ms']:.1f}ms)"
    )
    overload = row["overload"]
    print(
        f"overload: offered={overload['offered']} "
        f"completed={overload['completed']} "
        f"rejected={overload['rejected_observed']} "
        f"max_running={overload['max_observed_running']}"
    )
    report = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "num_edges": NUM_EDGES,
            "bench_scale": BENCH_SCALE,
            "clients": CLIENT_THREADS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "server_slots": SERVER_SLOTS,
            "parallelism": PARALLELISM,
            "backend": SERVER_BACKEND,
            "zipf_exponent": ZIPF_EXPONENT,
            "overload_multiplier": OVERLOAD_MULTIPLIER,
            "seed": SEED,
        },
        "scenarios": {"server_load": row},
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nresults written to {args.output}")


if __name__ == "__main__":
    main()
