"""Section V-F — index maintenance micro-benchmark.

Loads 50% of a follower graph's edges, then inserts the remaining 50% one at a
time through the :class:`~repro.index.maintenance.IndexMaintainer`, measuring
the sustained insertion rate (edges/second) under five configurations of
increasing maintenance work:

* ``Ds``       — flat primary index (no nested partitioning),
* ``Dp``       — edge-label partitioning, unsorted lists,
* ``Dps``      — edge-label partitioning, neighbour-ID sorting (the default),
* ``Dps+VPt``  — plus a time-sorted secondary vertex-partitioned index,
* ``Dps+EPt``  — plus a time-predicate edge-partitioned index.

Expected shape (paper): rates decrease with configuration complexity; the
edge-partitioned index costs roughly an order of magnitude because every
insertion runs two delta queries over the adjacency of the new edge's
endpoints.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np
import pytest

from repro import Database, Direction, EdgeAdjacencyType
from repro.bench.harness import maintenance_configs
from repro.bench.reporting import Table
from repro.graph.generators import SocialGraphSpec, generate_social_graph
from repro.index.config import IndexConfig
from repro.index.views import OneHopView, TwoHopView
from repro.predicates import Predicate, cmp, prop
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey
from repro.workloads.datasets import DATASETS

from common import BENCH_SCALE, MAINTENANCE_DATASETS, print_header

#: Paper-reported insertion rates (edges/second) for LJ_{2,4} and Brk_{2,2}.
PAPER_RATES = {
    "lj": {"Ds": 1_203_000, "Dp": 1_024_000, "Dps": 1_081_000, "Dps+VPt": 706_000, "Dps+EPt": 41_000},
    "brk": {"Ds": 2_108_000, "Dp": 1_892_000, "Dps": 1_832_000, "Dps+VPt": 1_691_000, "Dps+EPt": 110_000},
}

#: Number of edges inserted per configuration during the timed phase.
INSERT_BUDGET = 400


def _split_graph(name: str):
    """Build the dataset and split its edges into a 50% base and 50% delta."""
    spec = DATASETS[name]
    graph = generate_social_graph(
        SocialGraphSpec(
            num_vertices=int(spec.num_vertices * BENCH_SCALE),
            num_edges=int(spec.num_edges * BENCH_SCALE),
            seed=spec.seed + 77,
        )
    )
    half = graph.num_edges // 2
    base = generate_social_graph(
        SocialGraphSpec(
            num_vertices=graph.num_vertices,
            num_edges=half,
            seed=spec.seed + 77,
        )
    )
    rng = np.random.default_rng(spec.seed)
    remaining = min(graph.num_edges - half, INSERT_BUDGET)
    deltas = [
        (
            int(graph.edge_src[half + i]),
            int(graph.edge_dst[half + i]),
            "Follows",
            {"time": int(graph.edge_props.raw_value(half + i, "time"))},
        )
        for i in range(remaining)
    ]
    rng.shuffle(deltas)
    return base, deltas


def _configure_database(base, descriptor) -> Database:
    database = Database(base, primary_config=descriptor["primary"])
    if descriptor["vpt"]:
        vpt_config = IndexConfig(
            partition_keys=descriptor["primary"].partition_keys,
            sort_keys=(SortKey.edge_property("time"), SortKey.neighbour_id()),
        )
        database.create_vertex_index(
            OneHopView("VPt"), directions=(Direction.FORWARD,), config=vpt_config, name="VPt"
        )
    if descriptor["ept"]:
        times = base.edge_props.column("time")
        time_range = float(times.max() - times.min()) if len(times) else 1.0
        # eb.time < eadj.time < eb.time + delta, with delta at ~1% of the time
        # range (the paper's 1%-selective EPt predicate).
        delta = max(time_range * 0.01, 1.0)
        view = TwoHopView(
            "EPt",
            EdgeAdjacencyType.DST_FW,
            Predicate.of(
                cmp(prop("eb", "time"), "<", prop("eadj", "time")),
                cmp(prop("eadj", "time"), "<", prop("eb", "time"), offset=delta),
            ),
        )
        database.create_edge_index(view, config=IndexConfig.flat(), name="EPt")
    return database


def run_experiment(dataset: str) -> Dict[str, float]:
    base, deltas = _split_graph(dataset)
    rates = {}
    for config_name, descriptor in maintenance_configs().items():
        database = _configure_database(base, descriptor)
        # The paper's experiment measures the *per-tuple* insertion cost
        # (page-buffer update, per-edge predicate, per-edge delta queries),
        # so this table pins the tuple-at-a-time buffering path; the columnar
        # bulk path is benchmarked by bench_extend_throughput.py's
        # ``maintenance`` scenario.
        maintainer = database.maintainer(
            merge_threshold=len(deltas) * 8, columnar=False
        )
        started = time.perf_counter()
        for src, dst, label, props in deltas:
            maintainer.insert_edge(src, dst, label, **props)
        maintainer.flush()
        elapsed = time.perf_counter() - started
        rates[config_name] = len(deltas) / elapsed if elapsed else float("inf")
    return rates


def build_table(dataset: str, rates: Dict[str, float]) -> Table:
    table = Table(
        title=f"Section V-F — maintenance rates on the {dataset.upper()} stand-in",
        columns=["config", "measured edges/s", "paper edges/s", "measured rel. to Ds", "paper rel. to Ds"],
    )
    paper = PAPER_RATES[dataset if dataset in PAPER_RATES else "lj"]
    for config_name, rate in rates.items():
        table.add_row(
            config_name,
            int(rate),
            paper.get(config_name),
            f"{rate / rates['Ds']:.2f}x" if rates.get("Ds") else None,
            f"{paper[config_name] / paper['Ds']:.2f}x" if config_name in paper else None,
        )
    table.add_note(
        "absolute rates are Python-interpreter bound; the reproduced shape is "
        "the relative slowdown as maintenance work grows, especially for EPt"
    )
    return table


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def maintenance_setup():
    return _split_graph("brk")


@pytest.mark.parametrize("config_name", ["Dps", "Dps+VPt", "Dps+EPt"])
def test_benchmark_insert_rate(benchmark, maintenance_setup, config_name):
    base, deltas = maintenance_setup
    descriptor = maintenance_configs()[config_name]
    database = _configure_database(base, descriptor)
    maintainer = database.maintainer(merge_threshold=10**9, columnar=False)
    batch = deltas[:50]
    benchmark.extra_info["config"] = config_name

    def insert_batch():
        for src, dst, label, props in batch:
            maintainer.insert_edge(src, dst, label, **props)

    benchmark(insert_batch)
    assert maintainer.stats.inserted_edges >= len(batch)


def main() -> None:
    print_header("Section V-F — index maintenance")
    for dataset in MAINTENANCE_DATASETS:
        rates = run_experiment(dataset)
        print(build_table(dataset, rates).render())
        print()


if __name__ == "__main__":
    main()
