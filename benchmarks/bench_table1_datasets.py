"""Table I — datasets.

Prints the paper's dataset table next to the scaled synthetic stand-ins used
by this reproduction, and benchmarks graph generation plus primary A+ index
construction (the substrate cost every other experiment pays).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import Table
from repro.workloads.datasets import labelled_dataset, table1_rows

from common import BENCH_SCALE, print_header


def build_table() -> Table:
    table = Table(
        title="Table I — datasets (paper vs scaled stand-ins)",
        columns=[
            "name",
            "paper |V|",
            "paper |E|",
            "paper avg deg",
            "repro |V|",
            "repro |E|",
            "repro avg deg",
        ],
    )
    for row in table1_rows(scale=BENCH_SCALE):
        table.add_row(
            row["name"],
            row["paper_vertices"],
            row["paper_edges"],
            row["paper_avg_degree"],
            row["vertices"],
            row["edges"],
            row["avg_degree"],
        )
    table.add_note(
        "stand-ins preserve the relative size ordering and small average degrees; "
        "absolute sizes are scaled to pure-Python processing budgets"
    )
    return table


@pytest.mark.parametrize("name", ["brk", "wt"])
def test_benchmark_dataset_generation(benchmark, name):
    """Time synthetic dataset generation (cache cleared per call)."""
    from repro.workloads import datasets

    def generate():
        datasets.clear_cache()
        return datasets.labelled_dataset(name, 4, 2, scale=BENCH_SCALE)

    graph = benchmark(generate)
    assert graph.num_edges > 0


def test_benchmark_primary_index_build(benchmark):
    """Time building the default primary A+ index pair on the WT stand-in."""
    graph = labelled_dataset("wt", 4, 2, scale=BENCH_SCALE)
    database = benchmark(lambda: Database(graph))
    assert database.primary_index.nbytes() > 0


def main() -> None:
    print_header("Table I — datasets")
    print(build_table().render())


if __name__ == "__main__":
    main()
