"""Extended-edges/sec microbenchmark for the batch-at-a-time hot paths.

Measures the throughput of the extension shapes the executor runs hottest:

* ``extend_1leg``    — single-leg EXTEND over every vertex's forward list,
* ``extend_2leg``    — two-leg EXTEND/INTERSECT (WCOJ building block),
* ``extend_sorted``  — single-leg EXTEND through a property-sorted list with
  a binary-search range filter (the MagicRecs access pattern),
* ``multi_extend``   — two-leg MULTI-EXTEND joining city-sorted lists on the
  neighbour's city property (the property-intersection pattern of Figure 6),

each executed once with the legacy tuple-at-a-time operator path
(``vectorized=False``, the seed behaviour) and once with the vectorized
batch-at-a-time gather path (the default), plus the write-path counterpart:

* ``maintenance``    — bulk insert + flush of 25% new edges on a graph with
  one secondary vertex-partitioned and one edge-partitioned index, executed
  once with the legacy tuple-at-a-time buffering + rebuild-from-scratch
  merge (``columnar=False``) and once with the columnar delta buffers +
  incremental merge (the default); reported as buffered edges/sec, with the
  merge seconds of both paths recorded alongside,

plus the parallel-execution counterpart:

* ``parallel_scan``  — the two-leg WCOJ plan over the *full* vertex domain,
  executed once on the serial executor and once on the morsel-driven
  dispatcher with ``PARALLEL_WORKERS`` threads; the speedup is
  serial/parallel wall-clock.  The row records ``available_cpus`` so the
  regression gate can skip the floor on machines that cannot physically run
  the workers concurrently (``requires_cpus`` in the baseline),

* ``parallel_scan_process`` — the same plan dispatched to the ``process``
  morsel backend (a ``multiprocessing`` pool with per-worker plan/graph
  rehydration and columnar result transport) vs the serial executor.  The
  row records ``start_method``: on spawn-only platforms (no cheap ``fork``)
  the scenario is not executed and the gate skips its floor
  (``requires_fork`` in the baseline) — per-query pool creation through a
  fresh interpreter per worker is not a meaningful measurement,

* ``factorized_count`` — the star pattern (two independent forward legs off
  the scanned vertex, the ``multi_extend`` fan-out shape) counted once
  through the flat pipeline (every combination materialized, the seed
  behaviour) and once through the factorized count sink (per-leg cardinality
  segments, count = per-row product, zero combo expansion).  Both paths
  return the identical count; the row additionally records
  ``combos_avoided`` — the flat rows the factorized path never built.  The
  speedup grows with the product of leg fan-outs (the asymptotic win), so
  its floor is the one gate that checks the *shape* of the optimization, not
  a constant-factor kernel win,

* ``fault_recovery`` — the ``parallel_scan`` plan on the 4-worker process
  backend, run once fault-free and once with a deterministic ``kill@0``
  fault that murders a pool worker on the first morsel.  The row's
  ``speedup`` is faulted/healthy wall clock — the *overhead factor* of
  crash recovery (retry on the respawned pool), not a win — so the baseline
  marks it ``no_floor``: the gate tracks the row (removing it silently
  still fails) but applies no ratio floor.  Correctness is asserted inside
  the benchmark: both runs must return the serial oracle's count and the
  faulted run must actually record a retry,

* ``skewed_scan``    — the same WCOJ shape on a *hub-skewed* Zipf graph
  whose degree correlates with vertex ID (no ID shuffle): the degree-
  weighted morsel splitter (prefix-summed CSR offsets, the dispatcher
  default) vs even vertex-count splitting, both on ``PARALLEL_WORKERS``
  threads.  The speedup is even/degree-weighted wall-clock — the load-
  balancing win, not a parallelization win.

plus the service-shape counterpart:

* ``server_load``    — 8 closed-loop clients over a Zipf query mix against
  the admission-controlled ``DatabaseServer`` (persistent pools, 2 slots,
  policy ``block``) vs the same clients calling ``Database.count`` directly
  with per-query executors and no admission bound; imported from
  ``bench_server_load.py`` and marked ``no_floor`` in the baseline —
  correctness (oracle counts, counter reconciliation, bounded concurrency
  under a 4x-overload reject phase) is asserted inside the benchmark.

The generated graphs have >= 100k edges at the default scale so the numbers
are dominated by the steady-state loop, not setup.

Usage::

    PYTHONPATH=src python benchmarks/bench_extend_throughput.py [--output PATH]

Writes ``BENCH_extend_throughput.json`` to the repository root by default;
``benchmarks/check_regression.py`` compares the measured speedups against the
checked-in baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from common import BENCH_SCALE, print_header  # noqa: E402
from bench_server_load import server_load_scenario_row  # noqa: E402

from repro import Database, EdgeAdjacencyType  # noqa: E402
from repro.graph import Direction  # noqa: E402
from repro.index.views import OneHopView, TwoHopView  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    FinancialGraphSpec,
    HubSkewedGraphSpec,
    LabelledGraphSpec,
    SocialGraphSpec,
    generate_financial_graph,
    generate_hub_skewed_graph,
    generate_labelled_graph,
    generate_social_graph,
)
from repro.index.config import IndexConfig  # noqa: E402
from repro.index.index_store import IndexStore  # noqa: E402
from repro.index.primary import PrimaryIndex  # noqa: E402
from repro.bench.harness import available_cpus  # noqa: E402
from repro.predicates import CompareOp, Predicate, cmp, prop  # noqa: E402
from repro.query.backends import (  # noqa: E402
    fork_available,
    preferred_start_method,
)
from repro.query.executor import Executor, MorselExecutor  # noqa: E402
from repro.query.operators import (  # noqa: E402
    ExtendIntersect,
    ExtensionLeg,
    MultiExtend,
    ScanVertices,
    SortedRangeFilter,
)
from repro.query.pattern import QueryGraph  # noqa: E402
from repro.query.plan import QueryPlan  # noqa: E402
from repro.storage.sort_keys import SortKey  # noqa: E402

#: Graph size at scale 1.0 (>= 100k edges, per the acceptance criterion).
NUM_VERTICES = int(20_000 * BENCH_SCALE)
NUM_EDGES = int(120_000 * BENCH_SCALE)
#: Scan cap for the 2-leg scenario: the per-row baseline pays a Python round
#: trip per intermediate row, so the input is bounded to keep the run short.
TWO_LEG_SCAN_LIMIT = max(int(NUM_VERTICES * 0.1), 1)
#: Sorted-filter threshold tuned to ~5% selectivity (the MagicRecs setting).
TIME_RANGE = 1_000_000
TIME_THRESHOLD = int(TIME_RANGE * 0.05)
#: City domain for the MULTI-EXTEND scenario (controls join selectivity).
NUM_CITIES = 40
#: Pending edges inserted by the maintenance scenario, as a fraction of the
#: base graph's edges.
MAINTENANCE_INSERT_FRACTION = 0.25
#: Width of the maintenance scenario's edge-partitioned date window (days).
MAINTENANCE_DATE_WINDOW = 50.0
#: Thread-pool width of the parallel-scan scenario (the baseline's floor is
#: calibrated for this worker count; see ``requires_cpus`` in the baseline).
PARALLEL_WORKERS = 4
#: Deterministic fault injected by the ``fault_recovery`` scenario: kill the
#: worker that picks up the first morsel, on its first attempt only, so the
#: dispatcher's retry path runs exactly once per query.
FAULT_RECOVERY_FAULTS = "kill@0"
#: Per-morsel result-timeout backstop for the faulted run (seconds).  The
#: kill is normally detected by the pool death watch within a fraction of a
#: second; the backstop only matters if detection itself regresses.
FAULT_RECOVERY_MORSEL_TIMEOUT = 30.0
#: Zipf exponent of the hub-skewed graph (``skewed_scan``): steep enough
#: that the low-ID hub region dominates the adjacency work without one
#: single vertex holding the bulk of it (a single super-vertex cannot be
#: split below one vertex by *any* range partitioner).
SKEWED_SCAN_EXPONENT = 1.1

REPETITIONS = int(os.environ.get("BENCH_REPETITIONS", "2"))

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_extend_throughput.json",
)


def _leg(store, direction, bound, target, edge_var, sorted_filter=None):
    path = store.find_vertex_access_paths(direction, Predicate.true())[0]
    return ExtensionLeg(
        access_path=path,
        bound_var=bound,
        target_var=target,
        edge_var=edge_var,
        track_edge=True,
        sorted_filter=sorted_filter,
        presorted_by_nbr=path.sorted_by_neighbour_id,
    )


def _build_labelled():
    graph = generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=0.6,
            seed=42,
        )
    )
    store = IndexStore(graph, PrimaryIndex(graph))
    return graph, store


def _build_social():
    graph = generate_social_graph(
        SocialGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            skew=0.6,
            time_range=TIME_RANGE,
            seed=7,
        )
    )
    time_key = SortKey.edge_property("time")
    config = IndexConfig(
        partition_keys=(), sort_keys=(time_key, SortKey.neighbour_id())
    )
    store = IndexStore(graph, PrimaryIndex(graph, config=config))
    return graph, store, time_key


def _build_financial():
    graph = generate_financial_graph(
        FinancialGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            num_cities=NUM_CITIES,
            skew=0.6,
            seed=11,
        )
    )
    city_key = SortKey.nbr_property("city")
    config = IndexConfig(
        partition_keys=(), sort_keys=(city_key, SortKey.neighbour_id())
    )
    store = IndexStore(graph, PrimaryIndex(graph, config=config))
    return graph, store, city_key


def _plan_extend_1leg(graph, store, vectorized):
    query = QueryGraph("extend1")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="b",
                legs=[_leg(store, Direction.FORWARD, "a", "b", "e0")],
                vectorized=vectorized,
            ),
        ],
    )


def _plan_extend_2leg(graph, store, vectorized):
    query = QueryGraph("extend2")
    for name in ("a", "c", "b"):
        query.add_vertex(name)
    query.add_edge("a", "c", name="ec")
    query.add_edge("a", "b", name="e0")
    query.add_edge("c", "b", name="e1")
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(
                var="a",
                predicate=Predicate.of(cmp(prop("a", "ID"), "<", TWO_LEG_SCAN_LIMIT)),
            ),
            ExtendIntersect(
                target_var="c",
                legs=[_leg(store, Direction.FORWARD, "a", "c", "ec")],
                vectorized=vectorized,
            ),
            ExtendIntersect(
                target_var="b",
                legs=[
                    _leg(store, Direction.FORWARD, "a", "b", "e0"),
                    _leg(store, Direction.FORWARD, "c", "b", "e1"),
                ],
                vectorized=vectorized,
            ),
        ],
    )


def _plan_extend_sorted(graph, store, time_key, vectorized):
    query = QueryGraph("extend_sorted")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    sorted_filter = SortedRangeFilter(
        sort_key=time_key, op=CompareOp.LT, value=TIME_THRESHOLD
    )
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="b",
                legs=[
                    _leg(
                        store,
                        Direction.FORWARD,
                        "a",
                        "b",
                        "e0",
                        sorted_filter=sorted_filter,
                    )
                ],
                vectorized=vectorized,
            ),
        ],
    )


def _plan_multi_extend(graph, store, city_key, vectorized):
    query = QueryGraph("multi_extend")
    for name in ("a", "c", "b1", "b2"):
        query.add_vertex(name)
    query.add_edge("a", "c", name="ec")
    query.add_edge("a", "b1", name="e0")
    query.add_edge("c", "b2", name="e1")
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(
                var="a",
                predicate=Predicate.of(cmp(prop("a", "ID"), "<", TWO_LEG_SCAN_LIMIT)),
            ),
            ExtendIntersect(
                target_var="c",
                legs=[_leg(store, Direction.FORWARD, "a", "c", "ec")],
                vectorized=vectorized,
            ),
            MultiExtend(
                legs=[
                    _leg(store, Direction.FORWARD, "a", "b1", "e0"),
                    _leg(store, Direction.FORWARD, "c", "b2", "e1"),
                ],
                equality_key=city_key,
                vectorized=vectorized,
            ),
        ],
    )


def _plan_parallel_scan(store):
    """The two-leg WCOJ plan over the full vertex domain (vectorized path).

    Unlike ``extend_2leg`` there is no scan cap: both sides of this scenario
    run the batch kernels, and the full domain is what the morsel dispatcher
    partitions.
    """
    query = QueryGraph("parallel_scan")
    for name in ("a", "c", "b"):
        query.add_vertex(name)
    query.add_edge("a", "c", name="ec")
    query.add_edge("a", "b", name="e0")
    query.add_edge("c", "b", name="e1")
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="c",
                legs=[_leg(store, Direction.FORWARD, "a", "c", "ec")],
            ),
            ExtendIntersect(
                target_var="b",
                legs=[
                    _leg(store, Direction.FORWARD, "a", "b", "e0"),
                    _leg(store, Direction.FORWARD, "c", "b", "e1"),
                ],
            ),
        ],
    )


def _ab_scenario_row(name, plan_factory, baseline_factory, candidate_factory) -> Dict:
    """Best-of-``REPETITIONS`` A/B timing with the shared row layout.

    Runs ``plan_factory()`` through a fresh baseline and candidate runner
    per repetition, cross-checks that both produce the same match count,
    and returns the ``rowwise_*`` (baseline) / ``vectorized_*`` (candidate)
    key layout every scenario shares so the regression gate reads all rows
    the same way.
    """
    baseline_seconds = candidate_seconds = float("inf")
    baseline_edges = candidate_edges = 0
    for _ in range(max(REPETITIONS, 1)):
        plan = plan_factory()
        runner = baseline_factory()
        started = time.perf_counter()
        baseline_edges = runner.run(plan).count
        baseline_seconds = min(baseline_seconds, time.perf_counter() - started)

        plan = plan_factory()
        runner = candidate_factory()
        started = time.perf_counter()
        candidate_edges = runner.run(plan).count
        candidate_seconds = min(candidate_seconds, time.perf_counter() - started)
    if baseline_edges != candidate_edges:
        raise RuntimeError(
            f"{name}: paths disagree ({baseline_edges} vs {candidate_edges})"
        )
    return {
        "extended_edges": int(candidate_edges),
        "rowwise_seconds": baseline_seconds,
        "vectorized_seconds": candidate_seconds,
        "rowwise_eps": (
            baseline_edges / baseline_seconds if baseline_seconds else 0.0
        ),
        "vectorized_eps": (
            candidate_edges / candidate_seconds if candidate_seconds else 0.0
        ),
        "speedup": (
            baseline_seconds / candidate_seconds
            if candidate_seconds
            else float("inf")
        ),
    }


def _plan_factorized_star(store):
    """Two independent forward legs off the scanned vertex, full domain.

    The whole extension tail is a factorizable suffix: each leg's
    cardinality per scan vertex is its forward-list length, so the flat
    pipeline materializes ``sum(deg(a)^2)`` combination rows while the
    factorized sink reads two offset arrays.
    """
    query = QueryGraph("factorized_star")
    for name in ("a", "b1", "b2"):
        query.add_vertex(name)
    query.add_edge("a", "b1", name="e0")
    query.add_edge("a", "b2", name="e1")
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="b1",
                legs=[_leg(store, Direction.FORWARD, "a", "b1", "e0")],
            ),
            ExtendIntersect(
                target_var="b2",
                legs=[_leg(store, Direction.FORWARD, "a", "b2", "e1")],
            ),
        ],
    )


def _factorized_count_scenario_row(graph, store) -> Dict:
    """Flat-pipeline count vs factorized count sink on the star pattern.

    ``rowwise_*`` holds the flat (expand-everything) count and
    ``vectorized_*`` the factorized one, mirroring the baseline-vs-tuned key
    layout of the other scenarios.  Both sides run the serial executor, so
    the ratio isolates the representation change alone.
    """
    flat_seconds = fact_seconds = float("inf")
    flat_count = fact_count = combos_avoided = 0
    executor = Executor(graph)
    for _ in range(max(REPETITIONS, 1)):
        plan = _plan_factorized_star(store)
        started = time.perf_counter()
        flat_count = executor.run(plan, factorized=False).count
        flat_seconds = min(flat_seconds, time.perf_counter() - started)

        plan = _plan_factorized_star(store)
        started = time.perf_counter()
        result = executor.run(plan, factorized=True)
        fact_seconds = min(fact_seconds, time.perf_counter() - started)
        fact_count = result.count
        combos_avoided = result.stats.combos_avoided
    if flat_count != fact_count:
        raise RuntimeError(
            f"factorized_count: paths disagree ({flat_count} vs {fact_count})"
        )
    if combos_avoided <= 0:
        raise RuntimeError(
            "factorized_count: combos_avoided is 0 — the factorized sink "
            "expanded combinations it should have kept as segments"
        )
    return {
        "extended_edges": int(fact_count),
        "combos_avoided": int(combos_avoided),
        "rowwise_seconds": flat_seconds,
        "vectorized_seconds": fact_seconds,
        "rowwise_eps": flat_count / flat_seconds if flat_seconds else 0.0,
        "vectorized_eps": fact_count / fact_seconds if fact_seconds else 0.0,
        "speedup": (
            flat_seconds / fact_seconds if fact_seconds else float("inf")
        ),
    }


def _parallel_scan_scenario_row(graph, store) -> Dict:
    """Serial executor vs morsel-driven thread dispatcher on the same plan."""
    row = _ab_scenario_row(
        "parallel_scan",
        lambda: _plan_parallel_scan(store),
        lambda: Executor(graph),
        lambda: MorselExecutor(graph, num_workers=PARALLEL_WORKERS),
    )
    row.update(workers=PARALLEL_WORKERS, available_cpus=available_cpus())
    return row


def _build_hub_skewed():
    """Hub-skewed Zipf graph: degree correlates with vertex ID (no shuffle)."""
    graph = generate_hub_skewed_graph(
        HubSkewedGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            skew=SKEWED_SCAN_EXPONENT,
            seed=5,
        )
    )
    store = IndexStore(graph, PrimaryIndex(graph))
    return graph, store


def _plan_skewed_scan(store):
    """WCOJ plan whose per-scan-vertex work tracks the skewed out-degree.

    Scan ``a`` over the full domain, hop *backward* to ``c`` (uniform
    in-degrees on the hub-skewed graph, so the intermediate row count stays
    flat), then intersect ``a``'s and ``c``'s *forward* lists — the leg
    bound to ``a`` re-reads the hub's heavy list once per ``(a, c)`` row, so
    per-vertex work is proportional to the ID-correlated out-degree: the
    shape even vertex-count morsels cannot balance.
    """
    query = QueryGraph("skewed_scan")
    for name in ("a", "c", "b"):
        query.add_vertex(name)
    query.add_edge("c", "a", name="ec")
    query.add_edge("a", "b", name="e0")
    query.add_edge("c", "b", name="e1")
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="c",
                legs=[_leg(store, Direction.BACKWARD, "a", "c", "ec")],
            ),
            ExtendIntersect(
                target_var="b",
                legs=[
                    _leg(store, Direction.FORWARD, "a", "b", "e0"),
                    _leg(store, Direction.FORWARD, "c", "b", "e1"),
                ],
            ),
        ],
    )


def _parallel_scan_process_scenario_row(graph, store) -> Dict:
    """Serial executor vs the process morsel backend on the same plan.

    Mirrors ``parallel_scan``'s key layout (``rowwise_*`` = serial,
    ``vectorized_*`` = parallel).  On platforms without a cheap ``fork``
    start method the scenario is recorded but not executed — spinning up a
    fresh interpreter per pool worker per query measures interpreter
    startup, not the dispatcher — and the regression gate skips its floor
    (``requires_fork`` + the recorded ``start_method``).
    """
    start_method = preferred_start_method()
    if not fork_available():
        return {
            "extended_edges": 0,
            "workers": PARALLEL_WORKERS,
            "available_cpus": available_cpus(),
            "start_method": start_method,
            "skipped_reason": (
                "process pools need the fork start method to be cheap; "
                f"this platform offers {start_method!r}"
            ),
            "rowwise_seconds": 0.0,
            "vectorized_seconds": 0.0,
            "rowwise_eps": 0.0,
            "vectorized_eps": 0.0,
            "speedup": 0.0,
        }
    row = _ab_scenario_row(
        "parallel_scan_process",
        lambda: _plan_parallel_scan(store),
        lambda: Executor(graph),
        lambda: MorselExecutor(
            graph, num_workers=PARALLEL_WORKERS, backend="process"
        ),
    )
    row.update(
        workers=PARALLEL_WORKERS,
        available_cpus=available_cpus(),
        start_method=start_method,
    )
    return row


def _fault_recovery_scenario_row(graph, store) -> Dict:
    """Recovery overhead of the process backend under an injected worker kill.

    Both sides run the 4-worker process dispatcher on the full-domain WCOJ
    plan.  The ``vectorized_*`` side runs fault-free; the ``rowwise_*`` side
    loses the worker executing morsel 0 to a deterministic ``kill@0`` fault
    and must detect the death, retry the lost morsel on the respawned pool,
    and still merge a byte-identical result.  ``speedup`` is therefore
    faulted/healthy wall clock — the overhead *factor* of one crash-recovery
    round — and the baseline entry carries ``no_floor``: correctness is
    asserted here (both counts equal the serial oracle's, and the faulted
    run really recorded a retry), not by a ratio floor.
    """
    start_method = preferred_start_method()
    if not fork_available():
        return {
            "extended_edges": 0,
            "workers": PARALLEL_WORKERS,
            "available_cpus": available_cpus(),
            "start_method": start_method,
            "skipped_reason": (
                "process-backend chaos needs the fork start method; "
                f"this platform offers {start_method!r}"
            ),
            "rowwise_seconds": 0.0,
            "vectorized_seconds": 0.0,
            "rowwise_eps": 0.0,
            "vectorized_eps": 0.0,
            "speedup": 0.0,
            "retries": 0,
            "morsels_recovered": 0,
        }
    oracle = Executor(graph).run(_plan_parallel_scan(store)).count
    healthy_seconds = faulted_seconds = float("inf")
    retries = morsels_recovered = 0
    for _ in range(max(REPETITIONS, 1)):
        runner = MorselExecutor(
            graph,
            num_workers=PARALLEL_WORKERS,
            backend="process",
            morsel_timeout=FAULT_RECOVERY_MORSEL_TIMEOUT,
        )
        started = time.perf_counter()
        healthy = runner.run(_plan_parallel_scan(store))
        healthy_seconds = min(healthy_seconds, time.perf_counter() - started)
        if healthy.count != oracle:
            raise RuntimeError(
                f"fault_recovery: healthy run disagrees with the serial "
                f"oracle ({healthy.count} vs {oracle})"
            )

        runner = MorselExecutor(
            graph,
            num_workers=PARALLEL_WORKERS,
            backend="process",
            fault_plan=FAULT_RECOVERY_FAULTS,
            morsel_timeout=FAULT_RECOVERY_MORSEL_TIMEOUT,
        )
        started = time.perf_counter()
        faulted = runner.run(_plan_parallel_scan(store))
        faulted_seconds = min(faulted_seconds, time.perf_counter() - started)
        if faulted.count != oracle:
            raise RuntimeError(
                f"fault_recovery: recovered run disagrees with the serial "
                f"oracle ({faulted.count} vs {oracle}) — crash recovery "
                "dropped or duplicated a morsel"
            )
        if faulted.stats.retries < 1 or faulted.stats.morsels_recovered < 1:
            raise RuntimeError(
                "fault_recovery: the injected kill never fired — the run "
                "measured nothing"
            )
        retries = faulted.stats.retries
        morsels_recovered = faulted.stats.morsels_recovered
    overhead = (
        faulted_seconds / healthy_seconds if healthy_seconds else float("inf")
    )
    return {
        "extended_edges": int(oracle),
        "rowwise_seconds": faulted_seconds,
        "vectorized_seconds": healthy_seconds,
        "rowwise_eps": oracle / faulted_seconds if faulted_seconds else 0.0,
        "vectorized_eps": oracle / healthy_seconds if healthy_seconds else 0.0,
        "speedup": overhead,
        "recovery_overhead": overhead,
        "retries": int(retries),
        "morsels_recovered": int(morsels_recovered),
        "fault_plan": FAULT_RECOVERY_FAULTS,
        "workers": PARALLEL_WORKERS,
        "available_cpus": available_cpus(),
        "start_method": start_method,
    }


def _skewed_scan_scenario_row(graph, store) -> Dict:
    """Even vs degree-weighted morsels on the hub-skewed graph.

    ``rowwise_*`` holds the even (vertex-count) split and ``vectorized_*``
    the degree-weighted split, mirroring the baseline-vs-tuned key layout of
    the other scenarios.  Both sides run the thread backend at
    ``PARALLEL_WORKERS`` workers, so the ratio isolates the load-balancing
    effect of weighting alone.
    """
    row = _ab_scenario_row(
        "skewed_scan",
        lambda: _plan_skewed_scan(store),
        lambda: MorselExecutor(
            graph, num_workers=PARALLEL_WORKERS, weighting="even"
        ),
        lambda: MorselExecutor(
            graph, num_workers=PARALLEL_WORKERS, weighting="degree"
        ),
    )
    row.update(
        workers=PARALLEL_WORKERS,
        available_cpus=available_cpus(),
        zipf_exponent=SKEWED_SCAN_EXPONENT,
    )
    return row


def _build_maintenance_db() -> Database:
    """Bench graph + one secondary VP index + one secondary EP index."""
    graph = generate_financial_graph(
        FinancialGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            num_cities=NUM_CITIES,
            skew=0.6,
            seed=23,
        )
    )
    db = Database(graph)
    db.create_vertex_index(
        OneHopView("BigWire", predicate=Predicate.of(cmp(prop("eadj", "amt"), ">", 500))),
        directions=(Direction.FORWARD,),
        config=IndexConfig(
            partition_keys=(),
            sort_keys=(SortKey.edge_property("date"), SortKey.neighbour_id()),
        ),
        name="BigWire",
    )
    db.create_edge_index(
        TwoHopView(
            "EPdate",
            EdgeAdjacencyType.DST_FW,
            Predicate.of(
                cmp(prop("eb", "date"), "<", prop("eadj", "date")),
                cmp(
                    prop("eadj", "date"),
                    "<",
                    prop("eb", "date"),
                    offset=MAINTENANCE_DATE_WINDOW,
                ),
            ),
        ),
        config=IndexConfig.flat(),
        name="EPdate",
    )
    return db


def _maintenance_delta(num_vertices: int, count: int):
    rng = np.random.default_rng(91)
    return (
        rng.integers(0, num_vertices, size=count),
        rng.integers(0, num_vertices, size=count),
        dict(
            amt=rng.integers(1, 1001, size=count),
            date=rng.integers(0, 1825, size=count),
            currency=rng.integers(0, 4, size=count),
        ),
    )


def _maintenance_checksum(db: Database):
    forward = db.primary_index.forward
    return (
        db.graph.num_edges,
        int(forward.csr.offsets.sum()),
        int(forward.id_lists.edge_ids.sum()),
        tuple(int(ix.offset_lists.offsets.sum()) for ix in db.store.vertex_indexes),
        tuple(int(ix.offset_lists.offsets.sum()) for ix in db.store.edge_indexes),
    )


def _run_maintenance_once(columnar: bool):
    """Insert the delta batch + flush; returns (seconds, merge_s, checksum)."""
    db = _build_maintenance_db()
    count = int(NUM_EDGES * MAINTENANCE_INSERT_FRACTION)
    src, dst, props = _maintenance_delta(db.graph.num_vertices, count)
    maintainer = db.maintainer(
        merge_threshold=10**12, columnar=columnar, incremental=columnar
    )
    started = time.perf_counter()
    if columnar:
        maintainer.insert_edges(src, dst, "Wire", properties=props)
    else:
        amt, date, currency = props["amt"], props["date"], props["currency"]
        for i in range(count):
            maintainer.insert_edge(
                int(src[i]),
                int(dst[i]),
                "Wire",
                amt=int(amt[i]),
                date=int(date[i]),
                currency=int(currency[i]),
            )
    maintainer.flush()
    elapsed = time.perf_counter() - started
    return elapsed, maintainer.stats.merge_seconds, _maintenance_checksum(db)


def _maintenance_scenario_row() -> Dict:
    """Legacy tuple-at-a-time vs columnar incremental maintenance."""
    count = int(NUM_EDGES * MAINTENANCE_INSERT_FRACTION)
    legacy_seconds = float("inf")
    columnar_seconds = float("inf")
    legacy_merge = columnar_merge = 0.0
    legacy_checksum = columnar_checksum = None
    for _ in range(max(REPETITIONS, 1)):
        seconds, merge_seconds, legacy_checksum = _run_maintenance_once(False)
        if seconds < legacy_seconds:
            legacy_seconds, legacy_merge = seconds, merge_seconds
        seconds, merge_seconds, columnar_checksum = _run_maintenance_once(True)
        if seconds < columnar_seconds:
            columnar_seconds, columnar_merge = seconds, merge_seconds
    if legacy_checksum != columnar_checksum:
        raise RuntimeError(
            f"maintenance: paths disagree ({legacy_checksum} vs {columnar_checksum})"
        )
    return {
        "extended_edges": count,
        "rowwise_seconds": legacy_seconds,
        "vectorized_seconds": columnar_seconds,
        "rowwise_eps": count / legacy_seconds if legacy_seconds else 0.0,
        "vectorized_eps": count / columnar_seconds if columnar_seconds else 0.0,
        "speedup": (
            legacy_seconds / columnar_seconds if columnar_seconds else float("inf")
        ),
        "rowwise_merge_seconds": legacy_merge,
        "vectorized_merge_seconds": columnar_merge,
    }


def _time_plan(graph, plan_factory: Callable[[bool], QueryPlan], vectorized: bool):
    """Best-of-N execution; returns (seconds, extended_edges)."""
    best = float("inf")
    extended = 0
    executor = Executor(graph)
    for _ in range(max(REPETITIONS, 1)):
        plan = plan_factory(vectorized)
        started = time.perf_counter()
        result = executor.run(plan)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        # "Extended edges" = rows the plan emits, the unit of work of the
        # extend loop.
        extended = result.count
    return best, extended


def run_benchmarks() -> Dict:
    """Run every scenario with both operator paths; return the report dict."""
    labelled_graph, labelled_store = _build_labelled()
    social_graph, social_store, time_key = _build_social()
    financial_graph, financial_store, city_key = _build_financial()

    scenarios = {
        "extend_1leg": (
            labelled_graph,
            lambda vectorized: _plan_extend_1leg(
                labelled_graph, labelled_store, vectorized
            ),
        ),
        "extend_2leg": (
            labelled_graph,
            lambda vectorized: _plan_extend_2leg(
                labelled_graph, labelled_store, vectorized
            ),
        ),
        "extend_sorted": (
            social_graph,
            lambda vectorized: _plan_extend_sorted(
                social_graph, social_store, time_key, vectorized
            ),
        ),
        "multi_extend": (
            financial_graph,
            lambda vectorized: _plan_multi_extend(
                financial_graph, financial_store, city_key, vectorized
            ),
        ),
    }

    report: Dict = {
        "config": {
            "num_vertices": NUM_VERTICES,
            "num_edges": NUM_EDGES,
            "bench_scale": BENCH_SCALE,
            "repetitions": REPETITIONS,
            "two_leg_scan_limit": TWO_LEG_SCAN_LIMIT,
            "time_threshold": TIME_THRESHOLD,
            "num_cities": NUM_CITIES,
            "maintenance_insert_fraction": MAINTENANCE_INSERT_FRACTION,
            "maintenance_date_window": MAINTENANCE_DATE_WINDOW,
            "skewed_scan_exponent": SKEWED_SCAN_EXPONENT,
            "parallel_workers": PARALLEL_WORKERS,
            "fault_recovery_faults": FAULT_RECOVERY_FAULTS,
        },
        "scenarios": {},
    }
    for name, (graph, factory) in scenarios.items():
        rowwise_seconds, rowwise_edges = _time_plan(graph, factory, False)
        vector_seconds, vector_edges = _time_plan(graph, factory, True)
        if rowwise_edges != vector_edges:
            raise RuntimeError(
                f"{name}: paths disagree ({rowwise_edges} vs {vector_edges} edges)"
            )
        report["scenarios"][name] = {
            "extended_edges": int(vector_edges),
            "rowwise_seconds": rowwise_seconds,
            "vectorized_seconds": vector_seconds,
            "rowwise_eps": vector_edges / rowwise_seconds if rowwise_seconds else 0.0,
            "vectorized_eps": (
                vector_edges / vector_seconds if vector_seconds else 0.0
            ),
            "speedup": (
                rowwise_seconds / vector_seconds if vector_seconds else float("inf")
            ),
        }
    report["scenarios"]["maintenance"] = _maintenance_scenario_row()
    report["scenarios"]["factorized_count"] = _factorized_count_scenario_row(
        labelled_graph, labelled_store
    )
    report["scenarios"]["parallel_scan"] = _parallel_scan_scenario_row(
        labelled_graph, labelled_store
    )
    report["scenarios"]["parallel_scan_process"] = (
        _parallel_scan_process_scenario_row(labelled_graph, labelled_store)
    )
    report["scenarios"]["fault_recovery"] = _fault_recovery_scenario_row(
        labelled_graph, labelled_store
    )
    hub_graph, hub_store = _build_hub_skewed()
    report["scenarios"]["skewed_scan"] = _skewed_scan_scenario_row(
        hub_graph, hub_store
    )
    report["scenarios"]["server_load"] = server_load_scenario_row()
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="path of the JSON results file (default: repo root)",
    )
    args = parser.parse_args()

    print_header(
        f"EXTEND throughput: batch-at-a-time vs tuple-at-a-time "
        f"({NUM_EDGES:,} edges)"
    )
    report = run_benchmarks()
    print(
        f"{'scenario':<16} {'edges':>10} {'rowwise e/s':>14} "
        f"{'vectorized e/s':>16} {'speedup':>9}"
    )
    for name, row in report["scenarios"].items():
        print(
            f"{name:<16} {row['extended_edges']:>10,} "
            f"{row['rowwise_eps']:>14,.0f} {row['vectorized_eps']:>16,.0f} "
            f"{row['speedup']:>8.1f}x"
        )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nresults written to {args.output}")


if __name__ == "__main__":
    main()
