"""Table IV (and Figure 6) — fraud money-flow queries.

Runs MF1-MF5 (Sections V-C2 and V-D) under three configurations:

* ``D``          — primary index only,
* ``D+VPc``      — plus a city-sorted secondary vertex-partitioned index in
                   both directions (enables WCOJ MULTI-EXTEND plans on city
                   equalities),
* ``D+VPc+EPc``  — plus the money-flow edge-partitioned index (enables plans
                   that read the adjacency of an *edge* directly).

Reports runtimes, speedups over ``D``, memory, number of indexed edges and
index-creation time, next to the paper's WT numbers.  The MF3 plan under the
full configuration is printed as the analogue of Figure 6.

Expected shape: VPc speeds up MF1-MF4 (most on the city-heavy cyclic
queries), EPc adds large further speedups on MF3-MF5, memory grows ~1.2x for
VPc and ~2x+ with EPc.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.bench.harness import fraud_configs
from repro.bench.reporting import Table, ratio_string
from repro.workloads import WorkloadRunner, fraud
from repro.workloads.datasets import financial_dataset

from common import BENCH_SCALE, REPETITIONS, TABLE4_DATASET, print_header

#: Paper-reported speedups over D for the WT dataset (Table IV); None = the
#: configuration generates no new plan for that query ("—" in the paper).
PAPER_SPEEDUPS_WT = {
    "D+VPc": {"MF1": 8.85, "MF2": 1.31, "MF3": 5.82, "MF4": 1.62, "MF5": None},
    "D+VPc+EPc": {"MF1": None, "MF2": None, "MF3": 18.0, "MF4": 6.14, "MF5": 11.4},
}
PAPER_MEMORY_RATIOS_WT = {"D+VPc": 1.16, "D+VPc+EPc": 2.22}

SELECTIVITY = 0.05


def _graph():
    return financial_dataset(TABLE4_DATASET, scale=BENCH_SCALE)


def run_experiment():
    graph = _graph()
    queries = fraud.build_workload(graph, selectivity=SELECTIVITY)
    configs = fraud_configs(graph, selectivity=SELECTIVITY)
    measurements = {}
    indexed_edges = {}
    for name, configured in configs.items():
        runner = WorkloadRunner(configured.database, name, configured.setup_seconds)
        measurements[name] = runner.run(queries, repetitions=REPETITIONS)
        indexed_edges[name] = configured.indexed_edges or graph.num_edges
    figure6_plan = configs["D+VPc+EPc"].database.plan(queries["MF3"])
    return measurements, indexed_edges, figure6_plan


def build_table(measurements, indexed_edges) -> Table:
    base = measurements["D"]
    table = Table(
        title=f"Table IV — fraud detection ({TABLE4_DATASET.upper()} stand-in, alpha at 5% selectivity)",
        columns=[
            "config",
            "MF1 (s)",
            "MF2 (s)",
            "MF3 (s)",
            "MF4 (s)",
            "MF5 (s)",
            "Mem (MB)",
            "|E indexed|",
            "IC (s)",
        ],
    )
    for name, measurement in measurements.items():
        table.add_row(
            name,
            measurement.runtime("MF1"),
            measurement.runtime("MF2"),
            measurement.runtime("MF3"),
            measurement.runtime("MF4"),
            measurement.runtime("MF5"),
            measurement.memory_megabytes(),
            indexed_edges[name],
            measurement.setup_seconds,
        )
    speed = Table(
        title="Table IV — speedups over D (measured vs paper WT row)",
        columns=["config", "query", "measured", "paper"],
    )
    for config_name in ("D+VPc", "D+VPc+EPc"):
        for query_name in fraud.MF_QUERY_NAMES:
            speed.add_row(
                config_name,
                query_name,
                ratio_string(measurements[config_name].speedup_over(base, query_name)),
                ratio_string(PAPER_SPEEDUPS_WT[config_name].get(query_name)),
            )
        speed.add_row(
            config_name,
            "memory ratio",
            ratio_string(measurements[config_name].memory_ratio_over(base)),
            ratio_string(PAPER_MEMORY_RATIOS_WT[config_name]),
        )
    speed.add_note(
        "paper '—' entries mean the configuration adds no new plan for that "
        "query; measured values close to 1x are the expected analogue"
    )
    table.notes.append("see the speedup table below")
    return table, speed


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fraud_setup():
    graph = _graph()
    queries = fraud.build_workload(graph, selectivity=SELECTIVITY)
    configs = {name: c.database for name, c in fraud_configs(graph, SELECTIVITY).items()}
    return queries, configs


@pytest.mark.parametrize("config_name", ["D", "D+VPc", "D+VPc+EPc"])
@pytest.mark.parametrize("query_name", ["MF1", "MF3"])
def test_benchmark_fraud_query(benchmark, fraud_setup, config_name, query_name):
    queries, configs = fraud_setup
    database = configs[config_name]
    plan = database.plan(queries[query_name])
    benchmark.extra_info["config"] = config_name
    count = benchmark(lambda: database.executor().count(plan))
    assert count >= 0


def main() -> None:
    print_header("Table IV — fraud detection (D, D+VPc, D+VPc+EPc)")
    measurements, indexed_edges, figure6_plan = run_experiment()
    runtime_table, speedup_table = build_table(measurements, indexed_edges)
    print(runtime_table.render())
    print()
    print(speedup_table.render())
    print()
    print("Figure 6 analogue — MF3 plan under D+VPc+EPc:")
    print(figure6_plan.describe())


if __name__ == "__main__":
    main()
