"""Table III — MagicRecs recommendation queries (configs D and D+VPt).

Runs MR1-MR3 (Section V-C1) under the system's default configuration ``D``
and under ``D+VPt``: a secondary vertex-partitioned index that shares the
primary's partitioning levels and sorts the innermost lists on the ``time``
property of edges, so the 5%-selective time predicate is answered by binary
search instead of per-edge predicate evaluation.

Expected shape (paper, Table III): D+VPt is faster on every query (2.0x-10.6x
in the paper) for a ~1.1x memory overhead and the speedup grows with the
number of time-filtered extensions (MR3 > MR1).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.bench.harness import magicrecs_configs
from repro.bench.reporting import Table, ratio_string
from repro.workloads import WorkloadRunner, magicrecs
from repro.workloads.datasets import social_dataset

from common import (
    BENCH_SCALE,
    REPETITIONS,
    TABLE3_DATASET,
    TABLE3_MR3_LIMIT_FRACTION,
    print_header,
)

#: Paper-reported D+VPt speedups and memory ratio for the WT dataset.
PAPER_SPEEDUPS_WT = {"MR1": 2.6, "MR2": 1.8, "MR3": 6.0}
PAPER_MEMORY_RATIO = 1.1

#: Time-predicate selectivity used by the paper.
SELECTIVITY = 0.05


def _graph():
    return social_dataset(TABLE3_DATASET, scale=BENCH_SCALE)


def _queries(graph):
    limit = int(graph.num_vertices * TABLE3_MR3_LIMIT_FRACTION)
    return magicrecs.build_workload(graph, selectivity=SELECTIVITY, mr3_a1_limit=limit)


def run_experiment() -> Dict[str, object]:
    graph = _graph()
    queries = _queries(graph)
    measurements = {}
    for name, configured in magicrecs_configs(graph).items():
        runner = WorkloadRunner(configured.database, name, configured.setup_seconds)
        measurements[name] = runner.run(queries, repetitions=REPETITIONS)
    return measurements


def build_table(measurements) -> Table:
    base = measurements["D"]
    tuned = measurements["D+VPt"]
    table = Table(
        title=f"Table III — MagicRecs ({TABLE3_DATASET.upper()} stand-in, 5% time selectivity)",
        columns=[
            "query",
            "D (s)",
            "D+VPt (s)",
            "speedup",
            "paper speedup",
            "matches",
        ],
    )
    for name in base.queries:
        table.add_row(
            name,
            base.runtime(name),
            tuned.runtime(name),
            ratio_string(tuned.speedup_over(base, name)),
            ratio_string(PAPER_SPEEDUPS_WT.get(name)),
            base.queries[name].count,
        )
    table.add_row(
        "memory (MB)",
        base.memory_megabytes(),
        tuned.memory_megabytes(),
        ratio_string(tuned.memory_ratio_over(base)),
        ratio_string(PAPER_MEMORY_RATIO),
        None,
    )
    table.add_row(
        "IC time (s)", None, tuned.setup_seconds, None, None, None
    )
    table.add_note(
        "VPt shares the primary index's partitioning levels and stores offset "
        "lists, so the memory overhead stays close to the paper's ~1.1x"
    )
    table.add_note(
        "MR3 bounds its start vertex (as the paper does on its largest datasets)"
    )
    return table


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def databases():
    graph = _graph()
    return graph, {name: c.database for name, c in magicrecs_configs(graph).items()}


@pytest.mark.parametrize("config_name", ["D", "D+VPt"])
@pytest.mark.parametrize("query_name", ["MR1", "MR2"])
def test_benchmark_magicrecs(benchmark, databases, config_name, query_name):
    graph, by_config = databases
    query = _queries(graph)[query_name]
    database = by_config[config_name]
    plan = database.plan(query)
    benchmark.extra_info["config"] = config_name
    count = benchmark(lambda: database.executor().count(plan))
    assert count >= 0


def main() -> None:
    print_header("Table III — MagicRecs (D vs D+VPt)")
    measurements = run_experiment()
    print(build_table(measurements).render())


if __name__ == "__main__":
    main()
