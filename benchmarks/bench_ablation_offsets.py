"""Ablation — offset lists vs full ID lists for secondary indexes.

The headline space claim of the paper (Section III-B3): because every
secondary list is a subset of a primary ID list, storing a small per-edge
*offset* (1-2 bytes at real-world degrees) replaces the (8-byte edge ID,
4-byte neighbour ID) pair a naive secondary index would store.  This ablation
measures, for the Table III and Table IV secondary indexes, the bytes per
indexed edge under both designs and the resulting total memory overhead over
the primary-only configuration.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.graph import Direction
from repro.graph.types import EDGE_ID_BYTES, VERTEX_ID_BYTES
from repro.bench.harness import vpt_view_and_config
from repro.bench.reporting import Table
from repro.index.primary import PrimaryIndex
from repro.index.vertex_partitioned import VertexPartitionedIndex
from repro.workloads import fraud
from repro.workloads.datasets import financial_dataset, social_dataset

from common import BENCH_SCALE, print_header


def run_experiment() -> List[dict]:
    rows = []

    # VPt (Table III): time-sorted global view sharing the primary's levels.
    social = social_dataset("wt", scale=BENCH_SCALE)
    primary = PrimaryIndex(social)
    vpt_view, vpt_config = vpt_view_and_config()
    vpt = VertexPartitionedIndex(
        social, vpt_view, Direction.FORWARD, vpt_config, primary.forward
    )
    rows.append(_row("VPt (forward)", social, primary, [vpt]))

    # VPc (Table IV): city-sorted global view in both directions.
    financial = financial_dataset("wt", scale=BENCH_SCALE)
    primary = PrimaryIndex(financial)
    vpc_view, vpc_config = fraud.vpc_view_and_config()
    vpc_fw = VertexPartitionedIndex(
        financial, vpc_view, Direction.FORWARD, vpc_config, primary.forward
    )
    vpc_bw = VertexPartitionedIndex(
        financial, vpc_view, Direction.BACKWARD, vpc_config, primary.backward
    )
    rows.append(_row("VPc (both directions)", financial, primary, [vpc_fw, vpc_bw]))
    return rows


def _row(name, graph, primary, indexes) -> dict:
    indexed_edges = sum(index.num_indexed_edges for index in indexes)
    offset_bytes = sum(index.nbytes() for index in indexes)
    id_list_bytes = indexed_edges * (EDGE_ID_BYTES + VERTEX_ID_BYTES)
    primary_bytes = primary.nbytes()
    return {
        "name": name,
        "indexed_edges": indexed_edges,
        "offset_bytes": offset_bytes,
        "offset_per_edge": offset_bytes / max(indexed_edges, 1),
        "id_list_bytes": id_list_bytes,
        "id_per_edge": id_list_bytes / max(indexed_edges, 1),
        "overhead_offsets": (primary_bytes + offset_bytes) / primary_bytes,
        "overhead_id_lists": (primary_bytes + id_list_bytes) / primary_bytes,
    }


def build_table(rows) -> Table:
    table = Table(
        title="Ablation — offset lists vs globally identifiable ID lists",
        columns=[
            "secondary index",
            "indexed edges",
            "offset bytes",
            "bytes/edge (offsets)",
            "ID-list bytes",
            "bytes/edge (IDs)",
            "memory overhead (offsets)",
            "memory overhead (ID lists)",
        ],
    )
    for row in rows:
        table.add_row(
            row["name"],
            row["indexed_edges"],
            row["offset_bytes"],
            row["offset_per_edge"],
            row["id_list_bytes"],
            row["id_per_edge"],
            f"{row['overhead_offsets']:.2f}x",
            f"{row['overhead_id_lists']:.2f}x",
        )
    table.add_note(
        "paper reference points: ~1.08x overhead for VPt, ~1.16x for the "
        "double-direction VPc, versus 12 bytes/edge for a naive ID-list design"
    )
    return table


def test_benchmark_secondary_index_resolution(benchmark):
    """Time the offset-list indirection of reading every secondary list once."""
    social = social_dataset("brk", scale=BENCH_SCALE)
    primary = PrimaryIndex(social)
    vpt_view, vpt_config = vpt_view_and_config()
    index = VertexPartitionedIndex(
        social, vpt_view, Direction.FORWARD, vpt_config, primary.forward
    )

    def read_all():
        total = 0
        for vertex in range(social.num_vertices):
            edge_ids, _ = index.list(vertex)
            total += len(edge_ids)
        return total

    total = benchmark(read_all)
    assert total == index.num_indexed_edges


def main() -> None:
    print_header("Ablation — offset lists vs ID lists (Section III-B3)")
    print(build_table(run_experiment()).render())


if __name__ == "__main__":
    main()
