"""Ablation of the segment-intersection kernel's membership strategies.

The kernel (:func:`repro.storage.intersect.intersect_segments`) picks one of
three membership tests per leg — linear ``merge``, per-candidate ``gallop``,
or a boolean-table ``hash`` probe — using two first-principles thresholds
(``GALLOP_RATIO`` and ``HASH_TABLE_DENSITY``).  This benchmark sweeps the two
dimensions those thresholds gate on, using the kernel's own ``strategy=``
override to force each strategy on identical inputs:

* **size skew** — the ratio of second-leg entries to first-leg candidates
  (``GALLOP_RATIO`` decides when per-candidate binary search beats touching
  every entry);
* **key density** — the average gap between consecutive keys inside a
  segment (``HASH_TABLE_DENSITY`` decides when the table span is dense
  enough for the O(span) boolean probe).

For every case the adaptive chooser's pick is compared with the fastest
forced strategy; the summary reports the agreement rate and per-dimension
winners so the thresholds can be tuned from data rather than argument.

Usage::

    PYTHONPATH=src python benchmarks/bench_intersect_ablation.py [--output PATH]

Writes ``BENCH_intersect_ablation.json`` to the repository root by default.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from common import print_header  # noqa: E402

from repro.storage import intersect  # noqa: E402
from repro.storage.intersect import intersect_segments  # noqa: E402

#: Batch rows per case (the kernel always works batch-at-a-time).
NUM_ROWS = 64
#: First-leg (candidate side) segment sizes.
CANDIDATE_SIZES = (8, 64)
#: Second-leg-entries to first-leg-candidates ratios (the gallop dimension).
SIZE_RATIOS = (1, 4, 16, 64, 256)
#: Average key gap inside a segment (the hash-density dimension; gap 1 means
#: consecutive keys, i.e. maximally dense).
KEY_GAPS = (1, 8, 64)
#: Timed repetitions per (case, strategy); best-of is reported.
REPETITIONS = int(os.environ.get("BENCH_REPETITIONS", "3"))

STRATEGIES = ("merge", "gallop", "hash")

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_intersect_ablation.json",
)


def _make_leg(rng, num_rows: int, seg_size: int, gap: int):
    """Sorted, unique per-row segments with a controlled key density."""
    gaps = rng.integers(1, 2 * gap + 1, size=(num_rows, seg_size))
    keys = np.cumsum(gaps, axis=1).ravel()
    counts = np.full(num_rows, seg_size, dtype=np.int64)
    return keys.astype(np.int64), counts


def _time_strategy(legs, counts, strategy) -> float:
    best = float("inf")
    for _ in range(max(REPETITIONS, 1)):
        started = time.perf_counter()
        intersect_segments(
            legs,
            counts,
            NUM_ROWS,
            presorted=[True] * len(legs),
            need_positions=True,
            strategy=strategy,
        )
        best = min(best, time.perf_counter() - started)
    return best


def _chooser_inputs(leg0_keys, leg0_counts, leg1_keys, leg1_counts):
    """Replicate the composite-key numbers the adaptive chooser sees."""
    domain = int(max(leg0_keys.max(), leg1_keys.max())) + 1
    comp0 = (
        np.repeat(np.arange(NUM_ROWS, dtype=np.int64) * domain, leg0_counts)
        + leg0_keys
    )
    comp1 = (
        np.repeat(np.arange(NUM_ROWS, dtype=np.int64) * domain, leg1_counts)
        + leg1_keys
    )
    num_candidates = len(np.unique(comp0))
    span = int(comp1.max()) - int(comp1.min()) + 1
    return num_candidates, len(comp1), span


def run_ablation() -> Dict:
    rng = np.random.default_rng(5)
    cases: List[Dict] = []
    for cand_size in CANDIDATE_SIZES:
        for ratio in SIZE_RATIOS:
            for gap in KEY_GAPS:
                leg0_keys, leg0_counts = _make_leg(rng, NUM_ROWS, cand_size, gap)
                leg1_keys, leg1_counts = _make_leg(
                    rng, NUM_ROWS, cand_size * ratio, gap
                )
                legs = [leg0_keys, leg1_keys]
                counts = [leg0_counts, leg1_counts]
                timings = {
                    strategy: _time_strategy(legs, counts, strategy)
                    for strategy in STRATEGIES
                }
                timings["adaptive"] = _time_strategy(legs, counts, None)
                num_candidates, num_entries, span = _chooser_inputs(
                    leg0_keys, leg0_counts, leg1_keys, leg1_counts
                )
                chosen = intersect.choose_strategy(num_candidates, num_entries, span)
                fastest = min(STRATEGIES, key=lambda s: timings[s])
                cases.append(
                    {
                        "candidate_segment": cand_size,
                        "entry_ratio": ratio,
                        "key_gap": gap,
                        "num_candidates": num_candidates,
                        "num_entries": num_entries,
                        "span": span,
                        "seconds": timings,
                        "chosen": chosen,
                        "fastest": fastest,
                        "chooser_within_20pct": bool(
                            timings[chosen] <= 1.2 * timings[fastest]
                        ),
                    }
                )
    agreement = sum(c["chosen"] == c["fastest"] for c in cases) / len(cases)
    near_optimal = sum(c["chooser_within_20pct"] for c in cases) / len(cases)
    # Observed gallop crossover: smallest entries/candidates ratio at which
    # gallop is the fastest strategy in the sparse (merge-friendly) cases.
    gallop_wins = [
        c["num_entries"] / max(c["num_candidates"], 1)
        for c in cases
        if c["fastest"] == "gallop"
    ]
    return {
        "config": {
            "num_rows": NUM_ROWS,
            "candidate_sizes": list(CANDIDATE_SIZES),
            "size_ratios": list(SIZE_RATIOS),
            "key_gaps": list(KEY_GAPS),
            "repetitions": REPETITIONS,
        },
        "thresholds": {
            "GALLOP_RATIO": intersect.GALLOP_RATIO,
            "HASH_TABLE_DENSITY": intersect.HASH_TABLE_DENSITY,
        },
        "summary": {
            "cases": len(cases),
            "chooser_picked_fastest": agreement,
            "chooser_within_20pct_of_fastest": near_optimal,
            "min_ratio_where_gallop_fastest": (
                min(gallop_wins) if gallop_wins else None
            ),
        },
        "cases": cases,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="path of the JSON results file (default: repo root)",
    )
    args = parser.parse_args()

    print_header("Segment-intersection kernel ablation (merge / gallop / hash)")
    report = run_ablation()
    print(
        f"{'cand':>5} {'ratio':>6} {'gap':>4} {'merge ms':>9} {'gallop ms':>10} "
        f"{'hash ms':>8} {'chosen':>7} {'fastest':>8}"
    )
    for case in report["cases"]:
        seconds = case["seconds"]
        print(
            f"{case['candidate_segment']:>5} {case['entry_ratio']:>6} "
            f"{case['key_gap']:>4} {seconds['merge'] * 1e3:>9.3f} "
            f"{seconds['gallop'] * 1e3:>10.3f} {seconds['hash'] * 1e3:>8.3f} "
            f"{case['chosen']:>7} {case['fastest']:>8}"
        )
    summary = report["summary"]
    print(
        f"\nchooser picked the fastest strategy in "
        f"{summary['chooser_picked_fastest']:.0%} of {summary['cases']} cases "
        f"({summary['chooser_within_20pct_of_fastest']:.0%} within 20% of it)"
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"results written to {args.output}")


if __name__ == "__main__":
    main()
