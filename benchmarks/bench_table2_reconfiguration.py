"""Table II — primary A+ index reconfiguration (configs D, Ds, Dp).

Runs the labelled subgraph query workload (SQ1-SQ13) under the three primary
index configurations of Section V-B:

* ``D``  — partition by edge label, sort by neighbour ID (system default),
* ``Ds`` — same partitioning, sort by neighbour label then neighbour ID,
* ``Dp`` — partition by edge label and neighbour label, sort by neighbour ID,

and reports per-query runtimes, speedups over ``D``, memory, and the index
reconfiguration (IR) time, next to the speedups the paper reports for
WT_{4,2}.  The expected *shape*: Ds is at least as fast as D on every query,
Dp at least as fast as Ds, Ds has no memory overhead, and Dp has a small one.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.bench.harness import config_d, config_dp, config_ds, database_with_primary_config
from repro.bench.reporting import Table, ratio_string, speedup
from repro.workloads import WorkloadRunner, labelled_subgraph
from repro.workloads.datasets import labelled_dataset

from common import (
    BENCH_SCALE,
    REPETITIONS,
    TABLE2_DATASET,
    TABLE2_EDGE_LABELS,
    TABLE2_VERTEX_LABELS,
    print_header,
)

#: Speedups over D reported by the paper for WT_{4,2} (Table II); our scaled
#: stand-in uses the BRK-sized graph with the same label alphabet.
PAPER_SPEEDUPS_WT42 = {
    "SQ1": (1.65, 1.91),
    "SQ2": (1.89, 2.20),
    "SQ3": (1.56, 1.80),
    "SQ4": (1.22, 1.53),
    "SQ5": (1.65, 1.99),
    "SQ6": (1.38, 1.66),
    "SQ7": (1.20, 1.21),
    "SQ8": (2.87, 3.94),
    "SQ9": (2.09, 2.62),
    "SQ10": (1.60, 1.74),
    "SQ11": (4.41, 4.45),
    "SQ12": (1.53, 1.88),
    "SQ13": (1.98, 3.26),
}
#: Memory ratio of Dp over D reported for WT_{4,2}.
PAPER_MEMORY_RATIO_DP = 1.12

CONFIGS = {"D": config_d, "Ds": config_ds, "Dp": config_dp}


def _graph():
    return labelled_dataset(
        TABLE2_DATASET, TABLE2_VERTEX_LABELS, TABLE2_EDGE_LABELS, scale=BENCH_SCALE
    )


def _queries():
    return labelled_subgraph.build_workload(TABLE2_VERTEX_LABELS, TABLE2_EDGE_LABELS)


def run_experiment() -> Dict[str, object]:
    graph = _graph()
    queries = _queries()
    measurements = {}
    for name, factory in CONFIGS.items():
        configured = database_with_primary_config(graph, name, factory())
        runner = WorkloadRunner(configured.database, name, configured.setup_seconds)
        measurements[name] = runner.run(queries, repetitions=REPETITIONS)
    return measurements


def build_table(measurements) -> Table:
    table = Table(
        title=(
            f"Table II — primary index reconfiguration "
            f"({TABLE2_DATASET.upper()}_{{{TABLE2_VERTEX_LABELS},{TABLE2_EDGE_LABELS}}} stand-in)"
        ),
        columns=[
            "query",
            "D (s)",
            "Ds (s)",
            "Dp (s)",
            "Ds speedup",
            "Dp speedup",
            "paper Ds",
            "paper Dp",
            "matches",
        ],
    )
    base = measurements["D"]
    for name in base.queries:
        paper_ds, paper_dp = PAPER_SPEEDUPS_WT42.get(name, (None, None))
        table.add_row(
            name,
            base.runtime(name),
            measurements["Ds"].runtime(name),
            measurements["Dp"].runtime(name),
            ratio_string(measurements["Ds"].speedup_over(base, name)),
            ratio_string(measurements["Dp"].speedup_over(base, name)),
            ratio_string(paper_ds),
            ratio_string(paper_dp),
            base.queries[name].count,
        )
    table.add_row(
        "memory (MB)",
        base.memory_megabytes(),
        measurements["Ds"].memory_megabytes(),
        measurements["Dp"].memory_megabytes(),
        ratio_string(measurements["Ds"].memory_ratio_over(base)),
        ratio_string(measurements["Dp"].memory_ratio_over(base)),
        ratio_string(1.0),
        ratio_string(PAPER_MEMORY_RATIO_DP),
        None,
    )
    table.add_row(
        "IR time (s)",
        base.setup_seconds,
        measurements["Ds"].setup_seconds,
        measurements["Dp"].setup_seconds,
        None,
        None,
        None,
        None,
        None,
    )
    table.add_note(
        "paper speedups are the WT_{4,2} row of Table II; expected shape: "
        "Ds >= 1x with no extra memory, Dp >= Ds with a small memory overhead"
    )
    return table


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=list(CONFIGS))
def configured_database(request):
    graph = _graph()
    return request.param, database_with_primary_config(
        graph, request.param, CONFIGS[request.param]()
    ).database


@pytest.mark.parametrize("query_name", ["SQ1", "SQ4", "SQ11"])
def test_benchmark_subgraph_query(benchmark, configured_database, query_name):
    config_name, database = configured_database
    query = labelled_subgraph.build_query(
        query_name, TABLE2_VERTEX_LABELS, TABLE2_EDGE_LABELS
    )
    plan = database.plan(query)
    benchmark.extra_info["config"] = config_name
    count = benchmark(lambda: database.executor().count(plan))
    assert count >= 0


def main() -> None:
    print_header("Table II — primary A+ index reconfiguration")
    measurements = run_experiment()
    print(build_table(measurements).render())


if __name__ == "__main__":
    main()
