"""Pytest configuration for the benchmark harness.

Adds the benchmarks directory to ``sys.path`` so the bench modules can import
their shared ``common`` module when collected by pytest from the repository
root.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
