"""Perf-regression gate for the EXTEND throughput benchmark.

Runs ``bench_extend_throughput`` and compares the measured
vectorized-vs-rowwise speedup of every scenario against the floors recorded
in ``benchmarks/baseline_extend_throughput.json``.  Ratios — not absolute
edges/sec — are compared, so the gate is meaningful on any machine; the
baseline's ``tolerance`` shrinks each floor further to absorb timer noise.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        [--baseline PATH] [--tolerance F] [--output PATH]

Exits non-zero when a scenario regresses below its floor.  The same check is
wired into the test suite as the opt-in ``perf`` pytest marker
(``tests/test_perf_regression.py``, enabled with ``RUN_PERF_BENCH=1``), so
perf regressions are visible per PR without slowing the default suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

sys.path.insert(0, os.path.dirname(__file__))

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline_extend_throughput.json"
)


def run_check(
    baseline_path: str = DEFAULT_BASELINE,
    tolerance: Optional[float] = None,
    output_path: Optional[str] = None,
) -> Dict:
    """Run the throughput bench and gate it against the baseline.

    Returns a report dict with ``ok`` (bool), ``failures`` (list of strings)
    and ``results`` (the full benchmark report).
    """
    from bench_extend_throughput import run_benchmarks

    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", 0.2))
    baseline_scenarios = baseline.get("scenarios")
    if not isinstance(baseline_scenarios, dict):
        raise SystemExit(
            f"baseline {baseline_path} has no 'scenarios' mapping; "
            "regenerate it from benchmarks/baseline_extend_throughput.json"
        )

    results = run_benchmarks()
    failures = []
    for name, spec in baseline_scenarios.items():
        measured = results["scenarios"].get(name)
        if measured is None:
            failures.append(
                f"{name}: baseline scenario missing from benchmark results — "
                "was it removed from bench_extend_throughput.py without "
                "updating the baseline?"
            )
            continue
        if "min_speedup" not in spec:
            failures.append(
                f"{name}: baseline entry has no 'min_speedup' floor; add one "
                f"to {baseline_path}"
            )
            continue
        floor = float(spec["min_speedup"]) * (1.0 - tolerance)
        speedup = float(measured["speedup"])
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor {floor:.2f}x "
                f"(baseline min {spec['min_speedup']}x, tolerance {tolerance:.0%})"
            )
    for name in results["scenarios"]:
        if name not in baseline_scenarios:
            failures.append(
                f"{name}: no baseline floor recorded — add the scenario to "
                f"{baseline_path} so it is gated"
            )

    report = {"ok": not failures, "failures": failures, "results": results}
    if output_path:
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance fraction",
    )
    parser.add_argument(
        "--output", default=None, help="optional path for the JSON report"
    )
    args = parser.parse_args()

    report = run_check(args.baseline, args.tolerance, args.output)
    for name, row in report["results"]["scenarios"].items():
        print(
            f"{name:<16} speedup {row['speedup']:>6.1f}x "
            f"({row['vectorized_eps']:,.0f} vs {row['rowwise_eps']:,.0f} edges/s)"
        )
    if report["ok"]:
        print("OK: no perf regression against baseline")
        return 0
    for failure in report["failures"]:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
