"""Perf-regression gate for the EXTEND throughput benchmark.

Runs ``bench_extend_throughput`` and compares the measured
vectorized-vs-rowwise speedup of every scenario against the floors recorded
in ``benchmarks/baseline_extend_throughput.json``.  Ratios — not absolute
edges/sec — are compared, so the gate is meaningful on any machine; the
baseline's ``tolerance`` shrinks each floor further to absorb timer noise.

Per-scenario baseline fields beyond ``min_speedup``:

* ``requires_cpus`` — the scenario needs at least this many usable cores to
  be meaningful (the parallel-scan scenario cannot beat serial on a 1-core
  container); when the measured row reports fewer ``available_cpus`` the
  floor comparison is skipped with a note instead of failing.
* ``requires_fork`` — the scenario uses per-query ``multiprocessing`` pools
  and is only meaningful where the ``fork`` start method makes pool startup
  cheap; when the measured row's ``start_method`` is not ``fork`` (spawn-only
  platforms: Windows, macOS default) the floor comparison is skipped with a
  note instead of failing.
* ``advisory_on_ci`` — a floor miss is reported as a warning instead of a
  failure when the ``CI`` environment variable is set (shared CI runners
  have noisy timers and unpredictable core counts).
* ``no_floor`` — the scenario is tracked (it must produce a result row, so
  removing it silently still fails the gate) but its ratio has no floor:
  used for advisory scenarios whose "speedup" measures overhead rather than
  a win — e.g. ``fault_recovery``, where the ratio is the cost of crash
  recovery and correctness is asserted inside the benchmark itself.

The floor comparison itself is *inclusive*: a measured speedup equal to the
floor passes, including values that differ from it only by float
representation error (``meets_floor`` uses ``math.isclose``), so a scenario
whose reference ratio sits exactly on its floor can never flake.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        [--baseline PATH] [--tolerance F] [--output PATH]

Exits non-zero when a scenario regresses below its floor.  The same check is
wired into the test suite as the opt-in ``perf`` pytest marker
(``tests/test_perf_regression.py``, enabled with ``RUN_PERF_BENCH=1``), so
perf regressions are visible per PR without slowing the default suite.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, Optional

sys.path.insert(0, os.path.dirname(__file__))

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline_extend_throughput.json"
)


def meets_floor(
    speedup: float, floor: float, rel_tol: float = 1e-9, abs_tol: float = 1e-12
) -> bool:
    """Inclusive floor comparison, robust to float representation error.

    A measured ratio exactly on the floor passes, and so does a ratio whose
    only difference from the floor is rounding in the ``min_speedup * (1 -
    tolerance)`` arithmetic — a strict ``<`` on raw floats would flip a
    boundary scenario from pass to fail on the last bit.
    """
    return speedup >= floor or math.isclose(
        speedup, floor, rel_tol=rel_tol, abs_tol=abs_tol
    )


def run_check(
    baseline_path: str = DEFAULT_BASELINE,
    tolerance: Optional[float] = None,
    output_path: Optional[str] = None,
    results: Optional[Dict] = None,
    env: Optional[Dict[str, str]] = None,
) -> Dict:
    """Run the throughput bench and gate it against the baseline.

    Args:
        baseline_path: JSON file with the per-scenario floors.
        tolerance: override the baseline file's tolerance fraction.
        output_path: optional path for the full JSON report.
        results: pre-measured benchmark results (the unit tests inject these
            to exercise the gate without running the benchmark).
        env: environment mapping consulted for ``CI`` (defaults to
            ``os.environ``; injectable for tests).

    Returns a report dict with ``ok`` (bool), ``failures``, ``warnings``
    (advisory floor misses), ``skipped`` (scenarios whose hardware
    requirement is not met) and ``results`` (the full benchmark report).
    """
    if env is None:
        env = os.environ
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", 0.2))
    baseline_scenarios = baseline.get("scenarios")
    if not isinstance(baseline_scenarios, dict):
        raise SystemExit(
            f"baseline {baseline_path} has no 'scenarios' mapping; "
            "regenerate it from benchmarks/baseline_extend_throughput.json"
        )

    if results is None:
        from bench_extend_throughput import run_benchmarks

        results = run_benchmarks()
    failures = []
    warnings = []
    skipped = []
    on_ci = bool(env.get("CI"))
    for name, spec in baseline_scenarios.items():
        measured = results["scenarios"].get(name)
        if measured is None:
            failures.append(
                f"{name}: baseline scenario missing from benchmark results — "
                "was it removed from bench_extend_throughput.py without "
                "updating the baseline?"
            )
            continue
        if spec.get("no_floor"):
            skipped.append(
                f"{name}: advisory scenario (no_floor) — measured "
                f"{float(measured.get('speedup', 0.0)):.2f}x, no floor applied"
            )
            continue
        if "min_speedup" not in spec:
            failures.append(
                f"{name}: baseline entry has no 'min_speedup' floor; add one "
                f"to {baseline_path}"
            )
            continue
        required_cpus = int(spec.get("requires_cpus", 1))
        available_cpus = int(measured.get("available_cpus", required_cpus))
        if available_cpus < required_cpus:
            skipped.append(
                f"{name}: needs >= {required_cpus} usable CPUs, this machine "
                f"has {available_cpus} — floor not comparable, skipping"
            )
            continue
        if spec.get("requires_fork"):
            start_method = str(measured.get("start_method", "fork"))
            if start_method != "fork":
                skipped.append(
                    f"{name}: needs cheap fork-based process pools, this "
                    f"platform's start method is {start_method!r} — floor "
                    "not comparable, skipping"
                )
                continue
        floor = float(spec["min_speedup"]) * (1.0 - tolerance)
        speedup = float(measured["speedup"])
        if not meets_floor(speedup, floor):
            message = (
                f"{name}: speedup {speedup:.2f}x below floor {floor:.2f}x "
                f"(baseline min {spec['min_speedup']}x, tolerance {tolerance:.0%})"
            )
            if on_ci and spec.get("advisory_on_ci"):
                warnings.append(f"{message} [advisory on CI]")
            else:
                failures.append(message)
    for name in results["scenarios"]:
        if name not in baseline_scenarios:
            failures.append(
                f"{name}: no baseline floor recorded — add the scenario to "
                f"{baseline_path} so it is gated"
            )

    report = {
        "ok": not failures,
        "failures": failures,
        "warnings": warnings,
        "skipped": skipped,
        "results": results,
    }
    if output_path:
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance fraction",
    )
    parser.add_argument(
        "--output", default=None, help="optional path for the JSON report"
    )
    args = parser.parse_args()

    report = run_check(args.baseline, args.tolerance, args.output)
    for name, row in report["results"]["scenarios"].items():
        print(
            f"{name:<16} speedup {row['speedup']:>6.1f}x "
            f"({row['vectorized_eps']:,.0f} vs {row['rowwise_eps']:,.0f} edges/s)"
        )
    for note in report["skipped"]:
        print(f"SKIPPED: {note}")
    for warning in report["warnings"]:
        print(f"WARNING: {warning}", file=sys.stderr)
    if report["ok"]:
        print("OK: no perf regression against baseline")
        return 0
    for failure in report["failures"]:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
