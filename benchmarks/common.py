"""Shared configuration for the benchmark harness.

Every ``bench_*.py`` file regenerates one table of the paper.  Two usage modes
are supported:

* ``pytest benchmarks/ --benchmark-only`` — runs the pytest-benchmark timings
  of the representative queries of every experiment, and

* ``python benchmarks/bench_table<N>_*.py`` — runs the full experiment and
  prints a plain-text table that pairs the paper's reported numbers with the
  values measured by this reproduction.

The datasets are the scaled stand-ins of :mod:`repro.workloads.datasets`; the
``BENCH_SCALE`` environment variable scales them up or down (default 1.0,
sized so the whole harness finishes in a few minutes of pure-Python
execution).
"""

from __future__ import annotations

import os
import sys
from typing import Dict

# Allow running the bench files as plain scripts from the repository root.
sys.path.insert(0, os.path.dirname(__file__))

#: Global scale multiplier applied to every dataset used by the harness.
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "1.0"))

#: Number of timed repetitions per query (best-of is reported).
REPETITIONS = int(os.environ.get("BENCH_REPETITIONS", "1"))

#: Datasets used by each experiment (kept small; the paper uses Ork/LJ/WT).
#: ``brk`` is used where the unbounded path-style queries would otherwise be
#: interpreter-bound for minutes; see EXPERIMENTS.md for the mapping.
TABLE2_DATASET = "brk"
TABLE2_VERTEX_LABELS = 4
TABLE2_EDGE_LABELS = 2
TABLE3_DATASET = "brk"
#: MR3's start vertex is bounded (as in the paper) to keep runtimes sane.
TABLE3_MR3_LIMIT_FRACTION = 0.1
TABLE4_DATASET = "brk"
#: Table V uses LJ_{12,2} (as in the paper) and BRK_{4,2} as the second graph.
TABLE5_DATASETS = ("lj", "brk")
TABLE5_LABELS = {"lj": (12, 2), "wt": (4, 2), "brk": (4, 2)}
MAINTENANCE_DATASETS = ("lj", "brk")


def print_header(title: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)
