"""Exception hierarchy for the A+ indexes reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Raised when labels, property names, or property types are misused."""


class GraphBuildError(ReproError):
    """Raised when a graph is constructed inconsistently.

    Examples: an edge referencing a vertex that does not exist, adding data to
    a graph that has already been finalized, or duplicate vertex identifiers.
    """


class IndexConfigError(ReproError):
    """Raised for invalid index configurations.

    Examples: partitioning on a non-categorical property, sorting on an
    unknown property, or an edge-partitioned view whose predicate does not
    reference both edges (the ``Redundant`` example in Section III-B2 of the
    paper).
    """


class IndexLookupError(ReproError):
    """Raised when an adjacency-list lookup is malformed.

    Examples: looking up a vertex ID outside the graph, or supplying
    partition-key values for levels that do not exist in the index.
    """


class DDLParseError(ReproError):
    """Raised when an index DDL command cannot be parsed."""


class QueryParseError(ReproError):
    """Raised when a query pattern specification cannot be parsed."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class MaintenanceError(ReproError):
    """Raised when an index update (insert/delete) cannot be applied."""
