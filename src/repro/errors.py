"""Exception hierarchy for the A+ indexes reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Raised when labels, property names, or property types are misused."""


class GraphBuildError(ReproError):
    """Raised when a graph is constructed inconsistently.

    Examples: an edge referencing a vertex that does not exist, adding data to
    a graph that has already been finalized, or duplicate vertex identifiers.
    """


class IndexConfigError(ReproError):
    """Raised for invalid index configurations.

    Examples: partitioning on a non-categorical property, sorting on an
    unknown property, or an edge-partitioned view whose predicate does not
    reference both edges (the ``Redundant`` example in Section III-B2 of the
    paper).
    """


class IndexLookupError(ReproError):
    """Raised when an adjacency-list lookup is malformed.

    Examples: looking up a vertex ID outside the graph, or supplying
    partition-key values for levels that do not exist in the index.
    """


class DDLParseError(ReproError):
    """Raised when an index DDL command cannot be parsed."""


class QueryParseError(ReproError):
    """Raised when a query pattern specification cannot be parsed."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class QueryTimeoutError(ExecutionError):
    """Raised when a query exceeds its wall-clock deadline.

    Carries the partial execution statistics accumulated up to the point the
    deadline fired (``stats``; counters only cover work whose results were
    already merged) and the requested ``timeout`` in seconds.

    Picklable with its attachments: the default exception reduction only
    replays ``args`` (here just the message), which would silently drop
    ``stats``/``timeout`` the first time the error crosses a process or
    server boundary — ``__reduce__`` replays the full constructor call.
    """

    def __init__(self, message: str, stats=None, timeout=None) -> None:
        super().__init__(message)
        self.stats = stats
        self.timeout = timeout

    def __reduce__(self):
        return (type(self), (self.args[0], self.stats, self.timeout))


class QueryCancelledError(ExecutionError):
    """Raised when a query's cooperative cancellation token is triggered.

    Carries the partial execution statistics accumulated up to the point the
    cancellation was observed (``stats``).  ``__reduce__`` keeps the stats
    attached across pickling (see :class:`QueryTimeoutError`).
    """

    def __init__(self, message: str, stats=None) -> None:
        super().__init__(message)
        self.stats = stats

    def __reduce__(self):
        return (type(self), (self.args[0], self.stats))


class WorkerCrashError(ExecutionError):
    """A morsel was lost to a worker failure (crash, hang, corrupt reply).

    This is the *recoverable* failure signal of the morsel runtime: backends
    raise it from ``result()`` when a morsel's output cannot be trusted or
    never arrived — a dead process-pool worker, a per-morsel reply timeout,
    a reply whose checksum does not match its payload, or an injected fault
    — and the dispatcher responds by retrying the lost vertex range on the
    surviving workers, degrading to in-process serial re-execution when
    retries are exhausted.  It only escapes to callers if even that serial
    re-execution fails.
    """


class MaintenanceError(ReproError):
    """Raised when an index update (insert/delete) cannot be applied."""


class ServerError(ReproError):
    """Base class for errors raised by the admission-controlled query server."""


class ServerOverloadedError(ServerError):
    """The server's bounded admission queue refused (or evicted) a query.

    Raised from ``DatabaseServer.submit`` under the ``reject`` admission
    policy when the queue is full, and attached to the evicted ticket under
    ``shed-oldest``.  Carries enough context for a client to build a retry
    policy: the ``policy`` in force, the observed ``queue_depth``, and the
    configured ``max_queue_depth``.  Picklable with its attachments (the
    default reduction would drop them at the server boundary).
    """

    def __init__(
        self,
        message: str,
        policy=None,
        queue_depth=None,
        max_queue_depth=None,
    ) -> None:
        super().__init__(message)
        self.policy = policy
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.policy, self.queue_depth, self.max_queue_depth),
        )


class ServerClosedError(ServerError):
    """A query was submitted to a server that is draining or shut down."""
