"""The admission-controlled query server wrapping one :class:`Database`.

``Database.run`` is a library call: it builds an executor (and, for the
process backend, a whole worker pool) per invocation and imposes no limit
on how many callers do so at once.  :class:`DatabaseServer` is the
long-lived service shape of the same engine:

* **Bounded concurrency** — ``max_concurrent`` dedicated worker threads
  are the execution slots; everything else waits in a bounded admission
  queue or is refused per the configured policy
  (:mod:`repro.server.admission`).
* **Persistent pools** — slots lease worker pools from a
  :class:`~repro.server.pools.PoolSupervisor` keyed on
  ``(backend, parallelism)``; pools survive across queries, payloads are
  re-shipped lazily per ``(plan id, store generation)``, crashed pools
  are recycled, and repeated failures trip a circuit breaker that
  degrades leases to serial execution
  (:mod:`repro.server.pools`).
* **Deadline integration** — a query's PR 7 deadline is fixed at
  *submission*: queue wait spends the same budget as execution, a queued
  query whose deadline expires is shed without occupying a slot, and a
  caller blocked on its ticket self-sheds at the deadline.
* **Graceful shutdown** — :meth:`DatabaseServer.drain` admits nothing
  new, cancels queued tickets via their
  :class:`~repro.query.runtime.CancellationToken`, finishes running
  queries, and closes every pool leak-free.

Determinism contract: an *admitted* query returns byte-identical results
to a direct ``Database.run()`` of the same plan — the server changes who
waits and who is refused, never what an answered query answers.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional, Union

from ..errors import (
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    WorkerCrashError,
)
from ..query.executor import MorselExecutor, QueryResult
from ..query.pattern import QueryGraph
from ..query.pipeline import validate_limit
from ..query.plan import QueryPlan
from ..query.runtime import CancellationToken, QueryContext
from .admission import (
    QUEUED,
    RUNNING,
    COMPLETED,
    FAILED,
    REJECTED,
    SHED,
    ServerConfig,
    ServerStats,
    ServerTicket,
)
from .pools import PoolSupervisor

#: Server lifecycle states.
_STATE_RUNNING = "running"
_STATE_DRAINING = "draining"
_STATE_CLOSED = "closed"


class DatabaseServer:
    """A long-lived, admission-controlled façade over one ``Database``.

    Usage::

        server = DatabaseServer(db, ServerConfig(max_concurrent=2))
        try:
            ticket = server.submit(query, timeout=5.0)
            result = ticket.result()        # or: server.run(query)
        finally:
            server.drain()

    Also a context manager (``with db.server() as server: ...``) — exit
    drains.  Thread-safe: any number of client threads may submit
    concurrently; the worker budget never exceeds
    ``max_concurrent × parallelism``.
    """

    def __init__(self, db, config: Optional[ServerConfig] = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.supervisor = PoolSupervisor(
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown,
        )
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._work_available = threading.Condition(self._lock)
        self._queue: "deque[ServerTicket]" = deque()
        self._running_tickets = set()
        self._state = _STATE_RUNNING
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-server-slot-{slot}",
                daemon=True,
            )
            for slot in range(self.config.max_concurrent)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Union[QueryGraph, QueryPlan],
        mode: str = "run",
        materialize: bool = False,
        factorized: Optional[bool] = None,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ServerTicket:
        """Admit one query; returns its :class:`ServerTicket`.

        ``mode`` selects the sink the slot drains through — ``"run"``,
        ``"count"``, ``"collect"`` (honouring ``limit=``; the streaming
        ``LimitSink`` short-circuits server-side too), or ``"exists"``.
        All four share the same pinned-plan path, so a cached plan serves
        every mode.

        Planning happens here, synchronously, against an atomic store
        snapshot — the ticket carries a pinned plan, so whatever the queue
        does afterwards cannot change *what* the query reads.  A
        ``QueryGraph`` submission consults the database's
        :class:`~repro.query.plan_cache.PlanCache` (the outcome lands in
        ``stats.plan_cache_hits``/``plan_cache_misses``); a pre-built
        ``QueryPlan`` replays against its own pinned generation and skips
        the cache.  The query's deadline (from ``timeout`` or the config's
        ``default_timeout``) also starts here: waiting in the queue spends
        the same budget execution would.

        Raises :class:`~repro.errors.ServerClosedError` once draining,
        :class:`~repro.errors.ServerOverloadedError` under the ``reject``
        policy when the queue is full, and
        :class:`~repro.errors.QueryTimeoutError` when a ``block``-policy
        wait outlives the query's own deadline.
        """
        if mode not in ("run", "count", "collect", "exists"):
            raise ExecutionError(
                f"unknown submit mode {mode!r}; expected 'run', 'count', "
                "'collect', or 'exists'"
            )
        if limit is not None and mode != "collect":
            raise ExecutionError(
                f"limit= only applies to mode='collect', not mode={mode!r}"
            )
        validate_limit(limit)
        effective_timeout = (
            timeout if timeout is not None else self.config.default_timeout
        )
        runtime = QueryContext(timeout=effective_timeout, cancel=cancel)
        plan, snapshot, cache_hit = self.db._pinned_plan(query)
        workers = self.db._resolve_parallelism(
            parallelism if parallelism is not None else self.config.parallelism
        )
        backend_name = self.db._resolve_backend(
            backend if backend is not None else self.config.backend
        )
        if workers == 1:
            # One worker needs no pool; the serial lease is the cheap,
            # always-healthy path (and what direct Database.run(parallelism=1)
            # does).
            backend_name = "serial"
        kwargs = {
            "materialize": materialize,
            "factorized": factorized,
            "limit": limit,
        }
        ticket = ServerTicket(
            server=self,
            plan=plan,
            snapshot=snapshot,
            mode=mode,
            kwargs=kwargs,
            runtime=runtime,
            parallelism=workers,
            backend=backend_name,
        )
        with self._lock:
            if self._state != _STATE_RUNNING:
                raise ServerClosedError(
                    "server is draining/closed and admits no new queries"
                )
            self.stats.submitted += 1
            if isinstance(query, QueryGraph):
                if cache_hit:
                    self.stats.plan_cache_hits += 1
                else:
                    self.stats.plan_cache_misses += 1
            while len(self._queue) >= self.config.max_queue_depth:
                if self.config.policy == "reject":
                    self.stats.rejected += 1
                    depth = len(self._queue)
                    error = ServerOverloadedError(
                        f"admission queue full ({depth} waiting, policy "
                        "'reject'); retry later or raise max_queue_depth",
                        policy="reject",
                        queue_depth=depth,
                        max_queue_depth=self.config.max_queue_depth,
                    )
                    ticket._finish(REJECTED, error=error)
                    raise error
                if self.config.policy == "shed-oldest":
                    victim = self._queue.popleft()
                    self._not_full.notify()
                    self.stats.shed += 1
                    victim.token.cancel()
                    victim._finish(
                        SHED,
                        error=ServerOverloadedError(
                            "shed from the admission queue: a newer query "
                            "arrived while the queue was full (policy "
                            "'shed-oldest')",
                            policy="shed-oldest",
                            queue_depth=self.config.max_queue_depth,
                            max_queue_depth=self.config.max_queue_depth,
                        ),
                    )
                    continue
                # policy == "block": wait for room, bounded by the query's
                # own deadline — blocking past it would admit a corpse.
                remaining = runtime.remaining()
                if remaining is not None and remaining <= 0:
                    self.stats.rejected += 1
                    error = QueryTimeoutError(
                        "query's deadline expired while blocked at "
                        "admission (policy 'block')",
                        timeout=runtime.timeout,
                    )
                    ticket._finish(REJECTED, error=error)
                    raise error
                self._not_full.wait(timeout=remaining)
                if self._state != _STATE_RUNNING:
                    self.stats.rejected += 1
                    error = ServerClosedError(
                        "server began draining while this query was "
                        "blocked at admission"
                    )
                    ticket._finish(REJECTED, error=error)
                    raise error
            self._queue.append(ticket)
            self._work_available.notify()
        return ticket

    def run(self, query, **kwargs) -> QueryResult:
        """Submit and wait: the server-side analogue of ``Database.run``."""
        return self.submit(query, mode="run", **kwargs).result()

    def count(self, query, **kwargs) -> int:
        """Submit and wait: the server-side analogue of ``Database.count``."""
        return self.submit(query, mode="count", **kwargs).result()

    def collect(self, query, limit=None, **kwargs):
        """Submit and wait: the server-side analogue of ``Database.collect``."""
        return self.submit(query, mode="collect", limit=limit, **kwargs).result()

    def exists(self, query, **kwargs) -> bool:
        """Submit and wait: the server-side analogue of ``Database.exists``."""
        return self.submit(query, mode="exists", **kwargs).result()

    # ------------------------------------------------------------------
    # ticket call-backs (shed paths initiated by the ticket holder)
    # ------------------------------------------------------------------
    def _remove_queued(self, ticket: ServerTicket) -> bool:
        """Atomically pull a still-queued ticket; False if it already left."""
        with self._lock:
            try:
                self._queue.remove(ticket)
            except ValueError:
                return False
            self.stats.shed += 1
            self._not_full.notify()
            return True

    def _shed_expired_ticket(self, ticket: ServerTicket) -> bool:
        """Shed a queued ticket whose deadline expired (caller-initiated)."""
        if not self._remove_queued(ticket):
            return False
        ticket.token.cancel()
        budget = (
            f"its {ticket.runtime.timeout:g}s deadline"
            if ticket.runtime.timeout is not None
            else "its deadline"
        )
        ticket._finish(
            SHED,
            error=QueryTimeoutError(
                f"query exceeded {budget} while waiting in the admission "
                "queue (shed without occupying an execution slot)",
                timeout=ticket.runtime.timeout,
            ),
        )
        return True

    def _cancel_queued_ticket(self, ticket: ServerTicket) -> bool:
        """Shed a queued ticket whose holder cancelled it."""
        if not self._remove_queued(ticket):
            return False
        ticket._finish(
            SHED,
            error=QueryCancelledError(
                "query cancelled via its ticket while waiting in the "
                "admission queue"
            ),
        )
        return True

    # ------------------------------------------------------------------
    # execution slots
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and self._state == _STATE_RUNNING:
                    self._work_available.wait()
                if not self._queue:
                    return  # draining and nothing left to do
                ticket = self._queue.popleft()
                self._not_full.notify()
                if ticket.done():  # pragma: no cover - raced a shed path
                    continue
                if ticket.runtime.expired() or ticket.token.cancelled:
                    # Queue-deadline shedding: the slot is freed for the
                    # next ticket instead of executing a corpse.
                    self.stats.shed += 1
                    shed_ticket = ticket
                else:
                    shed_ticket = None
                    self.stats.admitted += 1
                    ticket.state = RUNNING
                    self._running_tickets.add(ticket)
            if shed_ticket is not None:
                self._finish_shed(shed_ticket)
                continue
            try:
                self._execute_ticket(ticket)
            finally:
                with self._lock:
                    self._running_tickets.discard(ticket)

    def _finish_shed(self, ticket: ServerTicket) -> None:
        was_cancelled = ticket.token.cancelled
        ticket.token.cancel()
        if was_cancelled and not ticket.runtime.expired():
            error: Exception = QueryCancelledError(
                "query cancelled while waiting in the admission queue"
            )
        else:
            budget = (
                f"its {ticket.runtime.timeout:g}s deadline"
                if ticket.runtime.timeout is not None
                else "its deadline"
            )
            error = QueryTimeoutError(
                f"query exceeded {budget} while waiting in the admission "
                "queue (shed without occupying an execution slot)",
                timeout=ticket.runtime.timeout,
            )
        ticket._finish(SHED, error=error)

    def _execute_ticket(self, ticket: ServerTicket) -> None:
        """Run one admitted ticket on a leased pool; publish its outcome."""
        try:
            lease = self.supervisor.lease(ticket.backend, ticket.parallelism)
        except Exception as exc:
            with self._lock:
                self.stats.failed += 1
            ticket._finish(FAILED, error=exc)
            return
        outcome = "ok"
        value = None
        error: Optional[BaseException] = None
        try:
            executor = MorselExecutor(
                ticket.snapshot.graph,
                batch_size=self.db.batch_size,
                num_workers=ticket.parallelism,
                backend=lease.backend,
            )
            if ticket.mode == "count":
                value = executor.count(
                    ticket.plan,
                    factorized=ticket.kwargs.get("factorized"),
                    runtime=ticket.runtime,
                )
            elif ticket.mode == "collect":
                value = executor.collect(
                    ticket.plan,
                    limit=ticket.kwargs.get("limit"),
                    runtime=ticket.runtime,
                )
            elif ticket.mode == "exists":
                value = executor.exists(
                    ticket.plan,
                    runtime=ticket.runtime,
                )
            else:
                value = executor.run(
                    ticket.plan,
                    materialize=ticket.kwargs.get("materialize", False),
                    factorized=ticket.kwargs.get("factorized"),
                    runtime=ticket.runtime,
                )
        except (QueryTimeoutError, QueryCancelledError) as exc:
            # The query was cut short; the pool may hold abandoned morsels,
            # so recycle it — but a slow query is not a pool failure and
            # must not feed the circuit breaker.
            outcome = "aborted"
            error = exc
        except WorkerCrashError as exc:
            # Escaped the dispatcher's retry + serial fallback: the pool is
            # systematically sick.  Count it against the breaker.
            outcome = "failed"
            error = exc
        except Exception as exc:
            # A deterministic query error (planning/execution bug, bad
            # arguments): the query failed, the pool is fine.
            error = exc
        # PR 7's death watch, reused at the pool granularity: a query that
        # *recovered* from a worker death still ran on a wounded pool —
        # recycle it and feed the circuit breaker, so repeated sickness
        # degrades future leases instead of every query paying the
        # recovery tax.
        if outcome != "failed" and getattr(
            lease.backend, "_death_ever", False
        ):
            outcome = "failed"
        try:
            # Release *before* publishing the result: a caller who sees
            # the ticket finish must also see the supervisor's accounting
            # (recycles, breaker state) for the query it just ran.
            lease.release(outcome)
        finally:
            if error is not None:
                with self._lock:
                    self.stats.failed += 1
                ticket._finish(FAILED, error=error)
            else:
                with self._lock:
                    self.stats.completed += 1
                ticket._finish(COMPLETED, value=value)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def running(self) -> int:
        with self._lock:
            return len(self._running_tickets)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: refuse new work, cancel queued, finish running.

        Idempotent.  Queued tickets are cancelled via their
        ``CancellationToken`` and fail with
        :class:`~repro.errors.QueryCancelledError`; admitted (running)
        queries run to completion; worker threads exit; every pool is
        closed.  ``timeout`` bounds the wait for the worker threads
        (``None`` waits indefinitely — running queries with no deadline
        can legitimately take a while).
        """
        with self._lock:
            already = self._state != _STATE_RUNNING
            self._state = _STATE_DRAINING
            queued = list(self._queue)
            self._queue.clear()
            self.stats.shed += len(queued)
            self._work_available.notify_all()
            self._not_full.notify_all()
        for ticket in queued:
            ticket.token.cancel()
            ticket._finish(
                SHED,
                error=QueryCancelledError(
                    "queued query cancelled by server drain"
                ),
            )
        for worker in self._workers:
            worker.join(timeout=timeout)
        if not already:
            self.supervisor.close()
        with self._lock:
            if all(not worker.is_alive() for worker in self._workers):
                self._state = _STATE_CLOSED

    close = drain

    def __enter__(self) -> "DatabaseServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        with self._lock:
            state = self._state
            depth = len(self._queue)
            running = len(self._running_tickets)
            counters = self.stats.snapshot()
        lines = [
            f"Database server [{state}]:",
            f"  admission: policy={self.config.policy!r}, "
            f"slots={self.config.max_concurrent}, "
            f"queue {depth}/{self.config.max_queue_depth}, "
            f"running {running}",
            "  counters: "
            + ", ".join(f"{key}={value}" for key, value in counters.items()),
            f"  defaults: parallelism={self.config.parallelism}, "
            f"backend={self.config.backend!r}, "
            f"timeout={self.config.default_timeout}",
            f"  breaker: threshold={self.config.breaker_threshold}, "
            f"cooldown={self.config.breaker_cooldown:g}s",
        ]
        lines.append(
            "\n".join(
                "  " + line for line in self.supervisor.describe().splitlines()
            )
        )
        return "\n".join(lines)
