"""Persistent worker pools, their supervisor, and the degradation breaker.

The per-query backends in :mod:`repro.query.backends` pay their whole pool
lifecycle on every ``execute`` — the process backend forks (or spawns) a
fresh pool, ships the payload, runs the query, and terminates.  That is the
right shape for a library call, and exactly the wrong shape for a server: a
long-lived :class:`~repro.server.server.DatabaseServer` runs thousands of
queries, most of them against a handful of hot plans, and per-query spawn
cost would dominate every morsel of useful work.

This module provides the server's pool layer:

* :class:`PersistentProcessBackend` / :class:`PersistentThreadBackend` /
  :class:`PersistentSerialBackend` — drop-in
  :class:`~repro.query.backends.MorselBackend` implementations whose pools
  *survive across queries*.  The dispatcher's per-query ``open``/``close``
  calls only swap per-query state; the actual workers live until
  :meth:`shutdown`.  The process variant replaces the pool-initializer
  payload shipping with a *lazy payload cache* keyed on
  ``(plan id, store generation)``: workers keep the payloads of recent
  plans rehydrated, a task for an uncached plan raises the picklable
  :class:`PayloadMissing` signal, and the parent re-submits that one task
  with the payload bytes attached.  A worker respawned after a crash
  starts with an empty cache and heals through exactly the same path.
* :class:`PoolSupervisor` — owns every pool, keyed on
  ``(backend, parallelism)``.  Queries *lease* a pool and release it with
  an outcome; healthy pools return to the free list, failed or aborted
  pools are shut down and replaced on the next lease (crash recovery at
  the pool granularity, reusing the backends' death watch at the morsel
  granularity).
* :class:`CircuitBreaker` — per pool key.  Repeated pool failures open the
  breaker and subsequent leases *degrade* to a serial in-process backend
  (correct, just slower — the determinism contract makes the fallback
  byte-identical); after a cooldown one trial lease probes whether pools
  recovered.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..errors import ExecutionError, ReproError, WorkerCrashError
from ..query.backends import (
    _PLAN_IDS,
    MorselTaskSpec,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WORKER_STARTUP_TIMEOUT_SECONDS,
    WorkerPayload,
    _execute_payload_task,
    resolve_morsel_timeout,
)
from ..query.faults import FaultPlan
from ..query.plan import QueryPlan
from ..query.runtime import QueryContext


class PayloadMissing(ReproError):
    """Worker-side signal: this task's payload is not in the worker's cache.

    Part of the persistent process backend's wire protocol, not an error a
    caller should ever see: the parent catches it in ``result()`` and
    re-submits the same task with the payload bytes attached.  Raised by a
    fresh worker (first task of a plan, or a respawn after a crash) and by
    a worker whose LRU cache evicted the plan.  ``__reduce__`` replays the
    constructor so the identifying attributes survive the pool's exception
    transport.
    """

    def __init__(self, plan_id: int, generation: Optional[int]) -> None:
        super().__init__(
            f"worker has no cached payload for plan {plan_id} "
            f"(generation {generation})"
        )
        self.plan_id = plan_id
        self.generation = generation

    def __reduce__(self):
        return (type(self), (self.plan_id, self.generation))


#: Worker-side LRU of rehydrated payloads, keyed by wire plan id.  Bounded:
#: a payload pins a whole plan + graph generation, and a long-lived server
#: cycles through many; keeping the hottest few is the point of persistence,
#: keeping all of them would be a slow memory leak.
_PAYLOAD_CACHE: "OrderedDict[int, WorkerPayload]" = OrderedDict()
_PAYLOAD_CACHE_CAPACITY = 8

#: Parent-side bound on distinct payloads kept pickled for re-shipping.
_PARENT_PAYLOAD_CAPACITY = 16


def _persistent_worker_ready() -> bool:
    """Startup health probe for persistent pools (no payload needed)."""
    return True


def _persistent_worker_run(
    spec: MorselTaskSpec, payload_bytes: Optional[bytes] = None
):
    """Worker body of the persistent process pool.

    Unlike :func:`~repro.query.backends._process_worker_run` (whose payload
    arrives once via the pool initializer), the payload is looked up in the
    per-process LRU cache; ``payload_bytes`` rides along only on the
    parent's re-submission after a :class:`PayloadMissing` round trip.
    """
    global _PAYLOAD_CACHE
    payload = _PAYLOAD_CACHE.get(spec.plan_id)
    if payload is None:
        if payload_bytes is None:
            raise PayloadMissing(spec.plan_id, spec.generation)
        payload = pickle.loads(payload_bytes)
        _PAYLOAD_CACHE[spec.plan_id] = payload
        while len(_PAYLOAD_CACHE) > _PAYLOAD_CACHE_CAPACITY:
            _PAYLOAD_CACHE.popitem(last=False)
    else:
        _PAYLOAD_CACHE.move_to_end(spec.plan_id)
    return _execute_payload_task(payload, spec)


class PersistentProcessBackend(ProcessBackend):
    """A process pool that survives across queries, with lazy payload cache.

    ``start()`` spawns the workers once; per-query ``open``/``close`` only
    swap plan state.  Payload shipping is demand-driven: ``open`` registers
    the query's payload under a parent-side key (plan identity, generation,
    batch size, factorization, fault plan) and reuses the wire plan id for
    repeated configurations, so after the first query of a plan its morsels
    cost one tiny :class:`~repro.query.backends.MorselTaskSpec` each — the
    per-query spawn *and* payload cost both drop to zero on the hot path.

    Crash recovery composes with persistence: ``multiprocessing.Pool``
    respawns dead workers without any initializer, the respawn's empty
    cache surfaces as :class:`PayloadMissing` on its first task, and the
    parent re-ships the payload — the same mechanism that warms a new pool
    heals a wounded one.
    """

    name = "process-persistent"

    def __init__(self, num_workers: int) -> None:
        super().__init__()
        if num_workers < 1:
            raise ExecutionError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self._num_workers = int(num_workers)
        # key -> (wire plan id, payload bytes, payload object).  The payload
        # object reference keeps the plan alive so the id()-based key cannot
        # be reused by a different plan while the entry exists.
        self._payloads: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.queries_served = 0
        self.payload_ships = 0
        self.payload_reuses = 0

    def start(self) -> "PersistentProcessBackend":
        """Spawn the worker pool and prove one worker answers."""
        method = self._start_method()
        context = multiprocessing.get_context(method)
        self._pool = context.Pool(processes=self._num_workers)
        probe = self._pool.apply_async(_persistent_worker_ready)
        try:
            probe.get(timeout=WORKER_STARTUP_TIMEOUT_SECONDS)
        except multiprocessing.TimeoutError:
            self.shutdown()
            raise ExecutionError(
                f"persistent process pool workers failed to start within "
                f"{WORKER_STARTUP_TIMEOUT_SECONDS:.0f}s (start method "
                f"{method!r}); under forkserver/spawn the parent's "
                "__main__ must be importable"
            ) from None
        except BaseException:
            self.shutdown()
            raise
        self._seen_pids = self._worker_pids()
        self._death_ever = False
        return self

    def open(
        self,
        executor,
        plan: QueryPlan,
        factorized: bool = False,
        runtime: Optional[QueryContext] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if self._pool is None:
            raise ExecutionError(
                "persistent process backend is not started (or already "
                "shut down); call start() before leasing it to queries"
            )
        batch_size = executor.batch_size * executor.coalesce
        generation = plan.pinned_generation
        key = (id(plan), generation, factorized, batch_size, faults)
        entry = self._payloads.get(key)
        if entry is None:
            plan_id = next(_PLAN_IDS)
            payload = WorkerPayload(
                plan_id=plan_id,
                generation=generation,
                plan=plan,
                graph=executor.graph,
                batch_size=batch_size,
                factorized=factorized,
                faults=faults,
            )
            entry = (
                plan_id,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                payload,
            )
            self._payloads[key] = entry
            while len(self._payloads) > _PARENT_PAYLOAD_CAPACITY:
                self._payloads.popitem(last=False)
        else:
            self._payloads.move_to_end(key)
            self.payload_reuses += 1
        self._plan_id = entry[0]
        self._payload_bytes = entry[1]
        self._generation = generation
        self._factorized = factorized
        self._runtime = runtime
        self._morsel_timeout = resolve_morsel_timeout(
            getattr(executor, "morsel_timeout", None)
        )
        # Fresh death watch per query: a death absorbed (and healed) during
        # an earlier query must not charge this one a grace beat per morsel.
        self._seen_pids = self._worker_pids()
        self._death_ever = False
        self.queries_served += 1

    def submit(self, start: int, stop: int, index: int = 0, attempt: int = 0):
        spec = MorselTaskSpec(
            plan_id=self._plan_id,
            generation=self._generation,
            start=start,
            stop=stop,
            index=index,
            attempt=attempt,
        )
        return (self._pool.apply_async(_persistent_worker_run, (spec,)), spec)

    def result(self, handle):
        async_result, spec = handle
        index, start, stop = spec.index, spec.start, spec.stop
        reships = 0
        while True:
            try:
                reply = self._await_reply(async_result, index, start, stop)
                break
            except PayloadMissing:
                # A cold worker held the task (fresh pool, post-crash
                # respawn, or LRU eviction): re-submit with the payload
                # attached.  Bounded — every worker caches the payload on
                # its first shipped task, so more round trips than workers
                # means the pool is systematically losing its cache.
                reships += 1
                if reships > 2 * self._num_workers:
                    raise WorkerCrashError(
                        f"morsel {index} [{start}, {stop}) could not be "
                        f"placed after {reships} payload re-ships; the "
                        "pool's workers are not retaining payloads"
                    ) from None
                self.payload_ships += 1
                async_result = self._pool.apply_async(
                    _persistent_worker_run, (spec, self._payload_bytes)
                )
        return self._decode_reply(reply, index, start, stop)

    def close(self) -> None:
        """Per-query teardown: release query state, keep the pool alive.

        The dispatcher calls this at the end of every ``execute`` (also on
        abandonment).  Abandoned in-flight morsels are left to finish in
        the background — the supervisor discards the whole pool when a
        query failed or was aborted, so stuck workers cannot haunt the
        next lease.
        """
        self._runtime = None

    def shutdown(self) -> None:
        """Actually terminate and reap the pool (idempotent, thread-safe)."""
        ProcessBackend.close(self)


class PersistentThreadBackend(ThreadBackend):
    """A thread pool that survives across queries.

    Thread pools are cheap next to process pools, but a server still
    benefits: no per-query thread churn, and the pool layer treats every
    backend uniformly (leases, health, breaker) so degradation policy does
    not special-case the backend in use.
    """

    name = "thread-persistent"

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ExecutionError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self._num_workers = int(num_workers)
        self._pool = None
        self._shutdown_lock = threading.Lock()
        self.queries_served = 0

    def start(self) -> "PersistentThreadBackend":
        self._pool = ThreadPoolExecutor(
            max_workers=self._num_workers,
            thread_name_prefix="repro-server-pool",
        )
        return self

    def open(
        self,
        executor,
        plan: QueryPlan,
        factorized: bool = False,
        runtime: Optional[QueryContext] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if self._pool is None:
            raise ExecutionError(
                "persistent thread backend is not started (or already "
                "shut down); call start() before leasing it to queries"
            )
        self._plan = plan
        self._graph = executor.graph
        self._batch_size = executor.batch_size * executor.coalesce
        self._factorized = factorized
        self._runtime = runtime
        self._faults = faults
        self._clock = getattr(executor, "clock", None)
        self.queries_served += 1

    def close(self) -> None:
        """Per-query teardown: drop query state, keep the pool alive."""
        self._plan = None
        self._graph = None
        self._runtime = None
        self._faults = None

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent, thread-safe)."""
        with self._shutdown_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


class PersistentSerialBackend(SerialBackend):
    """The serial backend with the persistent lease interface.

    Serial execution holds no pool state at all, so persistence is a
    formality — but giving it ``start``/``shutdown`` lets the supervisor
    (and the circuit breaker's degraded leases) treat every backend
    uniformly.
    """

    name = "serial-persistent"

    def __init__(self, num_workers: int = 1) -> None:
        self._num_workers = int(num_workers)
        self.queries_served = 0

    def start(self) -> "PersistentSerialBackend":
        return self

    def open(self, *args, **kwargs) -> None:
        super().open(*args, **kwargs)
        self.queries_served += 1

    def shutdown(self) -> None:
        self.close()


#: Persistent backend class per public backend name.
PERSISTENT_BACKENDS = {
    "serial": PersistentSerialBackend,
    "thread": PersistentThreadBackend,
    "process": PersistentProcessBackend,
}


class CircuitBreaker:
    """Consecutive-failure breaker guarding one pool key.

    States: *closed* (healthy — leases create/reuse real pools), *open*
    (``threshold`` consecutive pool failures — leases degrade to serial
    until ``cooldown_seconds`` pass), *half-open* (cooldown elapsed — the
    next lease is a real-pool trial; its failure re-opens the breaker with
    a fresh cooldown, its success closes it).

    Thread-safe; time is injectable for deterministic tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ExecutionError(f"threshold must be >= 1, got {threshold}")
        if cooldown_seconds < 0:
            raise ExecutionError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.trips = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._opened_at is not None:
                # A failed half-open trial: re-open with a fresh cooldown.
                self._opened_at = self._clock()
            elif self._failures >= self.threshold:
                self._opened_at = self._clock()
                self.trips += 1

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def allows(self) -> bool:
        """May the next lease use a real pool?

        True while closed, and again once the cooldown elapses (the
        half-open trial).  Concurrent leases during half-open all trial —
        acceptable: the cost of a wrong guess is one more failed pool, and
        serializing trials would stall a recovered server.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            return self._clock() - self._opened_at >= self.cooldown_seconds

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                return "half-open"
            return "open"


class PoolLease:
    """One query's hold on a supervised pool.

    Release exactly once, with the query's outcome:

    * ``"ok"`` — the pool behaved; it returns to the free list and the
      breaker records a success.
    * ``"failed"`` — the pool (not the query) misbehaved: a worker-crash
      error escaped recovery, or pool machinery raised.  The pool is shut
      down and the breaker records a failure.
    * ``"aborted"`` — the *query* was cut short (deadline, cancellation)
      and may have left stuck or busy workers behind.  The pool is shut
      down so the next lease starts clean, but the breaker records nothing
      — a slow query is not a sick pool.
    """

    def __init__(self, backend, key, supervisor, degraded: bool = False) -> None:
        self.backend = backend
        self.key = key
        self.degraded = degraded
        self._supervisor = supervisor
        self._released = False

    def release(self, outcome: str = "ok") -> None:
        if self._released:  # pragma: no cover - defensive
            return
        self._released = True
        self._supervisor._release(self, outcome)


class PoolSupervisor:
    """Owns every persistent pool; queries lease and release them.

    Pools are keyed on ``(backend name, parallelism)``.  A lease pops a
    free pool for its key or starts a fresh one; a release routes on
    outcome (see :class:`PoolLease`).  When the key's circuit breaker is
    open, :meth:`lease` returns a *degraded* serial lease instead of
    touching pools at all — the server keeps answering queries, just
    without parallelism, until the cooldown's trial lease proves pools
    healthy again.
    """

    def __init__(
        self,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._free: Dict[Tuple[str, int], List[object]] = {}
        self._breakers: Dict[Tuple[str, int], CircuitBreaker] = {}
        self._closed = False
        self.pools_created = 0
        self.pools_reused = 0
        self.pools_recycled = 0
        self.degraded_leases = 0

    def breaker(self, backend_name: str, parallelism: int) -> CircuitBreaker:
        key = (backend_name, int(parallelism))
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self._breaker_threshold,
                    cooldown_seconds=self._breaker_cooldown,
                    clock=self._clock,
                )
                self._breakers[key] = breaker
            return breaker

    def lease(self, backend_name: str, parallelism: int) -> PoolLease:
        if backend_name not in PERSISTENT_BACKENDS:
            raise ExecutionError(
                f"unknown server backend {backend_name!r}; available: "
                f"{sorted(PERSISTENT_BACKENDS)}"
            )
        key = (backend_name, int(parallelism))
        with self._lock:
            if self._closed:
                raise ExecutionError(
                    "pool supervisor is closed; no further leases"
                )
        breaker = self.breaker(*key)
        if not breaker.allows():
            with self._lock:
                self.degraded_leases += 1
            return PoolLease(
                PersistentSerialBackend(parallelism).start(),
                key,
                self,
                degraded=True,
            )
        with self._lock:
            free = self._free.get(key)
            backend = free.pop() if free else None
            if backend is not None:
                self.pools_reused += 1
        if backend is None:
            # Pool startup happens outside the lock: spawning processes
            # can take a while and must not serialize unrelated leases.
            try:
                backend = PERSISTENT_BACKENDS[backend_name](parallelism).start()
            except Exception:
                breaker.record_failure()
                raise
            with self._lock:
                self.pools_created += 1
        return PoolLease(backend, key, self)

    def _release(self, lease: PoolLease, outcome: str) -> None:
        if outcome not in ("ok", "failed", "aborted"):
            raise ExecutionError(
                f"unknown lease outcome {outcome!r}; expected "
                "'ok', 'failed', or 'aborted'"
            )
        if lease.degraded:
            # A degraded lease ran serial in-process work; its outcome says
            # nothing about pool health, and there is nothing to recycle.
            return
        breaker = self.breaker(*lease.key)
        if outcome == "ok":
            breaker.record_success()
            with self._lock:
                if not self._closed:
                    self._free.setdefault(lease.key, []).append(lease.backend)
                    return
            lease.backend.shutdown()
            return
        if outcome == "failed":
            breaker.record_failure()
        lease.backend.shutdown()
        with self._lock:
            self.pools_recycled += 1

    def close(self) -> None:
        """Shut down every free pool; in-flight leases drain on release."""
        with self._lock:
            self._closed = True
            pools = [
                backend
                for backends in self._free.values()
                for backend in backends
            ]
            self._free.clear()
        for backend in pools:
            backend.shutdown()

    def describe(self) -> str:
        with self._lock:
            keys = sorted(self._free)
            free = {key: len(self._free[key]) for key in keys}
            created = self.pools_created
            reused = self.pools_reused
            recycled = self.pools_recycled
            degraded = self.degraded_leases
        breaker_states = {
            key: self._breakers[key].state for key in sorted(self._breakers)
        }
        lines = [
            "Pool supervisor:",
            f"  pools created: {created}, leases reused: {reused}, "
            f"recycled: {recycled}, degraded leases: {degraded}",
        ]
        for key in sorted(set(free) | set(breaker_states)):
            backend_name, parallelism = key
            lines.append(
                f"  ({backend_name}, {parallelism}): "
                f"{free.get(key, 0)} free, "
                f"breaker {breaker_states.get(key, 'closed')}"
            )
        return "\n".join(lines)
