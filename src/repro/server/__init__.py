"""Admission-controlled query server over one :class:`~repro.Database`.

The service shape of the engine: persistent worker pools shared across
queries (:mod:`repro.server.pools`), bounded admission with configurable
overload policy (:mod:`repro.server.admission`), and the long-lived
:class:`DatabaseServer` façade tying them together
(:mod:`repro.server.server`).

Quickstart::

    from repro import Database
    from repro.server import DatabaseServer, ServerConfig

    with DatabaseServer(db, ServerConfig(max_concurrent=2)) as server:
        print(server.count(query))
"""

from .admission import POLICIES, ServerConfig, ServerStats, ServerTicket
from .pools import (
    CircuitBreaker,
    PayloadMissing,
    PersistentProcessBackend,
    PersistentSerialBackend,
    PersistentThreadBackend,
    PoolLease,
    PoolSupervisor,
)
from .server import DatabaseServer

__all__ = [
    "CircuitBreaker",
    "DatabaseServer",
    "PayloadMissing",
    "PersistentProcessBackend",
    "PersistentSerialBackend",
    "PersistentThreadBackend",
    "POLICIES",
    "PoolLease",
    "PoolSupervisor",
    "ServerConfig",
    "ServerStats",
    "ServerTicket",
]
