"""Admission control: server configuration, tickets, and counters.

The server's contract under overload is *bounded everything*: a bounded
number of queries execute at once (``max_concurrent`` slots), a bounded
number wait (``max_queue_depth``), and the excess is refused according to
an explicit, configurable policy instead of piling up until memory or
latency collapses:

* ``"reject"`` — a full queue refuses the *new* query with the typed
  :class:`~repro.errors.ServerOverloadedError` (fail fast; the client owns
  retry policy).
* ``"shed-oldest"`` — a full queue admits the new query by evicting the
  *oldest waiting* one (its ticket fails with ``ServerOverloadedError``).
  Freshest-first service: under sustained overload the oldest waiter is
  the likeliest to be past caring about its answer.
* ``"block"`` — ``submit`` blocks until the queue has room (bounded by the
  query's own deadline, when it has one).  Backpressure for closed-loop
  clients that would rather wait than handle refusals.

Queue *deadline shedding* runs on top of every policy: a queued query
whose PR 7 deadline already expired is failed at dequeue time without
occupying an execution slot, and a caller blocked on
:meth:`ServerTicket.result` self-sheds at its deadline instead of waiting
for a worker to reach the ticket.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ExecutionError
from ..query.runtime import CancellationToken, QueryContext

#: Admission policies accepted by :class:`ServerConfig`.
POLICIES = ("reject", "shed-oldest", "block")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`~repro.server.server.DatabaseServer`.

    Attributes:
        max_concurrent: execution slots — queries running at once.  The
            server's worker budget is ``max_concurrent × parallelism``
            pool workers; admission never exceeds it.
        max_queue_depth: queries waiting beyond the running ones; the
            bound the admission policy enforces.
        policy: what a full queue does — see the module docstring.
        default_timeout: per-query wall-clock budget (seconds) applied
            when ``submit`` passes none.  The deadline is fixed at
            *submission*, so queue wait spends the same budget; ``None``
            leaves unspecified queries deadline-free.
        parallelism: default worker count per query (``None`` defers to
            the wrapped database's own resolution).
        backend: default morsel backend name per query (``None`` defers
            to the wrapped database).
        breaker_threshold: consecutive pool failures that open the
            degradation circuit breaker.
        breaker_cooldown: seconds an open breaker waits before the next
            real-pool trial lease.
    """

    max_concurrent: int = 2
    max_queue_depth: int = 8
    policy: str = "reject"
    default_timeout: Optional[float] = None
    parallelism: Optional[int] = None
    backend: Optional[str] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ExecutionError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.max_queue_depth < 1:
            raise ExecutionError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.policy not in POLICIES:
            raise ExecutionError(
                f"unknown admission policy {self.policy!r}; "
                f"available: {sorted(POLICIES)}"
            )
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ExecutionError(
                f"default_timeout must be positive seconds, "
                f"got {self.default_timeout}"
            )


@dataclass
class ServerStats:
    """Monotonic admission counters (guarded by the server's lock).

    Invariants (exact once the server is drained, transiently off by the
    in-flight queries while running):

    * ``submitted == admitted + rejected + shed`` — every submitted query
      is accounted exactly once;
    * ``admitted == completed + failed`` — every admitted query reaches a
      terminal outcome;
    * ``plan_cache_hits + plan_cache_misses`` equals the number of
      ``QueryGraph`` submissions counted in ``submitted`` — submitting a
      query graph plans it through the database's
      :class:`~repro.query.plan_cache.PlanCache`, and exactly one of the
      two counters records the outcome (pre-built ``QueryPlan``
      submissions bypass the cache and touch neither).
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
        }


#: Ticket lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"

#: Terminal outcomes.
COMPLETED = "completed"
FAILED = "failed"
REJECTED = "rejected"
SHED = "shed"


class ServerTicket:
    """One submitted query's handle: state, outcome, and result delivery.

    Returned by ``DatabaseServer.submit``.  The caller waits on
    :meth:`result` (or polls :meth:`done`); the server's worker threads
    move the ticket ``queued → running → done`` and publish either a value
    or an error.  :meth:`cancel` works at any stage: a queued ticket is
    shed immediately, a running one stops at the query's next cooperative
    check point.
    """

    def __init__(
        self,
        server,
        plan,
        snapshot,
        mode: str,
        kwargs: Dict,
        runtime: QueryContext,
        parallelism: int,
        backend: str,
    ) -> None:
        self._server = server
        self.plan = plan
        self.snapshot = snapshot
        self.mode = mode
        self.kwargs = kwargs
        self.runtime = runtime
        self.token: CancellationToken = runtime.token
        self.parallelism = parallelism
        self.backend = backend
        self.state = QUEUED
        self.outcome: Optional[str] = None
        self.value = None
        self.error: Optional[BaseException] = None
        self.submitted_at = time.monotonic()
        self._event = threading.Event()

    # ------------------------------------------------------------------
    # server-side transitions (caller holds no lock; _finish is one-shot)
    # ------------------------------------------------------------------
    def _finish(self, outcome: str, value=None, error=None) -> bool:
        """Publish the terminal outcome; True for the caller that won.

        One-shot under the server lock's protection on the queue paths,
        but also safe standalone: the event flip is the commit point and
        ``done()`` callers only read after waiting on it.
        """
        if self._event.is_set():
            return False
        self.outcome = outcome
        self.value = value
        self.error = error
        self.state = DONE
        self._event.set()
        return True

    # ------------------------------------------------------------------
    # caller-side API
    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket is finished; True when it is."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None):
        """The query's value, or raise its error (typed, stats attached).

        Deadline-aware while queued: if the ticket's own deadline passes
        before a worker reaches it, the caller does not keep waiting — it
        sheds the ticket from the queue itself and gets the
        :class:`~repro.errors.QueryTimeoutError` immediately.  A *running*
        query is left to its own cooperative deadline checks (which fire
        within one poll interval) so the result reflects the execution's
        actual termination.

        ``timeout`` bounds only this wait, not the query; on expiry the
        ticket is left in place and :class:`TimeoutError` is raised.
        """
        wait_deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while not self._event.is_set():
            waits = []
            if wait_deadline is not None:
                waits.append(wait_deadline - time.monotonic())
            remaining = self.runtime.remaining()
            if remaining is not None and self.state == QUEUED:
                waits.append(remaining)
            interval = min(waits) if waits else None
            if interval is not None and interval <= 0:
                if wait_deadline is not None and time.monotonic() >= wait_deadline:
                    raise TimeoutError(
                        "ticket.result() wait timed out (the query itself "
                        "is still pending)"
                    )
                # Our own deadline passed while still queued: shed rather
                # than wait for a worker to notice.  If the server says the
                # ticket already left the queue (a worker just took it, or
                # another path finished it), briefly wait for that path to
                # publish instead of spinning on the expired deadline.
                if not self._server._shed_expired_ticket(self):
                    self._event.wait(0.01)
                continue
            self._event.wait(interval)
        if self.error is not None:
            raise self.error
        return self.value

    def cancel(self) -> bool:
        """Request cancellation; True if this call triggered it.

        Queued tickets are shed immediately (the server's shed counter
        accounts them); running ones stop at the query's next cooperative
        check point and surface
        :class:`~repro.errors.QueryCancelledError` from :meth:`result`.
        """
        first = self.token.cancel()
        self._server._cancel_queued_ticket(self)
        return first

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        outcome = f", outcome={self.outcome}" if self.outcome else ""
        return f"ServerTicket(state={self.state}{outcome})"
