"""Query processing: patterns, predicates, operators, optimizer, executor.

Parallel execution
------------------

Query execution is serial by default and parallel on request:
``Database.run(query, parallelism=N)`` (or the ``REPRO_PARALLELISM``
environment variable, or ``Database(..., parallelism=N)``) dispatches the
plan to the morsel-driven :class:`~repro.query.executor.MorselExecutor` when
``N >= 2``.  The scan's vertex domain is split into contiguous range morsels;
each morsel runs the *entire* operator pipeline — scan, extend/intersect,
multi-extend, filter — on a worker thread (the numpy batch kernels release
the GIL), with several serial-sized batches coalesced per kernel call; the
per-morsel outputs are merged in ascending range order.

**Determinism guarantee:** for any ``parallelism``, morsel size, and batch
coalescing factor, the produced matches, their order, and the execution
statistics are byte-identical to the serial run (``parallelism=1``, which is
kept as the oracle).  This holds because every operator emits output rows in
input-row order and the batch kernels are row-segmented, so batch and morsel
boundaries can never change *what* is produced, only how it is grouped into
batches in flight.
"""

from .binding import MatchBatch, concat_batches
from .engine import Database, IndexCreationResult
from .executor import Executor, MorselExecutor, QueryResult
from .naive import NaiveMatcher
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    ExtensionLeg,
    Filter,
    MultiExtend,
    ScanVertices,
    SortedRangeFilter,
)
from .optimizer import CostModel, Optimizer
from .pattern import QueryEdge, QueryGraph, QueryVertex
from .plan import QueryPlan
from .predicates import (
    CompareOp,
    Comparison,
    Constant,
    Predicate,
    PropertyRef,
    cmp,
    comparison_subsumes,
    const,
    predicate_subsumes,
    prop,
    residual_conjuncts,
)

__all__ = [
    "CompareOp",
    "Comparison",
    "Constant",
    "CostModel",
    "Database",
    "ExecutionContext",
    "ExecutionStats",
    "Executor",
    "ExtendIntersect",
    "ExtensionLeg",
    "Filter",
    "IndexCreationResult",
    "MatchBatch",
    "MorselExecutor",
    "MultiExtend",
    "NaiveMatcher",
    "Optimizer",
    "Predicate",
    "PropertyRef",
    "QueryEdge",
    "QueryGraph",
    "QueryPlan",
    "QueryResult",
    "QueryVertex",
    "ScanVertices",
    "SortedRangeFilter",
    "cmp",
    "comparison_subsumes",
    "concat_batches",
    "const",
    "predicate_subsumes",
    "prop",
    "residual_conjuncts",
]
