"""Query processing: patterns, predicates, operators, optimizer, executor."""

from .binding import MatchBatch, concat_batches
from .engine import Database, IndexCreationResult
from .executor import Executor, QueryResult
from .naive import NaiveMatcher
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    ExtensionLeg,
    Filter,
    MultiExtend,
    ScanVertices,
    SortedRangeFilter,
)
from .optimizer import CostModel, Optimizer
from .pattern import QueryEdge, QueryGraph, QueryVertex
from .plan import QueryPlan
from .predicates import (
    CompareOp,
    Comparison,
    Constant,
    Predicate,
    PropertyRef,
    cmp,
    comparison_subsumes,
    const,
    predicate_subsumes,
    prop,
    residual_conjuncts,
)

__all__ = [
    "CompareOp",
    "Comparison",
    "Constant",
    "CostModel",
    "Database",
    "ExecutionContext",
    "ExecutionStats",
    "Executor",
    "ExtendIntersect",
    "ExtensionLeg",
    "Filter",
    "IndexCreationResult",
    "MatchBatch",
    "MultiExtend",
    "NaiveMatcher",
    "Optimizer",
    "Predicate",
    "PropertyRef",
    "QueryEdge",
    "QueryGraph",
    "QueryPlan",
    "QueryResult",
    "QueryVertex",
    "ScanVertices",
    "SortedRangeFilter",
    "cmp",
    "comparison_subsumes",
    "concat_batches",
    "const",
    "predicate_subsumes",
    "prop",
    "residual_conjuncts",
]
