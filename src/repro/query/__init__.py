"""Query processing: patterns, predicates, operators, optimizer, executor.

Physical pipeline
-----------------

Plans execute through an explicit physical pipeline
(:mod:`repro.query.pipeline`): :class:`~repro.query.pipeline
.PipelineBuilder` compiles a :class:`~repro.query.plan.QueryPlan` into
``Source → [stages...] → Sink``.  Sinks are first-class and push-style —
:class:`~repro.query.pipeline.CountSink`, :class:`~repro.query.pipeline
.FlattenSink`, and the streaming :class:`~repro.query.pipeline.LimitSink` /
:class:`~repro.query.pipeline.ExistsSink` — and a sink's halt signal
(``push`` returning ``False``) propagates across batches *and* across
morsels, so ``collect(limit=)`` / ``exists()`` genuinely short-circuit:
upstream operators stop mid-stream and the morsel dispatcher stops handing
out morsels (observable as ``ExecutionStats.morsels_dispatched``).  Every
stage boundary is timed with an injectable monotonic clock
(``ExecutionStats.operator_seconds`` / ``operator_batches``); the timing
fields are excluded from the byte-identity contract below.

Parallel execution
------------------

Query execution is serial by default and parallel on request:
``Database.run(query, parallelism=N)`` (or the ``REPRO_PARALLELISM``
environment variable, or ``Database(..., parallelism=N)``) dispatches the
plan to the morsel-driven :class:`~repro.query.executor.MorselExecutor` when
``N >= 2``.  The scan's vertex domain is split into contiguous range morsels
— degree-weighted by default (:mod:`repro.query.morsels` prefix-sums the
primary CSR offsets so each morsel carries ~equal adjacency work, which is
what balances Zipf-skewed graphs); each morsel runs the *entire* operator
pipeline — scan, extend/intersect, multi-extend, filter — on a pluggable
:class:`~repro.query.backends.MorselBackend` (``backend=`` /
``REPRO_BACKEND``): ``thread`` (default; the numpy batch kernels release the
GIL), ``process`` (a ``multiprocessing`` pool — picklable morsel task specs
out, columnar numpy buffers back, plan/graph rehydrated once per worker —
sidestepping the GIL for CPU-bound plans), or ``serial`` (inline, the
morsel-bookkeeping debug path).  Several serial-sized batches are coalesced
per kernel call; the per-morsel outputs are merged in ascending range order.

**Determinism guarantee:** for any ``parallelism``, backend, morsel
weighting, morsel size, and batch coalescing factor, the produced matches,
their order, and the execution statistics are byte-identical to the serial
run (``parallelism=1``, which is kept as the oracle).  This holds because
every operator emits output rows in input-row order and the batch kernels
are row-segmented, so batch and morsel boundaries can never change *what* is
produced, only how it is grouped into batches in flight.

Fault-tolerant runtime
----------------------

``Database.run/count(timeout=..., cancel=...)`` arm per-query guardrails: a
wall-clock deadline and a cooperative :class:`~repro.query.runtime
.CancellationToken`, checked between batches and between morsels (and
enforced against stuck workers by polled backend waits), raising
``QueryTimeoutError`` / ``QueryCancelledError`` with partial stats attached.
The process backend additionally survives worker crashes — dead workers,
hung morsels (``REPRO_MORSEL_TIMEOUT``), and checksum-failing replies are
retried and finally re-executed serially in-process, preserving the
byte-identical determinism contract (``stats.retries`` /
``stats.morsels_recovered`` record it).  :class:`~repro.query.faults
.FaultPlan` (or the ``REPRO_FAULTS`` environment variable) injects
deterministic faults for chaos testing.
"""

from .backends import (
    BACKENDS,
    MorselBackend,
    MorselTaskSpec,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkerPayload,
    reply_checksum,
)
from .binding import MatchBatch, concat_batches
from .engine import Database, IndexCreationResult
from .executor import Executor, MorselExecutor, QueryResult
from .factorized import FactorizedBatch, FactorizedSegment
from .pipeline import (
    CountSink,
    ExistsSink,
    FlattenSink,
    LimitSink,
    PhysicalPipeline,
    PipelineBuilder,
    Sink,
    run_pipeline,
    run_pipeline_factorized,
    run_pipeline_legacy,
    validate_limit,
)
from .faults import FaultPlan
from .morsels import degree_weighted_ranges, even_ranges, ranges_of_size
from .runtime import CancellationToken, QueryContext
from .naive import NaiveMatcher
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    ExtensionLeg,
    Filter,
    MultiExtend,
    ScanVertices,
    SortedRangeFilter,
)
from .optimizer import CostModel, Optimizer
from .pattern import QueryEdge, QueryGraph, QueryVertex
from .plan import QueryPlan
from .plan_cache import DEFAULT_PLAN_CACHE_CAPACITY, PlanCache, PlanCacheStats
from .predicates import (
    CompareOp,
    Comparison,
    Constant,
    Predicate,
    PropertyRef,
    cmp,
    comparison_subsumes,
    const,
    predicate_subsumes,
    prop,
    residual_conjuncts,
)

__all__ = [
    "BACKENDS",
    "CancellationToken",
    "CompareOp",
    "Comparison",
    "Constant",
    "CostModel",
    "CountSink",
    "Database",
    "FaultPlan",
    "QueryContext",
    "ExecutionContext",
    "ExecutionStats",
    "ExistsSink",
    "Executor",
    "ExtendIntersect",
    "ExtensionLeg",
    "FactorizedBatch",
    "FactorizedSegment",
    "Filter",
    "FlattenSink",
    "IndexCreationResult",
    "LimitSink",
    "MatchBatch",
    "MorselBackend",
    "MorselExecutor",
    "MorselTaskSpec",
    "MultiExtend",
    "NaiveMatcher",
    "Optimizer",
    "PhysicalPipeline",
    "PipelineBuilder",
    "PlanCache",
    "PlanCacheStats",
    "Predicate",
    "ProcessBackend",
    "PropertyRef",
    "QueryEdge",
    "QueryGraph",
    "QueryPlan",
    "QueryResult",
    "QueryVertex",
    "ScanVertices",
    "SerialBackend",
    "Sink",
    "SortedRangeFilter",
    "ThreadBackend",
    "WorkerPayload",
    "cmp",
    "comparison_subsumes",
    "concat_batches",
    "const",
    "degree_weighted_ranges",
    "even_ranges",
    "predicate_subsumes",
    "prop",
    "ranges_of_size",
    "reply_checksum",
    "residual_conjuncts",
    "run_pipeline",
    "validate_limit",
    "run_pipeline_factorized",
    "run_pipeline_legacy",
]
