"""An LRU plan cache keyed on (query fingerprint, store generation, knobs).

``Database`` re-planned every :class:`~repro.query.pattern.QueryGraph` it was
handed, even when the same pattern had just been planned against the same
store state — the regime the paper's serving story assumes (a fixed set of
hot patterns re-executed against an evolving store) pays that planning tax on
every request.  :class:`PlanCache` memoizes the optimizer:

* **Key** — ``(query.fingerprint(), store generation, planning knobs)``.
  The fingerprint is the canonical label of the pattern
  (:meth:`~repro.query.pattern.QueryGraph.fingerprint`), so structurally
  identical queries share an entry regardless of variable names or insertion
  order.  The generation component makes invalidation free: every
  ``install_state`` — maintenance flush, primary reconfiguration, index
  DDL — bumps :attr:`~repro.index.index_store.StoreState.generation`, so a
  submission after any store change misses and re-plans against the new
  state, while stale entries age out of the LRU bound.  ``knobs`` is an
  opaque tuple for anything else that changes what the planner would emit
  (empty today; the extension point for e.g. a LIMIT-aware planner).
* **Value** — the *same* :class:`~repro.query.plan.QueryPlan` object every
  hit, pinned snapshot included.  Identity matters: the persistent pools'
  payload registry (:mod:`repro.server.pools`) is keyed on
  ``(id(plan), generation, ...)``, so cache hits compound into zero
  re-pickling of the plan/graph payload to pool workers.
* **Determinism** — the optimizer is deterministic given a store state, and
  a generation uniquely identifies one immutable state, so a cache-hit
  execution is byte-identical to a fresh-planned one on every backend.

Thread safety: all bookkeeping happens under one lock; planning itself (the
``planner`` callback of :meth:`PlanCache.get_or_plan`) runs *outside* it, so
concurrent misses never serialize on the optimizer — two racing planners of
the same key both produce valid identical-semantics plans and the last
insert wins.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ExecutionError
from .pattern import QueryGraph
from .plan import QueryPlan

#: Default capacity of a :class:`Database`'s plan cache: comfortably above
#: any realistic hot-pattern working set while bounding worst-case retention
#: (each entry pins its generation's snapshot — graph and indexes — alive).
DEFAULT_PLAN_CACHE_CAPACITY = 64


@dataclass
class PlanCacheStats:
    """Monotonic cache counters (guarded by the cache's lock)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PlanCache:
    """A bounded LRU of planned queries; see the module docstring.

    ``capacity=0`` disables caching (every lookup misses, nothing is
    retained) — the planner still runs, so behaviour is identical minus the
    memoization.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY) -> None:
        if capacity < 0:
            raise ExecutionError(
                f"plan cache capacity must be >= 0, got {capacity} "
                "(0 disables caching)"
            )
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, QueryPlan]" = OrderedDict()

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(query: QueryGraph, generation: int, knobs: Tuple = ()) -> Tuple:
        return (query.fingerprint(), generation, knobs)

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------
    def lookup(
        self, query: QueryGraph, generation: int, knobs: Tuple = ()
    ) -> Optional[QueryPlan]:
        """The cached plan for this key, or None; counts a hit or a miss."""
        key = self.key_for(query, generation, knobs)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan

    def insert(
        self,
        query: QueryGraph,
        generation: int,
        plan: QueryPlan,
        knobs: Tuple = (),
    ) -> None:
        """Remember a freshly planned query; evicts LRU entries over capacity."""
        if self.capacity == 0:
            return
        key = self.key_for(query, generation, knobs)
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_plan(
        self,
        query: QueryGraph,
        generation: int,
        planner: Callable[[], QueryPlan],
        knobs: Tuple = (),
    ) -> Tuple[QueryPlan, bool]:
        """Resolve ``(plan, cache_hit)``; plans via ``planner()`` on a miss.

        The planner runs outside the lock (see the module docstring on
        racing misses).  The planner's result must already carry its pinned
        ``store_snapshot`` — the cache stores it verbatim and hands the same
        object back on every hit.
        """
        plan = self.lookup(query, generation, knobs)
        if plan is not None:
            return plan, True
        plan = planner()
        self.insert(query, generation, plan, knobs)
        return plan, False

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def describe(self) -> str:
        with self._lock:
            entries = len(self._entries)
            counters = self.stats.snapshot()
        counter_text = ", ".join(f"{k}={v}" for k, v in counters.items())
        return (
            f"Plan cache: {entries}/{self.capacity} entries "
            f"(LRU; keyed on (fingerprint, generation, knobs)); "
            f"{counter_text}"
        )
