"""Subgraph query patterns.

A :class:`QueryGraph` is the logical representation of the subgraph-pattern
component of a query: query vertices (with optional labels), query edges
(with optional labels and direction), and a conjunctive predicate over the
properties of those variables.  It corresponds to the MATCH/WHERE fragment of
openCypher that the paper's workloads use.

The same structure is used by the optimizer (to enumerate plans), the
executor (variable bookkeeping), and the naive backtracking matcher used as a
correctness oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import QueryParseError
from ..query.predicates import Comparison, Predicate, PropertyRef


@dataclass(frozen=True)
class QueryVertex:
    """A query vertex variable.

    Attributes:
        name: variable name (e.g. ``"a1"``).
        label: optional vertex label the matched vertex must carry.
    """

    name: str
    label: Optional[str] = None


@dataclass(frozen=True)
class QueryEdge:
    """A directed query edge variable between two query vertices.

    Attributes:
        name: variable name (e.g. ``"e1"``); auto-generated if not supplied in
            the builder API.
        src: name of the source query vertex.
        dst: name of the destination query vertex.
        label: optional edge label the matched edge must carry.
    """

    name: str
    src: str
    dst: str
    label: Optional[str] = None

    def other_endpoint(self, vertex: str) -> str:
        if vertex == self.src:
            return self.dst
        if vertex == self.dst:
            return self.src
        raise QueryParseError(f"{vertex!r} is not an endpoint of edge {self.name!r}")

    def touches(self, vertex: str) -> bool:
        return vertex == self.src or vertex == self.dst


class QueryGraph:
    """A subgraph pattern: query vertices, query edges, and a predicate.

    Example:
        >>> q = QueryGraph("two-hop")
        >>> q.add_vertex("c1", label="Customer")
        >>> q.add_vertex("a1", label="Account")
        >>> q.add_vertex("a2", label="Account")
        >>> q.add_edge("c1", "a1", label="Owns", name="r1")
        >>> q.add_edge("a1", "a2", label="Wire", name="r2")
        >>> q.add_predicate(cmp(prop("c1", "name"), "=", "Alice"))
    """

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self._vertices: Dict[str, QueryVertex] = {}
        self._edges: Dict[str, QueryEdge] = {}
        self.predicate: Predicate = Predicate.true()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, name: str, label: Optional[str] = None) -> QueryVertex:
        if name in self._vertices:
            raise QueryParseError(f"duplicate query vertex {name!r}")
        if name in self._edges:
            raise QueryParseError(f"{name!r} already names a query edge")
        vertex = QueryVertex(name=name, label=label)
        self._vertices[name] = vertex
        return vertex

    def add_edge(
        self,
        src: str,
        dst: str,
        label: Optional[str] = None,
        name: Optional[str] = None,
    ) -> QueryEdge:
        if src not in self._vertices or dst not in self._vertices:
            raise QueryParseError(
                f"edge endpoints ({src!r}, {dst!r}) must be declared query vertices"
            )
        if name is None:
            name = f"_e{len(self._edges)}"
        if name in self._edges or name in self._vertices:
            raise QueryParseError(f"duplicate query variable {name!r}")
        edge = QueryEdge(name=name, src=src, dst=dst, label=label)
        self._edges[name] = edge
        return edge

    def add_predicate(self, *comparisons: Comparison) -> None:
        """Conjoin additional comparisons to the query predicate."""
        self.predicate = self.predicate.and_also(Predicate(comparisons))

    def where(self, predicate: Predicate) -> "QueryGraph":
        """Conjoin a whole predicate (fluent style); returns self."""
        self.predicate = self.predicate.and_also(predicate)
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Dict[str, QueryVertex]:
        return dict(self._vertices)

    @property
    def edges(self) -> Dict[str, QueryEdge]:
        return dict(self._edges)

    @property
    def vertex_names(self) -> List[str]:
        return list(self._vertices)

    @property
    def edge_names(self) -> List[str]:
        return list(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex(self, name: str) -> QueryVertex:
        try:
            return self._vertices[name]
        except KeyError as exc:
            raise QueryParseError(f"unknown query vertex {name!r}") from exc

    def edge(self, name: str) -> QueryEdge:
        try:
            return self._edges[name]
        except KeyError as exc:
            raise QueryParseError(f"unknown query edge {name!r}") from exc

    def variable_kind(self, name: str) -> str:
        """Return ``"vertex"`` or ``"edge"`` for a query variable."""
        if name in self._vertices:
            return "vertex"
        if name in self._edges:
            return "edge"
        raise QueryParseError(f"unknown query variable {name!r}")

    def edges_between(self, matched: Set[str], new_vertex: str) -> List[QueryEdge]:
        """Query edges connecting ``new_vertex`` to any vertex in ``matched``."""
        connecting = []
        for edge in self._edges.values():
            if edge.touches(new_vertex):
                other = edge.other_endpoint(new_vertex)
                if other in matched:
                    connecting.append(edge)
        return connecting

    def edges_of_vertex(self, vertex: str) -> List[QueryEdge]:
        return [e for e in self._edges.values() if e.touches(vertex)]

    def neighbours_of(self, vertex: str) -> Set[str]:
        names = set()
        for edge in self._edges.values():
            if edge.touches(vertex):
                names.add(edge.other_endpoint(vertex))
        return names

    def is_connected(self) -> bool:
        """True if the pattern is connected (required for plan enumeration)."""
        if not self._vertices:
            return True
        seen: Set[str] = set()
        frontier = [next(iter(self._vertices))]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.neighbours_of(current) - seen)
        return seen == set(self._vertices)

    # ------------------------------------------------------------------
    # predicate helpers used by the optimizer
    # ------------------------------------------------------------------
    def label_predicate(self) -> Predicate:
        """Label constraints of vertices and edges expressed as comparisons."""
        from ..query.predicates import cmp, prop

        comparisons = []
        for vertex in self._vertices.values():
            if vertex.label is not None:
                comparisons.append(cmp(prop(vertex.name, "label"), "=", vertex.label))
        for edge in self._edges.values():
            if edge.label is not None:
                comparisons.append(cmp(prop(edge.name, "label"), "=", edge.label))
        return Predicate(comparisons)

    def full_predicate(self) -> Predicate:
        """The WHERE predicate conjoined with all label constraints."""
        return self.label_predicate().and_also(self.predicate)

    def tracked_edges(self) -> Set[str]:
        """Query edges whose matched edge ID must be carried in partial matches.

        An edge binding is needed whenever a predicate references the edge
        together with *another* variable (e.g. ``e1.date < e2.date``), because
        that predicate can only be evaluated after both are matched.
        """
        tracked: Set[str] = set()
        for comparison in self.predicate.conjuncts():
            variables = comparison.variables()
            edge_vars = {v for v in variables if v in self._edges}
            if edge_vars and len(variables) > 1:
                tracked |= edge_vars
        return tracked

    def describe(self) -> str:
        lines = [f"QueryGraph {self.name!r}:"]
        for vertex in self._vertices.values():
            label = f":{vertex.label}" if vertex.label else ""
            lines.append(f"  ({vertex.name}{label})")
        for edge in self._edges.values():
            label = f":{edge.label}" if edge.label else ""
            lines.append(f"  ({edge.src})-[{edge.name}{label}]->({edge.dst})")
        if not self.predicate.is_true:
            lines.append(f"  WHERE {self.predicate.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
