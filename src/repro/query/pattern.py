"""Subgraph query patterns.

A :class:`QueryGraph` is the logical representation of the subgraph-pattern
component of a query: query vertices (with optional labels), query edges
(with optional labels and direction), and a conjunctive predicate over the
properties of those variables.  It corresponds to the MATCH/WHERE fragment of
openCypher that the paper's workloads use.

The same structure is used by the optimizer (to enumerate plans), the
executor (variable bookkeeping), and the naive backtracking matcher used as a
correctness oracle in tests.

Canonical fingerprints
----------------------

:meth:`QueryGraph.fingerprint` is a canonical label of the pattern:
structurally identical queries — same vertices, edges, labels, directions,
and predicate, regardless of variable *names* or *insertion order* — produce
the same fingerprint, and structurally different queries produce different
ones.  It is computed by a colour-refinement + individualization canonical
labeling over the variables (vertex and edge variables together, so parallel
edges distinguished only by their predicates still canonicalize exactly),
with the predicate re-expressed over the canonical variable names and its
conjuncts sorted.  ``QueryGraph.__eq__``/``__hash__`` are built on it, which
is what makes query graphs usable as cache keys
(:mod:`repro.query.plan_cache`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import QueryParseError
from ..query.predicates import Comparison, Constant, Predicate, PropertyRef


@dataclass(frozen=True)
class QueryVertex:
    """A query vertex variable.

    Attributes:
        name: variable name (e.g. ``"a1"``).
        label: optional vertex label the matched vertex must carry.
    """

    name: str
    label: Optional[str] = None


@dataclass(frozen=True)
class QueryEdge:
    """A directed query edge variable between two query vertices.

    Attributes:
        name: variable name (e.g. ``"e1"``); auto-generated if not supplied in
            the builder API.
        src: name of the source query vertex.
        dst: name of the destination query vertex.
        label: optional edge label the matched edge must carry.
    """

    name: str
    src: str
    dst: str
    label: Optional[str] = None

    def other_endpoint(self, vertex: str) -> str:
        if vertex == self.src:
            return self.dst
        if vertex == self.dst:
            return self.src
        raise QueryParseError(f"{vertex!r} is not an endpoint of edge {self.name!r}")

    def touches(self, vertex: str) -> bool:
        return vertex == self.src or vertex == self.dst


# ----------------------------------------------------------------------
# canonical labeling
# ----------------------------------------------------------------------
#: Backstop on the individualization search tree.  Colour refinement makes
#: the tree collapse to a handful of leaves for every realistic pattern (the
#: leaf count is bounded by the pattern's automorphism count); only large,
#: highly symmetric patterns — e.g. a 9-clique of unlabeled vertices — can
#: explode, and those are far beyond what the DP optimizer plans anyway.
_MAX_CANONICAL_LEAVES = 100_000


def _canon_offset(offset: float) -> str:
    """Offset as a stable string; collapses ``-0.0`` (from op flips) to 0."""
    return repr(0.0 if offset == 0 else float(offset))


def _label_key(label: Optional[str]) -> Tuple[bool, str]:
    """A sortable key for an optional label (None sorts before any label)."""
    return (label is not None, label or "")


def _operand_key(operand):
    """Encode one (already canonically renamed) comparison operand."""
    if isinstance(operand, PropertyRef):
        return ("p", operand.var, operand.prop)
    return ("c", type(operand.value).__name__, repr(operand.value))


def _conjunct_key(comparison: Comparison, mapping: Dict[str, str]):
    """Canonical encoding of one conjunct under canonical variable names.

    Renaming happens *before* ``normalized()`` so the constant-left /
    lexicographic-reference ordering is decided on the canonical names —
    i.e. identically for every structurally identical query.  ``mapping``
    must cover every variable the conjunct references.
    """
    renamed = comparison.renamed(mapping).normalized()
    return (
        _operand_key(renamed.left),
        renamed.op.value,
        _operand_key(renamed.right),
        _canon_offset(renamed.offset),
    )


def _predicate_signature(var: str, conjuncts: List[Comparison], colors):
    """Renaming-invariant refinement signature of ``var``'s predicate uses.

    Every conjunct touching ``var`` is re-oriented so ``var`` reads as the
    left operand (flipping the operator and negating the offset when it sat
    on the right — ``x op (var + off)`` is ``var op.flipped (x - off)``), so
    the signature does not depend on which way the caller happened to write
    the comparison.  The other side is described by its current refinement
    colour, never its name.
    """
    entries = []
    for comp in conjuncts:
        for mine, other, op, offset in (
            (comp.left, comp.right, comp.op, comp.offset),
            (comp.right, comp.left, comp.op.flipped, -comp.offset),
        ):
            if not (isinstance(mine, PropertyRef) and mine.var == var):
                continue
            if isinstance(other, PropertyRef):
                other_key = (
                    "p",
                    colors.get(other.var, -1),
                    other.prop,
                    other.var == var,
                )
            else:
                other_key = ("c", type(other.value).__name__, repr(other.value))
            entries.append((mine.prop, op.value, other_key, _canon_offset(offset)))
    entries.sort()
    return tuple(entries)


def _canonical_form(
    vertices: List[QueryVertex],
    edges: List[QueryEdge],
    conjuncts: List[Comparison],
):
    """The canonical encoding (a nested tuple of primitives) of a pattern.

    Classic individualization-refinement canonical labeling, run over vertex
    *and* edge variables together (an edge variable's identity can rest
    solely on its predicates — e.g. parallel edges ``e1.amt < e2.amt``):

    1. colour variables by kind + label, refine by incidence structure and
       per-variable predicate signatures until stable;
    2. while any colour class holds several variables, individualize each
       member of the first such class in turn and recurse;
    3. every discrete colouring yields one complete encoding; the
       lexicographically smallest is the canonical form.

    Two patterns are structurally identical iff their canonical forms are
    equal; every step is driven by colours (never by variable names), so the
    result is invariant under renaming and insertion order.
    """
    vertex_names = [v.name for v in vertices]
    out_edges: Dict[str, List[str]] = {name: [] for name in vertex_names}
    in_edges: Dict[str, List[str]] = {name: [] for name in vertex_names}
    for edge in edges:
        out_edges[edge.src].append(edge.name)
        in_edges[edge.dst].append(edge.name)

    def refine(colors: Dict[str, int]) -> Dict[str, int]:
        while True:
            signatures = {}
            for vertex in vertices:
                signatures[vertex.name] = (
                    0,
                    colors[vertex.name],
                    tuple(sorted(colors[e] for e in out_edges[vertex.name])),
                    tuple(sorted(colors[e] for e in in_edges[vertex.name])),
                    _predicate_signature(vertex.name, conjuncts, colors),
                )
            for edge in edges:
                signatures[edge.name] = (
                    1,
                    colors[edge.name],
                    colors[edge.src],
                    colors[edge.dst],
                    _predicate_signature(edge.name, conjuncts, colors),
                )
            ranks = {sig: i for i, sig in enumerate(sorted(set(signatures.values())))}
            refined = {name: ranks[sig] for name, sig in signatures.items()}
            if refined == colors:
                return refined
            colors = refined

    def encode(colors: Dict[str, int]):
        ordered = sorted(colors, key=lambda name: colors[name])
        mapping: Dict[str, str] = {}
        vertex_index: Dict[str, int] = {}
        edge_order: List[str] = []
        for name in ordered:
            if name in out_edges:  # a vertex variable
                vertex_index[name] = len(vertex_index)
                mapping[name] = f"v{vertex_index[name]}"
            else:
                mapping[name] = f"e{len(edge_order)}"
                edge_order.append(name)
        for conjunct in conjuncts:
            for var in conjunct.variables():
                # Predicates referencing names outside the pattern (invalid
                # but constructible) keep a marked literal name, so they
                # still fingerprint deterministically instead of raising.
                mapping.setdefault(var, "?" + var)
        edge_by_name = {e.name: e for e in edges}
        vertex_by_name = {v.name: v for v in vertices}
        return (
            tuple(
                _label_key(vertex_by_name[name].label)
                for name in ordered
                if name in vertex_index
            ),
            tuple(
                (
                    vertex_index[edge_by_name[name].src],
                    vertex_index[edge_by_name[name].dst],
                )
                + _label_key(edge_by_name[name].label)
                for name in edge_order
            ),
            tuple(sorted(_conjunct_key(c, mapping) for c in conjuncts)),
        )

    initial_keys = {}
    for vertex in vertices:
        initial_keys[vertex.name] = (0,) + _label_key(vertex.label)
    for edge in edges:
        initial_keys[edge.name] = (1,) + _label_key(edge.label)
    ranks = {key: i for i, key in enumerate(sorted(set(initial_keys.values())))}
    colors = {name: ranks[key] for name, key in initial_keys.items()}

    best = None
    leaves = 0
    stack = [colors]
    while stack:
        colors = refine(stack.pop())
        classes: Dict[int, List[str]] = {}
        for name, color in colors.items():
            classes.setdefault(color, []).append(name)
        split = min(
            (c for c, members in classes.items() if len(members) > 1),
            default=None,
        )
        if split is None:
            leaves += 1
            if leaves > _MAX_CANONICAL_LEAVES:
                raise QueryParseError(
                    "query pattern is too symmetric to canonicalize "
                    f"(> {_MAX_CANONICAL_LEAVES} candidate labelings)"
                )
            encoding = encode(colors)
            if best is None or encoding < best:
                best = encoding
            continue
        for name in classes[split]:
            branched = dict(colors)
            branched[name] = -1  # individualize: a colour below all ranks
            stack.append(branched)
    return best if best is not None else ((), (), ())


class QueryGraph:
    """A subgraph pattern: query vertices, query edges, and a predicate.

    Example:
        >>> q = QueryGraph("two-hop")
        >>> q.add_vertex("c1", label="Customer")
        >>> q.add_vertex("a1", label="Account")
        >>> q.add_vertex("a2", label="Account")
        >>> q.add_edge("c1", "a1", label="Owns", name="r1")
        >>> q.add_edge("a1", "a2", label="Wire", name="r2")
        >>> q.add_predicate(cmp(prop("c1", "name"), "=", "Alice"))
    """

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self._vertices: Dict[str, QueryVertex] = {}
        self._edges: Dict[str, QueryEdge] = {}
        self.predicate: Predicate = Predicate.true()
        self._canonical = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _invalidate_fingerprint(self) -> None:
        self._canonical = None
        self._fingerprint = None

    def add_vertex(self, name: str, label: Optional[str] = None) -> QueryVertex:
        if name in self._vertices:
            raise QueryParseError(f"duplicate query vertex {name!r}")
        if name in self._edges:
            raise QueryParseError(f"{name!r} already names a query edge")
        vertex = QueryVertex(name=name, label=label)
        self._vertices[name] = vertex
        self._invalidate_fingerprint()
        return vertex

    def add_edge(
        self,
        src: str,
        dst: str,
        label: Optional[str] = None,
        name: Optional[str] = None,
    ) -> QueryEdge:
        if src not in self._vertices or dst not in self._vertices:
            raise QueryParseError(
                f"edge endpoints ({src!r}, {dst!r}) must be declared query vertices"
            )
        if name is None:
            name = f"_e{len(self._edges)}"
        if name in self._edges or name in self._vertices:
            raise QueryParseError(f"duplicate query variable {name!r}")
        edge = QueryEdge(name=name, src=src, dst=dst, label=label)
        self._edges[name] = edge
        self._invalidate_fingerprint()
        return edge

    def add_predicate(self, *comparisons: Comparison) -> None:
        """Conjoin additional comparisons to the query predicate."""
        self.predicate = self.predicate.and_also(Predicate(comparisons))
        self._invalidate_fingerprint()

    def where(self, predicate: Predicate) -> "QueryGraph":
        """Conjoin a whole predicate (fluent style); returns self."""
        self.predicate = self.predicate.and_also(predicate)
        self._invalidate_fingerprint()
        return self

    # ------------------------------------------------------------------
    # canonical identity
    # ------------------------------------------------------------------
    def canonical_form(self):
        """The canonical encoding of this pattern (a nested tuple).

        Invariant under variable renaming and vertex/edge/predicate
        insertion order; different for structurally different patterns.
        The query's display ``name`` is *not* part of it.  Cached; the
        builder methods invalidate the cache, so hold off hashing a graph
        until it is fully built (mutating a graph that already sits in a
        hash container leaves that container's bucketing stale, exactly as
        with any mutable key).
        """
        if self._canonical is None:
            self._canonical = _canonical_form(
                list(self._vertices.values()),
                list(self._edges.values()),
                self.predicate.conjuncts(),
            )
        return self._canonical

    def fingerprint(self) -> str:
        """Canonical fingerprint: a hex digest of :meth:`canonical_form`.

        Structurally identical queries (same vertices, edges, labels,
        directions, and predicate — regardless of variable names or
        insertion order) produce the same fingerprint.  This is the query
        component of the :class:`~repro.query.plan_cache.PlanCache` key.
        """
        if self._fingerprint is None:
            encoded = repr(self.canonical_form()).encode("utf-8")
            self._fingerprint = hashlib.sha256(encoded).hexdigest()
        return self._fingerprint

    def __eq__(self, other) -> bool:
        """Structural equality via the canonical form (``name`` excluded)."""
        if not isinstance(other, QueryGraph):
            return NotImplemented
        if self is other:
            return True
        return self.canonical_form() == other.canonical_form()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Dict[str, QueryVertex]:
        return dict(self._vertices)

    @property
    def edges(self) -> Dict[str, QueryEdge]:
        return dict(self._edges)

    @property
    def vertex_names(self) -> List[str]:
        return list(self._vertices)

    @property
    def edge_names(self) -> List[str]:
        return list(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex(self, name: str) -> QueryVertex:
        try:
            return self._vertices[name]
        except KeyError as exc:
            raise QueryParseError(f"unknown query vertex {name!r}") from exc

    def edge(self, name: str) -> QueryEdge:
        try:
            return self._edges[name]
        except KeyError as exc:
            raise QueryParseError(f"unknown query edge {name!r}") from exc

    def variable_kind(self, name: str) -> str:
        """Return ``"vertex"`` or ``"edge"`` for a query variable."""
        if name in self._vertices:
            return "vertex"
        if name in self._edges:
            return "edge"
        raise QueryParseError(f"unknown query variable {name!r}")

    def edges_between(self, matched: Set[str], new_vertex: str) -> List[QueryEdge]:
        """Query edges connecting ``new_vertex`` to any vertex in ``matched``."""
        connecting = []
        for edge in self._edges.values():
            if edge.touches(new_vertex):
                other = edge.other_endpoint(new_vertex)
                if other in matched:
                    connecting.append(edge)
        return connecting

    def edges_of_vertex(self, vertex: str) -> List[QueryEdge]:
        return [e for e in self._edges.values() if e.touches(vertex)]

    def neighbours_of(self, vertex: str) -> Set[str]:
        names = set()
        for edge in self._edges.values():
            if edge.touches(vertex):
                names.add(edge.other_endpoint(vertex))
        return names

    def is_connected(self) -> bool:
        """True if the pattern is connected (required for plan enumeration)."""
        if not self._vertices:
            return True
        seen: Set[str] = set()
        frontier = [next(iter(self._vertices))]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.neighbours_of(current) - seen)
        return seen == set(self._vertices)

    # ------------------------------------------------------------------
    # predicate helpers used by the optimizer
    # ------------------------------------------------------------------
    def label_predicate(self) -> Predicate:
        """Label constraints of vertices and edges expressed as comparisons."""
        from ..query.predicates import cmp, prop

        comparisons = []
        for vertex in self._vertices.values():
            if vertex.label is not None:
                comparisons.append(cmp(prop(vertex.name, "label"), "=", vertex.label))
        for edge in self._edges.values():
            if edge.label is not None:
                comparisons.append(cmp(prop(edge.name, "label"), "=", edge.label))
        return Predicate(comparisons)

    def full_predicate(self) -> Predicate:
        """The WHERE predicate conjoined with all label constraints."""
        return self.label_predicate().and_also(self.predicate)

    def tracked_edges(self) -> Set[str]:
        """Query edges whose matched edge ID must be carried in partial matches.

        An edge binding is needed whenever a predicate references the edge
        together with *another* variable (e.g. ``e1.date < e2.date``), because
        that predicate can only be evaluated after both are matched.
        """
        tracked: Set[str] = set()
        for comparison in self.predicate.conjuncts():
            variables = comparison.variables()
            edge_vars = {v for v in variables if v in self._edges}
            if edge_vars and len(variables) > 1:
                tracked |= edge_vars
        return tracked

    def describe(self) -> str:
        lines = [f"QueryGraph {self.name!r}:"]
        for vertex in self._vertices.values():
            label = f":{vertex.label}" if vertex.label else ""
            lines.append(f"  ({vertex.name}{label})")
        for edge in self._edges.values():
            label = f":{edge.label}" if edge.label else ""
            lines.append(f"  ({edge.src})-[{edge.name}{label}]->({edge.dst})")
        if not self.predicate.is_true:
            lines.append(f"  WHERE {self.predicate.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
