"""Physical operators of the GraphflowDB-style query processor.

The executor evaluates linear pipelines of the following operators
(Section IV-A of the paper):

* :class:`ScanVertices` — produce the initial single-variable matches.
* :class:`ExtendIntersect` (E/I) — extend partial matches by one query vertex
  by intersecting ``z >= 1`` adjacency lists sorted on neighbour IDs; with
  ``z = 1`` it degenerates to a simple extend.
* :class:`MultiExtend` — intersect adjacency lists sorted on a property other
  than neighbour ID and extend by one or more query vertices at once; also the
  operator through which edge-partitioned A+ indexes are read (a leg may be
  bound to an already-matched query *edge*).
* :class:`Filter` — evaluate residual predicates on fully bound variables.

Operators exchange :class:`~repro.query.binding.MatchBatch` objects.  Each
operator records how many adjacency lists and list entries it touched in the
:class:`ExecutionStats`, which is the empirical analogue of the optimizer's
i-cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..graph.graph import PropertyGraph
from ..index.index_store import AccessPath
from ..storage.sort_keys import SortKey
from .binding import DEFAULT_BATCH_SIZE, MatchBatch
from .pattern import QueryGraph
from .predicates import CompareOp, Predicate


@dataclass
class ExecutionStats:
    """Counters accumulated while executing a plan."""

    lists_accessed: int = 0
    list_entries_fetched: int = 0
    intermediate_rows: int = 0
    output_rows: int = 0
    predicate_evaluations: int = 0

    def reset(self) -> None:
        self.lists_accessed = 0
        self.list_entries_fetched = 0
        self.intermediate_rows = 0
        self.output_rows = 0
        self.predicate_evaluations = 0


@dataclass
class ExecutionContext:
    """Shared state available to every operator during execution."""

    graph: PropertyGraph
    query: QueryGraph
    batch_size: int = DEFAULT_BATCH_SIZE
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    def variable_kind(self, name: str) -> str:
        return self.query.variable_kind(name)


# ----------------------------------------------------------------------
# sorted-range filters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SortedRangeFilter:
    """A predicate applied via binary search on a sorted list.

    When the adjacency list addressed by a leg is sorted on a property that a
    constant comparison constrains (e.g. lists sorted on ``time`` and a
    ``time < alpha`` predicate), the qualifying prefix/suffix can be located
    with ``searchsorted`` instead of evaluating the predicate on every edge.

    Attributes:
        sort_key: the property the list is sorted by.
        op: the comparison operator against the constant.
        value: the (already encoded) constant.
    """

    sort_key: SortKey
    op: CompareOp
    value: float

    def apply(
        self, graph: PropertyGraph, edge_ids: np.ndarray, nbr_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if len(edge_ids) == 0:
            return edge_ids, nbr_ids
        values = self.sort_key.values(graph, edge_ids, nbr_ids)
        if self.op is CompareOp.LT:
            end = int(np.searchsorted(values, self.value, side="left"))
            return edge_ids[:end], nbr_ids[:end]
        if self.op is CompareOp.LE:
            end = int(np.searchsorted(values, self.value, side="right"))
            return edge_ids[:end], nbr_ids[:end]
        if self.op is CompareOp.GT:
            start = int(np.searchsorted(values, self.value, side="right"))
            return edge_ids[start:], nbr_ids[start:]
        if self.op is CompareOp.GE:
            start = int(np.searchsorted(values, self.value, side="left"))
            return edge_ids[start:], nbr_ids[start:]
        if self.op is CompareOp.EQ:
            start = int(np.searchsorted(values, self.value, side="left"))
            end = int(np.searchsorted(values, self.value, side="right"))
            return edge_ids[start:end], nbr_ids[start:end]
        raise ExecutionError(f"sorted-range filter does not support {self.op}")


# ----------------------------------------------------------------------
# extension legs
# ----------------------------------------------------------------------
@dataclass
class ExtensionLeg:
    """One adjacency-list access inside an E/I or MULTI-EXTEND operator.

    Attributes:
        access_path: how the list is read (which index, which partition-key
            values, what the list is sorted by).
        bound_var: the already-bound query variable whose adjacency is read; a
            query vertex for vertex-partitioned paths, a query edge for
            edge-partitioned paths.
        target_var: the new query vertex this leg produces candidates for.
        edge_var: the query edge matched by this leg.
        track_edge: whether the matched edge ID must be bound in the output.
        sorted_filter: optional binary-search filter on the list's sort key.
        residual: remaining predicate (query-variable names) to evaluate on the
            candidates; may reference the new vertex/edge and any bound vars.
        presorted_by_nbr: True when the addressed list is already ordered by
            neighbour ID; legs of a multiway E/I that are not presorted are
            sorted by the operator (counted in its runtime), which models the
            penalty of intersecting lists whose index is not tuned for it.
    """

    access_path: AccessPath
    bound_var: str
    target_var: str
    edge_var: str
    track_edge: bool = False
    sorted_filter: Optional[SortedRangeFilter] = None
    residual: Predicate = field(default_factory=Predicate.true)
    presorted_by_nbr: bool = True

    def fetch(
        self,
        context: ExecutionContext,
        fixed: Dict[str, Tuple[str, int]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Read and filter this leg's adjacency list for one partial match."""
        bound_id = fixed[self.bound_var][1]
        edge_ids, nbr_ids = self.access_path.index.list(
            bound_id, list(self.access_path.key_values)
        )
        context.stats.lists_accessed += 1
        context.stats.list_entries_fetched += len(edge_ids)
        if self.sorted_filter is not None and len(edge_ids):
            edge_ids, nbr_ids = self.sorted_filter.apply(
                context.graph, edge_ids, nbr_ids
            )
        if not self.residual.is_true and len(edge_ids):
            arrays = {
                self.target_var: ("vertex", nbr_ids),
                self.edge_var: ("edge", edge_ids),
            }
            context.stats.predicate_evaluations += len(edge_ids)
            mask = self.residual.evaluate_bulk(context.graph, fixed, arrays)
            edge_ids = edge_ids[mask]
            nbr_ids = nbr_ids[mask]
        return edge_ids, nbr_ids

    def describe(self) -> str:
        extras = []
        if self.sorted_filter is not None:
            extras.append(
                f"sorted {self.sorted_filter.sort_key.describe()} "
                f"{self.sorted_filter.op.value} {self.sorted_filter.value}"
            )
        if not self.residual.is_true:
            extras.append(f"filter[{self.residual.describe()}]")
        suffix = f" ({'; '.join(extras)})" if extras else ""
        return (
            f"{self.bound_var}-[{self.edge_var}]->{self.target_var} "
            f"via {self.access_path.describe()}{suffix}"
        )


def _cross_product_indices(sizes: Sequence[int]) -> List[np.ndarray]:
    """Index arrays enumerating the cross product of ``sizes`` choices."""
    total = 1
    for size in sizes:
        total *= size
    indices = []
    suffix = total
    for size in sizes:
        suffix //= size
        indices.append((np.arange(total) // suffix) % size)
    return indices


def _intersect_leg_results(
    legs: Sequence[ExtensionLeg],
    results: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Intersect per-leg candidates on neighbour ID.

    Returns the extended neighbour IDs (with multiplicity from parallel edges)
    and, for legs that track their edge, the aligned edge-ID columns.
    """
    common = np.unique(results[0][1])
    for _, nbr_ids in results[1:]:
        if len(common) == 0:
            break
        common = np.intersect1d(common, nbr_ids)
    empty = np.empty(0, dtype=np.int64)
    if len(common) == 0:
        return empty, {leg.edge_var: empty.copy() for leg in legs if leg.track_edge}

    any_tracked = any(leg.track_edge for leg in legs)
    if not any_tracked:
        multiplicity = np.ones(len(common), dtype=np.int64)
        for _, nbr_ids in results:
            left = np.searchsorted(nbr_ids, common, side="left")
            right = np.searchsorted(nbr_ids, common, side="right")
            multiplicity *= right - left
        return np.repeat(common, multiplicity), {}

    out_nbrs: List[int] = []
    out_edges: Dict[str, List[int]] = {
        leg.edge_var: [] for leg in legs if leg.track_edge
    }
    for nbr in common:
        per_leg_slices = []
        for leg, (edge_ids, nbr_ids) in zip(legs, results):
            left = int(np.searchsorted(nbr_ids, nbr, side="left"))
            right = int(np.searchsorted(nbr_ids, nbr, side="right"))
            per_leg_slices.append(edge_ids[left:right])
        sizes = [len(s) for s in per_leg_slices]
        combos = _cross_product_indices(sizes)
        count = len(combos[0]) if combos else 0
        out_nbrs.extend([int(nbr)] * count)
        for leg, edge_slice, combo in zip(legs, per_leg_slices, combos):
            if leg.track_edge:
                out_edges[leg.edge_var].extend(int(e) for e in edge_slice[combo])
    return (
        np.asarray(out_nbrs, dtype=np.int64),
        {name: np.asarray(values, dtype=np.int64) for name, values in out_edges.items()},
    )


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------
class PhysicalOperator:
    """Base class for physical operators (documentation/typing aid)."""

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass
class ScanVertices(PhysicalOperator):
    """Produce the initial matches of one query vertex.

    Attributes:
        var: the query vertex variable to bind.
        label: optional vertex label restriction.
        predicate: optional single-variable predicate (e.g. ``a1.ID < 50000``
            or ``a1.city = 'BOS'``), evaluated vectorized over the candidates.
    """

    var: str
    label: Optional[str] = None
    predicate: Predicate = field(default_factory=Predicate.true)

    def execute(self, context: ExecutionContext) -> Iterator[MatchBatch]:
        graph = context.graph
        if self.label is not None:
            candidates = graph.vertices_with_label(self.label)
        else:
            candidates = graph.all_vertices()
        candidates = np.asarray(candidates, dtype=np.int64)
        if not self.predicate.is_true and len(candidates):
            arrays = {self.var: ("vertex", candidates)}
            context.stats.predicate_evaluations += len(candidates)
            mask = self.predicate.evaluate_bulk(graph, {}, arrays)
            candidates = candidates[mask]
        context.stats.intermediate_rows += len(candidates)
        batch = MatchBatch.single_column(self.var, candidates)
        for chunk in batch.split(context.batch_size):
            yield chunk

    def describe(self) -> str:
        label = f":{self.label}" if self.label else ""
        where = f" WHERE {self.predicate.describe()}" if not self.predicate.is_true else ""
        return f"SCAN ({self.var}{label}){where}"


@dataclass
class ExtendIntersect(PhysicalOperator):
    """EXTEND/INTERSECT: extend partial matches by one query vertex.

    With one leg the operator extends each partial match to every edge in the
    addressed adjacency list; with ``z >= 2`` legs it intersects the lists
    (which must be sorted on neighbour IDs) and extends to each vertex in the
    intersection — the building block of WCOJ plans.

    Attributes:
        target_var: the new query vertex bound by this operator.
        legs: the adjacency-list accesses to intersect.
        post_predicate: residual predicate evaluated (vectorized) on the
            extended batch, for conjuncts that reference the new vertex
            together with variables other than the legs' bound variables.
    """

    target_var: str
    legs: List[ExtensionLeg]
    post_predicate: Predicate = field(default_factory=Predicate.true)

    def execute(
        self, batches: Iterable[MatchBatch], context: ExecutionContext
    ) -> Iterator[MatchBatch]:
        tracked_vars = [leg.edge_var for leg in self.legs if leg.track_edge]
        for batch in batches:
            if len(batch) == 0:
                continue
            columns = {name: batch.column(name) for name in batch.variables}
            kinds = {name: context.variable_kind(name) for name in batch.variables}
            counts = np.zeros(len(batch), dtype=np.int64)
            nbr_chunks: List[np.ndarray] = []
            edge_chunks: Dict[str, List[np.ndarray]] = {v: [] for v in tracked_vars}

            for row in range(len(batch)):
                fixed = {
                    name: (kinds[name], int(columns[name][row])) for name in columns
                }
                results = []
                for leg in self.legs:
                    edge_ids, nbr_ids = leg.fetch(context, fixed)
                    if len(self.legs) > 1 and not leg.presorted_by_nbr and len(nbr_ids) > 1:
                        order = np.argsort(nbr_ids, kind="stable")
                        edge_ids = edge_ids[order]
                        nbr_ids = nbr_ids[order]
                    results.append((edge_ids, nbr_ids))
                if len(self.legs) == 1:
                    edge_ids, nbr_ids = results[0]
                    counts[row] = len(nbr_ids)
                    nbr_chunks.append(nbr_ids)
                    if self.legs[0].track_edge:
                        edge_chunks[self.legs[0].edge_var].append(edge_ids)
                else:
                    nbr_ids, edges = _intersect_leg_results(self.legs, results)
                    counts[row] = len(nbr_ids)
                    nbr_chunks.append(nbr_ids)
                    for name in tracked_vars:
                        edge_chunks[name].append(
                            edges.get(name, np.empty(0, dtype=np.int64))
                        )

            total = int(counts.sum())
            if total == 0:
                continue
            new_columns = {
                self.target_var: np.concatenate(nbr_chunks)
                if nbr_chunks
                else np.empty(0, dtype=np.int64)
            }
            for name in tracked_vars:
                new_columns[name] = (
                    np.concatenate(edge_chunks[name])
                    if edge_chunks[name]
                    else np.empty(0, dtype=np.int64)
                )
            extended = batch.repeat(counts).with_columns(new_columns)
            context.stats.intermediate_rows += len(extended)

            if not self.post_predicate.is_true and len(extended):
                arrays = {
                    name: (context.variable_kind(name), extended.column(name))
                    for name in extended.variables
                }
                context.stats.predicate_evaluations += len(extended)
                mask = self.post_predicate.evaluate_bulk(context.graph, {}, arrays)
                extended = extended.select(mask)
            if len(extended):
                for chunk in extended.split(context.batch_size):
                    yield chunk

    def describe(self) -> str:
        mode = "EXTEND" if len(self.legs) == 1 else f"E/I x{len(self.legs)}"
        legs = "; ".join(leg.describe() for leg in self.legs)
        post = (
            f" THEN FILTER {self.post_predicate.describe()}"
            if not self.post_predicate.is_true
            else ""
        )
        return f"{mode} -> {self.target_var} [{legs}]{post}"


@dataclass
class MultiExtend(PhysicalOperator):
    """MULTI-EXTEND: property-sorted intersection extending >= 1 query vertices.

    All legs' adjacency lists are sorted on the same property (the
    ``equality_key``); the operator joins them on equal property values,
    producing one output row per combination of entries that agree on the
    property (and, for legs sharing a target vertex, on the neighbour ID).
    This is how plans exploit lists sorted on e.g. ``city`` for predicates
    like ``a2.city = a4.city`` and how edge-partitioned lists participate in
    multiway intersections (Figure 6 of the paper).

    Attributes:
        legs: adjacency accesses; each leg carries its own target vertex.
        equality_key: the :class:`SortKey` the legs are sorted and joined on.
        post_predicate: residual predicate over the extended batch.
    """

    legs: List[ExtensionLeg]
    equality_key: SortKey
    post_predicate: Predicate = field(default_factory=Predicate.true)

    @property
    def target_vars(self) -> List[str]:
        seen = []
        for leg in self.legs:
            if leg.target_var not in seen:
                seen.append(leg.target_var)
        return seen

    def execute(
        self, batches: Iterable[MatchBatch], context: ExecutionContext
    ) -> Iterator[MatchBatch]:
        tracked_vars = [leg.edge_var for leg in self.legs if leg.track_edge]
        target_vars = self.target_vars
        for batch in batches:
            if len(batch) == 0:
                continue
            columns = {name: batch.column(name) for name in batch.variables}
            kinds = {name: context.variable_kind(name) for name in batch.variables}
            counts = np.zeros(len(batch), dtype=np.int64)
            target_chunks: Dict[str, List[np.ndarray]] = {v: [] for v in target_vars}
            edge_chunks: Dict[str, List[np.ndarray]] = {v: [] for v in tracked_vars}

            for row in range(len(batch)):
                fixed = {
                    name: (kinds[name], int(columns[name][row])) for name in columns
                }
                row_targets, row_edges, produced = self._extend_row(context, fixed)
                counts[row] = produced
                for name in target_vars:
                    target_chunks[name].append(row_targets[name])
                for name in tracked_vars:
                    edge_chunks[name].append(row_edges[name])

            total = int(counts.sum())
            if total == 0:
                continue
            new_columns: Dict[str, np.ndarray] = {}
            for name in target_vars:
                new_columns[name] = np.concatenate(target_chunks[name])
            for name in tracked_vars:
                new_columns[name] = np.concatenate(edge_chunks[name])
            extended = batch.repeat(counts).with_columns(new_columns)
            context.stats.intermediate_rows += len(extended)

            if not self.post_predicate.is_true and len(extended):
                arrays = {
                    name: (context.variable_kind(name), extended.column(name))
                    for name in extended.variables
                }
                context.stats.predicate_evaluations += len(extended)
                mask = self.post_predicate.evaluate_bulk(context.graph, {}, arrays)
                extended = extended.select(mask)
            if len(extended):
                for chunk in extended.split(context.batch_size):
                    yield chunk

    def _extend_row(
        self, context: ExecutionContext, fixed: Dict[str, Tuple[str, int]]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
        """Join the legs on the equality key for one partial match."""
        graph = context.graph
        leg_entries = []
        for leg in self.legs:
            edge_ids, nbr_ids = leg.fetch(context, fixed)
            keys = self.equality_key.values(graph, edge_ids, nbr_ids)
            if len(keys) > 1 and not leg.access_path.sorted_by(self.equality_key):
                order = np.argsort(keys, kind="stable")
                edge_ids = edge_ids[order]
                nbr_ids = nbr_ids[order]
                keys = keys[order]
            leg_entries.append((edge_ids, nbr_ids, keys))

        empty = np.empty(0, dtype=np.int64)
        targets: Dict[str, List[int]] = {v: [] for v in self.target_vars}
        edges: Dict[str, List[int]] = {
            leg.edge_var: [] for leg in self.legs if leg.track_edge
        }

        common = np.unique(leg_entries[0][2])
        for _, _, keys in leg_entries[1:]:
            if len(common) == 0:
                break
            common = np.intersect1d(common, keys)
        if len(common) == 0:
            return (
                {v: empty.copy() for v in self.target_vars},
                {v: empty.copy() for v in edges},
                0,
            )

        produced = 0
        for key in common:
            slices = []
            for edge_ids, nbr_ids, keys in leg_entries:
                left = int(np.searchsorted(keys, key, side="left"))
                right = int(np.searchsorted(keys, key, side="right"))
                slices.append((edge_ids[left:right], nbr_ids[left:right]))
            sizes = [len(s[0]) for s in slices]
            combos = _cross_product_indices(sizes)
            count = len(combos[0]) if combos else 0
            if count == 0:
                continue
            combo_targets = {}
            keep = np.ones(count, dtype=bool)
            for leg, (edge_slice, nbr_slice), combo in zip(self.legs, slices, combos):
                chosen_nbrs = nbr_slice[combo]
                if leg.target_var in combo_targets:
                    keep &= combo_targets[leg.target_var] == chosen_nbrs
                else:
                    combo_targets[leg.target_var] = chosen_nbrs
            produced += int(keep.sum())
            for name, values in combo_targets.items():
                targets[name].extend(int(v) for v in values[keep])
            for leg, (edge_slice, _), combo in zip(self.legs, slices, combos):
                if leg.track_edge:
                    edges[leg.edge_var].extend(int(e) for e in edge_slice[combo][keep])

        return (
            {name: np.asarray(values, dtype=np.int64) for name, values in targets.items()},
            {name: np.asarray(values, dtype=np.int64) for name, values in edges.items()},
            produced,
        )

    def describe(self) -> str:
        legs = "; ".join(leg.describe() for leg in self.legs)
        post = (
            f" THEN FILTER {self.post_predicate.describe()}"
            if not self.post_predicate.is_true
            else ""
        )
        return (
            f"MULTI-EXTEND on {self.equality_key.describe()} -> "
            f"{','.join(self.target_vars)} [{legs}]{post}"
        )


@dataclass
class Filter(PhysicalOperator):
    """Evaluate a predicate over fully bound variables of each partial match."""

    predicate: Predicate

    def execute(
        self, batches: Iterable[MatchBatch], context: ExecutionContext
    ) -> Iterator[MatchBatch]:
        for batch in batches:
            if len(batch) == 0:
                continue
            arrays = {
                name: (context.variable_kind(name), batch.column(name))
                for name in batch.variables
            }
            context.stats.predicate_evaluations += len(batch)
            mask = self.predicate.evaluate_bulk(context.graph, {}, arrays)
            filtered = batch.select(mask)
            if len(filtered):
                yield filtered

    def describe(self) -> str:
        return f"FILTER {self.predicate.describe()}"
