"""Physical operators of the GraphflowDB-style query processor.

The executor evaluates linear pipelines of the following operators
(Section IV-A of the paper):

* :class:`ScanVertices` — produce the initial single-variable matches.
* :class:`ExtendIntersect` (E/I) — extend partial matches by one query vertex
  by intersecting ``z >= 1`` adjacency lists sorted on neighbour IDs; with
  ``z = 1`` it degenerates to a simple extend.
* :class:`MultiExtend` — intersect adjacency lists sorted on a property other
  than neighbour ID and extend by one or more query vertices at once; also the
  operator through which edge-partitioned A+ indexes are read (a leg may be
  bound to an already-matched query *edge*).
* :class:`Filter` — evaluate residual predicates on fully bound variables.

Operators exchange :class:`~repro.query.binding.MatchBatch` objects.  Each
operator records how many adjacency lists and list entries it touched in the
:class:`ExecutionStats`, which is the empirical analogue of the optimizer's
i-cost metric.

Batch-at-a-time execution
-------------------------

The A+ index lookup is a constant number of array accesses, so on the hot
path the interpreter — not the index — dominates when lists are fetched one
partial match at a time.  The extension operators therefore default to a
*batch-at-a-time* strategy built on the batched index contract:

* every index class exposes ``list_many(bound_ids, key_values)`` returning
  ``(edge_ids, nbr_ids, counts)`` — the concatenation of the addressed lists
  plus per-row lengths — backed by one
  :meth:`~repro.storage.csr.NestedCSR.gather` flat gather-index;
* :meth:`ExtensionLeg.fetch_many` fetches a whole batch through that API and
  applies the sorted-range filter and the residual predicate segment-wise,
  vectorized over the concatenated candidates (bound columns repeated by
  counts);
* the single-leg :class:`ExtendIntersect` (the dominant plan shape) never
  enters a per-row loop: the extended batch is emitted with one ``repeat`` and
  one ``with_columns``;
* multi-leg E/I and :class:`MultiExtend` hand the whole batch's concatenated
  segments to the segment-wise intersection kernel
  (:func:`~repro.storage.intersect.intersect_segments`), which joins all legs
  on composite (row, key) keys in a handful of numpy ops — sort-merge,
  galloping binary search, or a hash-table probe, chosen adaptively — and
  returns per-combination entry positions through which the edge columns stay
  aligned with the intersected neighbours.  No per-row Python loop remains on
  any vectorized path.

``vectorized=False`` on the extension operators selects the legacy
tuple-at-a-time path; it is kept as the equivalence oracle and as the
baseline of ``benchmarks/bench_extend_throughput.py``.  Both paths produce
byte-identical batches and :class:`ExecutionStats` counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..graph.graph import PropertyGraph
from ..index.index_store import AccessPath
from ..storage.csr import segment_mask_counts
from ..storage.intersect import (
    combo_positions,
    dedup_sorted,
    intersect_segments,
)
from ..storage.sort_keys import SortKey
from .binding import DEFAULT_BATCH_SIZE, MatchBatch
from .factorized import FactorizedSegment
from .pattern import QueryGraph
from .predicates import CompareOp, Predicate


@dataclass
class ExecutionStats:
    """Counters accumulated while executing a plan.

    ``combos_avoided`` and ``segments_emitted`` advance only on the
    factorized execution path (:mod:`repro.query.factorized`):
    ``combos_avoided`` counts the rows the flat pipeline would have
    materialized for the factorized suffix (intermediate and output
    expansions included), ``segments_emitted`` the unexpanded extension
    segments produced in their stead.  ``output_rows`` stays the total
    match count on both paths.

    Every counter except ``segments_emitted`` is per-row accounting and is
    therefore identical across batch sizes, morsel cuts, backends and
    worker counts; ``segments_emitted`` advances once per (batch, suffix
    operator) pair, so it scales with how the prefix stream is batched —
    compare it only within one execution configuration.

    The fault-recovery counters advance only when the morsel runtime loses
    a worker: ``retries`` counts morsel failures the dispatcher handled
    (each failed attempt, whether the fix was a resubmission or the serial
    fallback) and ``morsels_recovered`` counts morsels whose merged result
    came from a recovery path rather than the first attempt.  Both stay 0
    on fault-free runs, so the cross-backend byte-identity contract on the
    work counters is untouched.  ``deadline_remaining`` is not a counter:
    the runner sets it once, after the query completes, to the wall-clock
    seconds left of a ``timeout=`` budget (``None`` when no deadline was
    requested; ``0.0`` on the partial stats attached to a
    :class:`~repro.errors.QueryTimeoutError`).

    The pipeline observability fields are deliberately excluded from
    equality (``compare=False``): per-stage wall-clock time and the number
    of morsels a dispatcher handed out are runtime artefacts that vary
    across backends, worker counts and early termination, while the work
    counters above are the byte-identity contract.  ``operator_seconds``
    maps a stage label (e.g. ``"0:scan"``, ``"1:extend"``) to the
    *exclusive* wall-clock seconds spent in that stage (child-stage time
    subtracted, so the per-stage times sum to the pipeline total);
    ``operator_batches`` counts the batches each stage emitted;
    ``morsels_dispatched`` counts the morsels the dispatcher actually
    submitted to workers — under ``collect(limit=)`` early termination this
    stays below the full domain's morsel count.
    """

    lists_accessed: int = 0
    list_entries_fetched: int = 0
    intermediate_rows: int = 0
    output_rows: int = 0
    predicate_evaluations: int = 0
    combos_avoided: int = 0
    segments_emitted: int = 0
    retries: int = 0
    morsels_recovered: int = 0
    deadline_remaining: Optional[float] = None
    morsels_dispatched: int = field(default=0, compare=False)
    operator_seconds: Dict[str, float] = field(default_factory=dict, compare=False)
    operator_batches: Dict[str, int] = field(default_factory=dict, compare=False)

    def reset(self) -> None:
        self.lists_accessed = 0
        self.list_entries_fetched = 0
        self.intermediate_rows = 0
        self.output_rows = 0
        self.predicate_evaluations = 0
        self.combos_avoided = 0
        self.segments_emitted = 0
        self.retries = 0
        self.morsels_recovered = 0
        self.deadline_remaining = None
        self.morsels_dispatched = 0
        self.operator_seconds = {}
        self.operator_batches = {}

    def record_stage(self, label: str, seconds: float, batches: int = 0) -> None:
        """Attribute ``seconds`` of exclusive wall time (and optionally
        emitted batches) to pipeline stage ``label``."""
        self.operator_seconds[label] = (
            self.operator_seconds.get(label, 0.0) + seconds
        )
        if batches:
            self.operator_batches[label] = (
                self.operator_batches.get(label, 0) + batches
            )

    def pipeline_seconds(self) -> float:
        """Total wall time attributed to pipeline stages (sum of the
        exclusive per-stage times)."""
        return sum(self.operator_seconds.values())

    def add(self, other: "ExecutionStats") -> None:
        """Accumulate another stats object (morsel-wise merge).

        Every counter is per-row accounting, so summing the per-morsel
        counters of a partitioned execution reproduces the serial totals
        exactly.  ``deadline_remaining`` is a query-level value set by the
        runner, not a morsel-wise sum, so it is left untouched.  The
        observability fields merge additively (stage times key-wise), which
        keeps per-stage attribution meaningful across morsels; on
        multi-worker backends the summed stage times measure aggregate CPU
        time, not wall clock.
        """
        self.lists_accessed += other.lists_accessed
        self.list_entries_fetched += other.list_entries_fetched
        self.intermediate_rows += other.intermediate_rows
        self.output_rows += other.output_rows
        self.predicate_evaluations += other.predicate_evaluations
        self.combos_avoided += other.combos_avoided
        self.segments_emitted += other.segments_emitted
        self.retries += other.retries
        self.morsels_recovered += other.morsels_recovered
        self.morsels_dispatched += other.morsels_dispatched
        for label, seconds in other.operator_seconds.items():
            self.operator_seconds[label] = (
                self.operator_seconds.get(label, 0.0) + seconds
            )
        for label, batches in other.operator_batches.items():
            self.operator_batches[label] = (
                self.operator_batches.get(label, 0) + batches
            )


@dataclass
class ExecutionContext:
    """Shared state available to every operator during execution.

    ``runtime`` is the per-query guardrail state
    (:class:`~repro.query.runtime.QueryContext`) or ``None`` for an
    unguarded query; the pipeline driver calls :meth:`check_runtime`
    between batches.  Process-pool morsel bodies always see ``None`` — the
    parent enforces their deadline from outside (see
    :mod:`repro.query.runtime`).
    """

    graph: PropertyGraph
    query: QueryGraph
    batch_size: int = DEFAULT_BATCH_SIZE
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    runtime: Optional[object] = None
    # Monotonic clock used for per-stage timing.  Injectable so tests can
    # drive the pipeline with a fake clock and assert exact attributions;
    # process-pool workers always use the default (callables do not ship
    # with the pickled payload).
    clock: Callable[[], float] = field(default=time.perf_counter)

    def variable_kind(self, name: str) -> str:
        return self.query.variable_kind(name)

    def check_runtime(self) -> None:
        """Raise timeout/cancellation if the query must stop; cheap no-op otherwise."""
        if self.runtime is not None:
            self.runtime.check(self.stats)


# ----------------------------------------------------------------------
# sorted-range filters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SortedRangeFilter:
    """A predicate applied via binary search on a sorted list.

    When the adjacency list addressed by a leg is sorted on a property that a
    constant comparison constrains (e.g. lists sorted on ``time`` and a
    ``time < alpha`` predicate), the qualifying prefix/suffix can be located
    with ``searchsorted`` instead of evaluating the predicate on every edge.

    Attributes:
        sort_key: the property the list is sorted by.
        op: the comparison operator against the constant.
        value: the (already encoded) constant.
    """

    sort_key: SortKey
    op: CompareOp
    value: float

    def apply(
        self, graph: PropertyGraph, edge_ids: np.ndarray, nbr_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if len(edge_ids) == 0:
            return edge_ids, nbr_ids
        values = self.sort_key.values(graph, edge_ids, nbr_ids)
        if self.op is CompareOp.LT:
            end = int(np.searchsorted(values, self.value, side="left"))
            return edge_ids[:end], nbr_ids[:end]
        if self.op is CompareOp.LE:
            end = int(np.searchsorted(values, self.value, side="right"))
            return edge_ids[:end], nbr_ids[:end]
        if self.op is CompareOp.GT:
            start = int(np.searchsorted(values, self.value, side="right"))
            return edge_ids[start:], nbr_ids[start:]
        if self.op is CompareOp.GE:
            start = int(np.searchsorted(values, self.value, side="left"))
            return edge_ids[start:], nbr_ids[start:]
        if self.op is CompareOp.EQ:
            start = int(np.searchsorted(values, self.value, side="left"))
            end = int(np.searchsorted(values, self.value, side="right"))
            return edge_ids[start:end], nbr_ids[start:end]
        raise ExecutionError(f"sorted-range filter does not support {self.op}")

    def _mask(self, values: np.ndarray) -> np.ndarray:
        if self.op is CompareOp.LT:
            return values < self.value
        if self.op is CompareOp.LE:
            return values <= self.value
        if self.op is CompareOp.GT:
            return values > self.value
        if self.op is CompareOp.GE:
            return values >= self.value
        if self.op is CompareOp.EQ:
            return values == self.value
        raise ExecutionError(f"sorted-range filter does not support {self.op}")

    def apply_segmented(
        self,
        graph: PropertyGraph,
        edge_ids: np.ndarray,
        nbr_ids: np.ndarray,
        counts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`apply` over many concatenated lists.

        Each segment of ``counts`` is individually sorted on the filter's
        sort key, so the elementwise comparison mask selects exactly the
        prefix/suffix/run that the per-list binary search of :meth:`apply`
        would slice — one vectorized pass over all segment boundaries instead
        of one ``searchsorted`` per list.  Returns the filtered ID arrays and
        the updated per-segment counts.
        """
        if len(edge_ids) == 0:
            return edge_ids, nbr_ids, counts
        mask = self._mask(self.sort_key.values(graph, edge_ids, nbr_ids))
        return edge_ids[mask], nbr_ids[mask], segment_mask_counts(counts, mask)


# ----------------------------------------------------------------------
# extension legs
# ----------------------------------------------------------------------
@dataclass
class ExtensionLeg:
    """One adjacency-list access inside an E/I or MULTI-EXTEND operator.

    Attributes:
        access_path: how the list is read (which index, which partition-key
            values, what the list is sorted by).
        bound_var: the already-bound query variable whose adjacency is read; a
            query vertex for vertex-partitioned paths, a query edge for
            edge-partitioned paths.
        target_var: the new query vertex this leg produces candidates for.
        edge_var: the query edge matched by this leg.
        track_edge: whether the matched edge ID must be bound in the output.
        sorted_filter: optional binary-search filter on the list's sort key.
        residual: remaining predicate (query-variable names) to evaluate on the
            candidates; may reference the new vertex/edge and any bound vars.
        presorted_by_nbr: True when the addressed list is already ordered by
            neighbour ID; legs of a multiway E/I that are not presorted are
            sorted by the operator (counted in its runtime), which models the
            penalty of intersecting lists whose index is not tuned for it.
    """

    access_path: AccessPath
    bound_var: str
    target_var: str
    edge_var: str
    track_edge: bool = False
    sorted_filter: Optional[SortedRangeFilter] = None
    residual: Predicate = field(default_factory=Predicate.true)
    presorted_by_nbr: bool = True

    def fetch(
        self,
        context: ExecutionContext,
        fixed: Dict[str, Tuple[str, int]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Read and filter this leg's adjacency list for one partial match."""
        bound_id = fixed[self.bound_var][1]
        edge_ids, nbr_ids = self.access_path.index.list(
            bound_id, list(self.access_path.key_values)
        )
        context.stats.lists_accessed += 1
        context.stats.list_entries_fetched += len(edge_ids)
        if self.sorted_filter is not None and len(edge_ids):
            edge_ids, nbr_ids = self.sorted_filter.apply(
                context.graph, edge_ids, nbr_ids
            )
        if not self.residual.is_true and len(edge_ids):
            arrays = {
                self.target_var: ("vertex", nbr_ids),
                self.edge_var: ("edge", edge_ids),
            }
            context.stats.predicate_evaluations += len(edge_ids)
            mask = self.residual.evaluate_bulk(context.graph, fixed, arrays)
            edge_ids = edge_ids[mask]
            nbr_ids = nbr_ids[mask]
        return edge_ids, nbr_ids

    def fetch_many(
        self, context: ExecutionContext, batch: MatchBatch
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`fetch`: read and filter the lists of a whole batch.

        Fetches the adjacency lists of every partial match in ``batch``
        through the index's ``list_many`` gather, then applies the
        sorted-range filter segment-wise and the residual predicate in one
        ``evaluate_bulk`` over the concatenated candidates (bound columns
        repeated by counts).  Returns ``(edge_ids, nbr_ids, counts)`` equal to
        concatenating :meth:`fetch` over the rows; stats counters advance
        exactly as the per-row path would.
        """
        bound_ids = batch.column(self.bound_var)
        edge_ids, nbr_ids, counts = self.access_path.index.list_many(
            bound_ids, list(self.access_path.key_values)
        )
        context.stats.lists_accessed += len(bound_ids)
        context.stats.list_entries_fetched += len(edge_ids)
        if self.sorted_filter is not None and len(edge_ids):
            edge_ids, nbr_ids, counts = self.sorted_filter.apply_segmented(
                context.graph, edge_ids, nbr_ids, counts
            )
        if not self.residual.is_true and len(edge_ids):
            arrays = {
                self.target_var: ("vertex", nbr_ids),
                self.edge_var: ("edge", edge_ids),
            }
            for name in self.residual.variables():
                if name not in arrays:
                    arrays[name] = (
                        context.variable_kind(name),
                        np.repeat(batch.column(name), counts),
                    )
            context.stats.predicate_evaluations += len(edge_ids)
            mask = self.residual.evaluate_bulk(context.graph, {}, arrays)
            edge_ids = edge_ids[mask]
            nbr_ids = nbr_ids[mask]
            counts = segment_mask_counts(counts, mask)
        return edge_ids, nbr_ids, counts

    def describe(self) -> str:
        extras = []
        if self.sorted_filter is not None:
            extras.append(
                f"sorted {self.sorted_filter.sort_key.describe()} "
                f"{self.sorted_filter.op.value} {self.sorted_filter.value}"
            )
        if not self.residual.is_true:
            extras.append(f"filter[{self.residual.describe()}]")
        suffix = f" ({'; '.join(extras)})" if extras else ""
        return (
            f"{self.bound_var}-[{self.edge_var}]->{self.target_var} "
            f"via {self.access_path.describe()}{suffix}"
        )


def _intersect_leg_results(
    legs: Sequence[ExtensionLeg],
    results: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Intersect per-leg candidates on neighbour ID.

    Returns the extended neighbour IDs (with multiplicity from parallel edges)
    and, for legs that track their edge, the aligned edge-ID columns.  Edge
    combinations of parallel edges are expanded with vectorized segment
    arithmetic (:func:`~repro.storage.intersect.combo_positions`) rather than
    per-neighbour Python loops.
    """
    # Every leg's list is sorted on neighbour ID by the caller, so distinct
    # values come from a linear dedup and ``intersect1d`` may skip its
    # per-input sort (``assume_unique`` requires sorted *and* unique inputs —
    # parallel edges make the raw lists non-unique).
    common = dedup_sorted(results[0][1])
    for _, nbr_ids in results[1:]:
        if len(common) == 0:
            break
        common = np.intersect1d(common, dedup_sorted(nbr_ids), assume_unique=True)
    empty = np.empty(0, dtype=np.int64)
    if len(common) == 0:
        return empty, {leg.edge_var: empty.copy() for leg in legs if leg.track_edge}

    lefts: List[np.ndarray] = []
    sizes_per_leg: List[np.ndarray] = []
    multiplicity = np.ones(len(common), dtype=np.int64)
    for _, nbr_ids in results:
        left = np.searchsorted(nbr_ids, common, side="left").astype(np.int64)
        right = np.searchsorted(nbr_ids, common, side="right").astype(np.int64)
        lefts.append(left)
        sizes_per_leg.append(right - left)
        multiplicity *= sizes_per_leg[-1]
    out_nbrs = np.repeat(np.asarray(common, dtype=np.int64), multiplicity)

    if not any(leg.track_edge for leg in legs):
        return out_nbrs, {}

    positions, _ = combo_positions(lefts, sizes_per_leg, multiplicity)
    out_edges: Dict[str, np.ndarray] = {}
    for leg, (edge_ids, _), pos in zip(legs, results, positions):
        if leg.track_edge:
            out_edges[leg.edge_var] = np.asarray(edge_ids, dtype=np.int64)[pos]
    return out_nbrs, out_edges


def _unique_sorted_keys(values: np.ndarray) -> np.ndarray:
    """``np.unique`` of an already-sorted key array, without re-sorting.

    Linear dedup, plus collapsing a float NaN tail to a single candidate:
    ``dedup_sorted`` alone keeps every NaN (NaN != NaN), but each NaN
    candidate's ``searchsorted`` run bounds would span the *whole* NaN run,
    duplicating combinations — collapsing matches ``np.unique`` and keeps the
    oracle aligned with the kernel's one-code-per-NaN grouping.  Production
    plans never produce NaN keys (:meth:`SortKey.values` rewrites NaN to
    ``inf``); this exists so the oracle and the public kernel API agree on
    raw float input.
    """
    out = dedup_sorted(values)
    if out.dtype.kind == "f" and len(out) > 1:
        nan_count = int(np.isnan(out).sum())
        if nan_count > 1:
            out = out[: len(out) - nan_count + 1]
    return out


def _reconcile_combo_targets(
    legs: Sequence[ExtensionLeg],
    entries: Sequence[Tuple[np.ndarray, np.ndarray]],
    positions: Sequence[np.ndarray],
    total: int,
) -> Tuple[np.ndarray, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Materialize per-combination target/edge columns and the keep mask.

    ``entries`` supplies per leg the ``(edge_ids, nbr_ids)`` arrays that
    ``positions`` index into (one position per combination).  Legs sharing a
    target vertex must agree on the chosen neighbour; disagreeing
    combinations are masked out.  Shared by the batch kernel path and the
    per-row oracle of MULTI-EXTEND so their semantics cannot drift apart.
    """
    keep = np.ones(total, dtype=bool)
    combo_targets: Dict[str, np.ndarray] = {}
    combo_edges: Dict[str, np.ndarray] = {}
    for leg, (edge_ids, nbr_ids), pos in zip(legs, entries, positions):
        chosen_nbrs = np.asarray(nbr_ids, dtype=np.int64)[pos]
        if leg.target_var in combo_targets:
            keep &= combo_targets[leg.target_var] == chosen_nbrs
        else:
            combo_targets[leg.target_var] = chosen_nbrs
        if leg.track_edge:
            combo_edges[leg.edge_var] = np.asarray(edge_ids, dtype=np.int64)[pos]
    return keep, combo_targets, combo_edges


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------
class PhysicalOperator:
    """Base class for physical operators (documentation/typing aid)."""

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


#: Minimum vertex-domain chunk scanned at once (label test + predicate are
#: evaluated per chunk, so peak memory is O(chunk), not O(num_vertices)).
_SCAN_CHUNK_MIN = 4096


@dataclass
class ScanVertices(PhysicalOperator):
    """Produce the initial matches of one query vertex.

    The label restriction and the predicate are pushed down into the chunked
    scan: the vertex-ID domain is walked in fixed-size chunks, each chunk is
    label-tested and predicate-filtered vectorized, and survivors are packed
    into full ``batch_size`` batches — the full candidate set is never
    materialized at once.

    Attributes:
        var: the query vertex variable to bind.
        label: optional vertex label restriction.
        predicate: optional single-variable predicate (e.g. ``a1.ID < 50000``
            or ``a1.city = 'BOS'``), evaluated vectorized over the candidates.
        vertex_range: optional ``(start, stop)`` half-open sub-range of the
            vertex-ID domain to scan instead of the full domain.  This is how
            the morsel dispatcher assigns one contiguous vertex-range morsel
            to each worker: scanning ``(0, num_vertices)`` in one operator and
            scanning a partition of it across several operator copies produce
            the same candidates in the same order, so per-morsel pipelines
            concatenated in range order reproduce the serial output exactly.
    """

    var: str
    label: Optional[str] = None
    predicate: Predicate = field(default_factory=Predicate.true)
    vertex_range: Optional[Tuple[int, int]] = None

    def domain(self, graph: PropertyGraph) -> Tuple[int, int]:
        """The scanned ``[start, stop)`` vertex-ID range, clipped to the graph."""
        if self.vertex_range is None:
            return 0, graph.num_vertices
        start, stop = self.vertex_range
        start = max(int(start), 0)
        stop = min(int(stop), graph.num_vertices)
        return start, max(stop, start)

    def _candidate_chunks(
        self, graph: PropertyGraph, chunk_size: int
    ) -> Iterator[np.ndarray]:
        """Yield label-filtered candidate IDs one vertex-domain chunk at a time."""
        lo, hi = self.domain(graph)
        if self.label is not None:
            code = graph.schema.vertex_label_code(self.label)
            labels = graph.vertex_labels
            for start in range(lo, hi, chunk_size):
                window = labels[start : min(start + chunk_size, hi)]
                yield np.nonzero(window == code)[0].astype(np.int64) + start
        else:
            for start in range(lo, hi, chunk_size):
                end = min(start + chunk_size, hi)
                yield np.arange(start, end, dtype=np.int64)

    def execute(self, context: ExecutionContext) -> Iterator[MatchBatch]:
        graph = context.graph
        batch_size = context.batch_size
        chunk_size = max(batch_size, _SCAN_CHUNK_MIN)
        pending: List[np.ndarray] = []
        pending_rows = 0
        for candidates in self._candidate_chunks(graph, chunk_size):
            if not self.predicate.is_true and len(candidates):
                arrays = {self.var: ("vertex", candidates)}
                context.stats.predicate_evaluations += len(candidates)
                mask = self.predicate.evaluate_bulk(graph, {}, arrays)
                candidates = candidates[mask]
            if len(candidates) == 0:
                continue
            context.stats.intermediate_rows += len(candidates)
            pending.append(candidates)
            pending_rows += len(candidates)
            while pending_rows >= batch_size:
                buffered = pending[0] if len(pending) == 1 else np.concatenate(pending)
                yield MatchBatch.single_column(self.var, buffered[:batch_size])
                rest = buffered[batch_size:]
                pending = [rest] if len(rest) else []
                pending_rows = len(rest)
        if pending_rows:
            buffered = pending[0] if len(pending) == 1 else np.concatenate(pending)
            yield MatchBatch.single_column(self.var, buffered)

    def describe(self) -> str:
        label = f":{self.label}" if self.label else ""
        where = f" WHERE {self.predicate.describe()}" if not self.predicate.is_true else ""
        span = (
            f" RANGE [{self.vertex_range[0]}, {self.vertex_range[1]})"
            if self.vertex_range is not None
            else ""
        )
        return f"SCAN ({self.var}{label}){span}{where}"


@dataclass
class ExtendIntersect(PhysicalOperator):
    """EXTEND/INTERSECT: extend partial matches by one query vertex.

    With one leg the operator extends each partial match to every edge in the
    addressed adjacency list; with ``z >= 2`` legs it intersects the lists
    (which must be sorted on neighbour IDs) and extends to each vertex in the
    intersection — the building block of WCOJ plans.

    Attributes:
        target_var: the new query vertex bound by this operator.
        legs: the adjacency-list accesses to intersect.
        post_predicate: residual predicate evaluated (vectorized) on the
            extended batch, for conjuncts that reference the new vertex
            together with variables other than the legs' bound variables.
        vectorized: select the batch-at-a-time gather path (default).  The
            single-leg fast path extends a whole batch with no per-row Python
            loop; the multi-leg path prefetches every leg through ``list_many``
            and intersects the whole batch in one segment-kernel call.
            ``False`` selects the legacy tuple-at-a-time path (benchmark
            baseline / equivalence oracle).
    """

    target_var: str
    legs: List[ExtensionLeg]
    post_predicate: Predicate = field(default_factory=Predicate.true)
    vectorized: bool = True

    def execute(
        self, batches: Iterable[MatchBatch], context: ExecutionContext
    ) -> Iterator[MatchBatch]:
        for batch in batches:
            if len(batch) == 0:
                continue
            if not self.vectorized:
                extended = self._extend_rowwise(batch, context)
            elif len(self.legs) == 1:
                extended = self._extend_batch_single(batch, context)
            else:
                extended = self._extend_batch_multi(batch, context)
            if extended is None:
                continue
            context.stats.intermediate_rows += len(extended)

            if not self.post_predicate.is_true and len(extended):
                arrays = {
                    name: (context.variable_kind(name), extended.column(name))
                    for name in extended.variables
                }
                context.stats.predicate_evaluations += len(extended)
                mask = self.post_predicate.evaluate_bulk(context.graph, {}, arrays)
                extended = extended.select(mask)
            if len(extended):
                for chunk in extended.split(context.batch_size):
                    yield chunk

    # -- batch-at-a-time paths ------------------------------------------
    def _extend_batch_single(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> Optional[MatchBatch]:
        """Single-leg fast path: one gather, one repeat, no per-row loop."""
        leg = self.legs[0]
        edge_ids, nbr_ids, counts = leg.fetch_many(context, batch)
        if len(nbr_ids) == 0:
            return None
        new_columns = {self.target_var: nbr_ids}
        if leg.track_edge:
            new_columns[leg.edge_var] = edge_ids
        return batch.repeat(counts).with_columns(new_columns)

    def _extend_batch_multi(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> Optional[MatchBatch]:
        """Multi-leg path: batched fetch per leg, one kernel call per batch.

        All legs' concatenated ``list_many`` segments are intersected on
        composite (row, neighbour) keys by
        :func:`~repro.storage.intersect.intersect_segments`; per-combination
        positions returned by the kernel keep the tracked edge columns
        aligned with the intersected neighbours.
        """
        any_tracked = any(leg.track_edge for leg in self.legs)
        per_leg = [leg.fetch_many(context, batch) for leg in self.legs]
        result = intersect_segments(
            [nbr_ids for _, nbr_ids, _ in per_leg],
            [counts for _, _, counts in per_leg],
            num_rows=len(batch),
            presorted=[leg.presorted_by_nbr for leg in self.legs],
            need_positions=any_tracked,
        )
        if result.total == 0:
            return None
        new_columns = {self.target_var: result.expanded_keys()}
        if any_tracked:
            for leg, (edge_ids, _, _), pos in zip(
                self.legs, per_leg, result.positions
            ):
                if leg.track_edge:
                    new_columns[leg.edge_var] = np.asarray(
                        edge_ids, dtype=np.int64
                    )[pos]
        return batch.repeat(result.counts_out).with_columns(new_columns)

    # -- factorized emit path -------------------------------------------
    def extend_factorized(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> FactorizedSegment:
        """Emit this operator's extensions unexpanded (factorized suffix path).

        Requires the vectorized path with a TRUE post-predicate — the plan
        analysis (:meth:`~repro.query.plan.QueryPlan.factorized_suffix_start`)
        guarantees both before routing a batch here.  The returned segment's
        cardinalities equal, per prefix row, the number of rows the flat path
        would have materialized: single-leg extends keep the fetched candidate
        arrays (so the segment stays flattenable), multi-leg intersections run
        the segment kernel with ``need_positions=False`` and keep only the
        per-row combination counts — no expansion work on either shape.
        """
        if not self.vectorized or not self.post_predicate.is_true:
            raise ExecutionError(
                "extend_factorized requires the vectorized path with a TRUE "
                "post-predicate; the plan's factorized-suffix analysis admits "
                "nothing else"
            )
        if len(self.legs) == 1:
            leg = self.legs[0]
            edge_ids, nbr_ids, counts = leg.fetch_many(context, batch)
            return FactorizedSegment(
                target_vars=(self.target_var,),
                cardinalities=counts,
                nbr_ids=nbr_ids,
                edge_var=leg.edge_var if leg.track_edge else None,
                edge_ids=edge_ids if leg.track_edge else None,
            )
        per_leg = [leg.fetch_many(context, batch) for leg in self.legs]
        result = intersect_segments(
            [nbr_ids for _, nbr_ids, _ in per_leg],
            [counts for _, _, counts in per_leg],
            num_rows=len(batch),
            presorted=[leg.presorted_by_nbr for leg in self.legs],
            need_positions=False,
        )
        return FactorizedSegment(
            target_vars=(self.target_var,), cardinalities=result.counts_out
        )

    # -- legacy tuple-at-a-time path ------------------------------------
    def _extend_rowwise(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> Optional[MatchBatch]:
        """The seed per-row path: one ``index.list`` call per partial match."""
        tracked_vars = [leg.edge_var for leg in self.legs if leg.track_edge]
        columns = {name: batch.column(name) for name in batch.variables}
        kinds = {name: context.variable_kind(name) for name in batch.variables}
        counts = np.zeros(len(batch), dtype=np.int64)
        nbr_chunks: List[np.ndarray] = []
        edge_chunks: Dict[str, List[np.ndarray]] = {v: [] for v in tracked_vars}

        for row in range(len(batch)):
            fixed = {
                name: (kinds[name], int(columns[name][row])) for name in columns
            }
            results = []
            for leg in self.legs:
                edge_ids, nbr_ids = leg.fetch(context, fixed)
                if len(self.legs) > 1 and not leg.presorted_by_nbr and len(nbr_ids) > 1:
                    order = np.argsort(nbr_ids, kind="stable")
                    edge_ids = edge_ids[order]
                    nbr_ids = nbr_ids[order]
                results.append((edge_ids, nbr_ids))
            if len(self.legs) == 1:
                edge_ids, nbr_ids = results[0]
                counts[row] = len(nbr_ids)
                nbr_chunks.append(nbr_ids)
                if self.legs[0].track_edge:
                    edge_chunks[self.legs[0].edge_var].append(edge_ids)
            else:
                nbr_ids, edges = _intersect_leg_results(self.legs, results)
                counts[row] = len(nbr_ids)
                nbr_chunks.append(nbr_ids)
                for name in tracked_vars:
                    edge_chunks[name].append(
                        edges.get(name, np.empty(0, dtype=np.int64))
                    )

        if int(counts.sum()) == 0:
            return None
        new_columns = {self.target_var: np.concatenate(nbr_chunks)}
        for name in tracked_vars:
            new_columns[name] = np.concatenate(edge_chunks[name])
        return batch.repeat(counts).with_columns(new_columns)

    def describe(self) -> str:
        mode = "EXTEND" if len(self.legs) == 1 else f"E/I x{len(self.legs)}"
        legs = "; ".join(leg.describe() for leg in self.legs)
        post = (
            f" THEN FILTER {self.post_predicate.describe()}"
            if not self.post_predicate.is_true
            else ""
        )
        return f"{mode} -> {self.target_var} [{legs}]{post}"


@dataclass
class MultiExtend(PhysicalOperator):
    """MULTI-EXTEND: property-sorted intersection extending >= 1 query vertices.

    All legs' adjacency lists are sorted on the same property (the
    ``equality_key``); the operator joins them on equal property values,
    producing one output row per combination of entries that agree on the
    property (and, for legs sharing a target vertex, on the neighbour ID).
    This is how plans exploit lists sorted on e.g. ``city`` for predicates
    like ``a2.city = a4.city`` and how edge-partitioned lists participate in
    multiway intersections (Figure 6 of the paper).

    Attributes:
        legs: adjacency accesses; each leg carries its own target vertex.
        equality_key: the :class:`SortKey` the legs are sorted and joined on.
        post_predicate: residual predicate over the extended batch.
        vectorized: fetch all legs through the batched ``list_many`` API and
            join the whole batch on composite (row, key) keys in one
            segment-kernel call (default); ``False`` selects the legacy
            per-row fetch path.
    """

    legs: List[ExtensionLeg]
    equality_key: SortKey
    post_predicate: Predicate = field(default_factory=Predicate.true)
    vectorized: bool = True

    @property
    def target_vars(self) -> List[str]:
        seen = []
        for leg in self.legs:
            if leg.target_var not in seen:
                seen.append(leg.target_var)
        return seen

    def execute(
        self, batches: Iterable[MatchBatch], context: ExecutionContext
    ) -> Iterator[MatchBatch]:
        for batch in batches:
            if len(batch) == 0:
                continue
            if self.vectorized:
                extended = self._extend_batchwise(batch, context)
            else:
                extended = self._extend_rowwise(batch, context)
            if extended is None:
                continue
            context.stats.intermediate_rows += len(extended)

            if not self.post_predicate.is_true and len(extended):
                arrays = {
                    name: (context.variable_kind(name), extended.column(name))
                    for name in extended.variables
                }
                context.stats.predicate_evaluations += len(extended)
                mask = self.post_predicate.evaluate_bulk(context.graph, {}, arrays)
                extended = extended.select(mask)
            if len(extended):
                for chunk in extended.split(context.batch_size):
                    yield chunk

    # -- batch-at-a-time path -------------------------------------------
    def _extend_batchwise(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> Optional[MatchBatch]:
        """Fetch every leg for the whole batch, then join it in one kernel call.

        The equality-key values of all legs (floats and null markers
        included, via the kernel's rank encoding) are joined on composite
        (row, key) keys; legs sharing a target vertex are reconciled with one
        boolean mask over the expanded combinations.
        """
        graph = context.graph
        per_leg = []
        leg_keys = []
        leg_counts = []
        presorted = []
        for leg in self.legs:
            edge_ids, nbr_ids, counts = leg.fetch_many(context, batch)
            per_leg.append((edge_ids, nbr_ids))
            leg_keys.append(self.equality_key.values(graph, edge_ids, nbr_ids))
            leg_counts.append(counts)
            presorted.append(leg.access_path.sorted_by(self.equality_key))

        result = intersect_segments(
            leg_keys,
            leg_counts,
            num_rows=len(batch),
            presorted=presorted,
            need_positions=True,
        )
        if result.total == 0:
            return None

        keep, combo_targets, combo_edges = _reconcile_combo_targets(
            self.legs, per_leg, result.positions, result.total
        )
        if keep.all():
            # Common case (no shared-target legs): nothing to filter, reuse
            # the kernel's per-row counts and the combo columns as-is.
            counts_out = result.counts_out
            new_columns: Dict[str, np.ndarray] = dict(combo_targets)
            new_columns.update(combo_edges)
        else:
            counts_out = np.bincount(
                result.combo_rows()[keep], minlength=len(batch)
            ).astype(np.int64, copy=False)
            if int(counts_out.sum()) == 0:
                return None
            new_columns = {
                name: values[keep] for name, values in combo_targets.items()
            }
            for name, values in combo_edges.items():
                new_columns[name] = values[keep]
        return batch.repeat(counts_out).with_columns(new_columns)

    # -- factorized emit path -------------------------------------------
    def extend_factorized(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> FactorizedSegment:
        """Emit this operator's join combinations unexpanded (count-only).

        Requires the vectorized path, a TRUE post-predicate, and pairwise
        distinct target vertices (legs sharing a target need per-combination
        reconciliation, which only the flat path performs) — all guaranteed
        by the plan's factorized-suffix analysis.  With those preconditions
        the kernel's per-row combination counts *are* the flat expansion
        counts, so the join runs with ``need_positions=False`` and never
        materializes a combination.
        """
        if not self.vectorized or not self.post_predicate.is_true:
            raise ExecutionError(
                "extend_factorized requires the vectorized path with a TRUE "
                "post-predicate; the plan's factorized-suffix analysis admits "
                "nothing else"
            )
        if len(self.target_vars) != len(self.legs):
            raise ExecutionError(
                "factorized MULTI-EXTEND requires pairwise-distinct target "
                "vertices; shared-target legs must stay on the flat path"
            )
        graph = context.graph
        leg_keys = []
        leg_counts = []
        presorted = []
        for leg in self.legs:
            edge_ids, nbr_ids, counts = leg.fetch_many(context, batch)
            leg_keys.append(self.equality_key.values(graph, edge_ids, nbr_ids))
            leg_counts.append(counts)
            presorted.append(leg.access_path.sorted_by(self.equality_key))
        result = intersect_segments(
            leg_keys,
            leg_counts,
            num_rows=len(batch),
            presorted=presorted,
            need_positions=False,
        )
        return FactorizedSegment(
            target_vars=tuple(self.target_vars), cardinalities=result.counts_out
        )

    # -- legacy tuple-at-a-time path ------------------------------------
    def _extend_rowwise(
        self, batch: MatchBatch, context: ExecutionContext
    ) -> Optional[MatchBatch]:
        """The seed per-row path: fetch and join one partial match at a time."""
        tracked_vars = [leg.edge_var for leg in self.legs if leg.track_edge]
        target_vars = self.target_vars
        columns = {name: batch.column(name) for name in batch.variables}
        kinds = {name: context.variable_kind(name) for name in batch.variables}
        counts = np.zeros(len(batch), dtype=np.int64)
        target_chunks: Dict[str, List[np.ndarray]] = {v: [] for v in target_vars}
        edge_chunks: Dict[str, List[np.ndarray]] = {v: [] for v in tracked_vars}

        for row in range(len(batch)):
            fixed = {
                name: (kinds[name], int(columns[name][row])) for name in columns
            }
            row_targets, row_edges, produced = self._extend_row(context, fixed)
            counts[row] = produced
            for name in target_vars:
                target_chunks[name].append(row_targets[name])
            for name in tracked_vars:
                edge_chunks[name].append(row_edges[name])

        if int(counts.sum()) == 0:
            return None
        new_columns: Dict[str, np.ndarray] = {
            name: np.concatenate(target_chunks[name]) for name in target_vars
        }
        for name in tracked_vars:
            new_columns[name] = np.concatenate(edge_chunks[name])
        return batch.repeat(counts).with_columns(new_columns)

    def _extend_row(
        self, context: ExecutionContext, fixed: Dict[str, Tuple[str, int]]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
        """Join the legs on the equality key for one partial match."""
        graph = context.graph
        leg_entries = []
        for leg in self.legs:
            edge_ids, nbr_ids = leg.fetch(context, fixed)
            keys = self.equality_key.values(graph, edge_ids, nbr_ids)
            if len(keys) > 1 and not leg.access_path.sorted_by(self.equality_key):
                order = np.argsort(keys, kind="stable")
                edge_ids = edge_ids[order]
                nbr_ids = nbr_ids[order]
                keys = keys[order]
            leg_entries.append((edge_ids, nbr_ids, keys))
        return self._join_entries(leg_entries)

    def _join_entries(
        self, leg_entries: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
        """Join key-sorted leg entries on the equality key, vectorized.

        Combination expansion over equal-key runs uses
        :func:`~repro.storage.intersect.combo_positions`; legs sharing a
        target vertex are reconciled with one boolean mask instead of
        per-combination Python ints.
        """
        empty = np.empty(0, dtype=np.int64)
        targets: Dict[str, np.ndarray] = {v: empty.copy() for v in self.target_vars}
        edges: Dict[str, np.ndarray] = {
            leg.edge_var: empty.copy() for leg in self.legs if leg.track_edge
        }

        # Leg entries arrive key-sorted (callers sort unsorted legs), so the
        # linear dedup keeps them sorted-unique and ``intersect1d`` may skip
        # its per-input sort.
        common = _unique_sorted_keys(leg_entries[0][2])
        for _, _, keys in leg_entries[1:]:
            if len(common) == 0:
                break
            common = np.intersect1d(
                common, _unique_sorted_keys(keys), assume_unique=True
            )
        if len(common) == 0:
            return targets, edges, 0

        lefts: List[np.ndarray] = []
        sizes_per_leg: List[np.ndarray] = []
        multiplicity = np.ones(len(common), dtype=np.int64)
        for _, _, keys in leg_entries:
            left = np.searchsorted(keys, common, side="left").astype(np.int64)
            right = np.searchsorted(keys, common, side="right").astype(np.int64)
            lefts.append(left)
            sizes_per_leg.append(right - left)
            multiplicity *= sizes_per_leg[-1]
        positions, total = combo_positions(lefts, sizes_per_leg, multiplicity)
        if total == 0:
            return targets, edges, 0

        keep, combo_targets, combo_edges = _reconcile_combo_targets(
            self.legs,
            [(edge_ids, nbr_ids) for edge_ids, nbr_ids, _ in leg_entries],
            positions,
            total,
        )
        produced = int(keep.sum())
        for name, values in combo_targets.items():
            targets[name] = values[keep]
        for name, values in combo_edges.items():
            edges[name] = values[keep]
        return targets, edges, produced

    def describe(self) -> str:
        legs = "; ".join(leg.describe() for leg in self.legs)
        post = (
            f" THEN FILTER {self.post_predicate.describe()}"
            if not self.post_predicate.is_true
            else ""
        )
        return (
            f"MULTI-EXTEND on {self.equality_key.describe()} -> "
            f"{','.join(self.target_vars)} [{legs}]{post}"
        )


@dataclass
class Filter(PhysicalOperator):
    """Evaluate a predicate over fully bound variables of each partial match."""

    predicate: Predicate

    def execute(
        self, batches: Iterable[MatchBatch], context: ExecutionContext
    ) -> Iterator[MatchBatch]:
        for batch in batches:
            if len(batch) == 0:
                continue
            arrays = {
                name: (context.variable_kind(name), batch.column(name))
                for name in batch.variables
            }
            context.stats.predicate_evaluations += len(batch)
            mask = self.predicate.evaluate_bulk(context.graph, {}, arrays)
            filtered = batch.select(mask)
            if len(filtered):
                yield filtered

    def describe(self) -> str:
        return f"FILTER {self.predicate.describe()}"
