"""Dynamic-programming join optimizer with A+ index selection.

The optimizer follows GraphflowDB's approach (Section IV-A of the paper): it
enumerates plans for progressively larger connected sub-queries one query
vertex at a time, extending the best plan of each sub-query with an
EXTEND/INTERSECT operator, and — when the query contains equality predicates
relating two or more not-yet-matched query vertices (or predicates relating
two query edges) — with a MULTI-EXTEND operator that may add several query
vertices at once and may read edge-partitioned A+ indexes.

For every candidate extension the optimizer queries the INDEX STORE for the
usable access paths (primary, vertex-partitioned, and edge-partitioned
indexes whose materialized predicates are subsumed by the extension's
predicate), picks the cheapest one per leg, and costs alternatives with the
**i-cost** metric: the total estimated size of the adjacency lists the plan's
extension operators will access.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import PlanningError
from ..graph.types import Direction, EdgeAdjacencyType
from ..index.index_store import AccessPath, IndexStore
from ..storage.sort_keys import SortKey
from .operators import (
    ExtendIntersect,
    ExtensionLeg,
    Filter,
    MultiExtend,
    PhysicalOperator,
    ScanVertices,
    SortedRangeFilter,
)
from .pattern import QueryEdge, QueryGraph
from .plan import QueryPlan
from .predicates import (
    CompareOp,
    Comparison,
    Constant,
    Predicate,
    PropertyRef,
    encode_constant,
)

#: Default selectivity guesses used by the cardinality model.
_RANGE_SELECTIVITY = 0.3
_GENERIC_EQ_SELECTIVITY = 0.1
_CROSS_RANGE_SELECTIVITY = 0.5


@dataclass
class _DPEntry:
    """Best-known plan prefix for one sub-query (set of bound query vertices)."""

    cost: float
    cardinality: float
    operators: Tuple[PhysicalOperator, ...]
    applied: FrozenSet[int]


class CostModel:
    """Cardinality and selectivity estimation shared by the optimizer."""

    def __init__(self, store: IndexStore, query: QueryGraph) -> None:
        self.store = store
        self.query = query
        self.graph = store.graph
        self.statistics = store.statistics

    # ------------------------------------------------------------------
    # selectivity of individual conjuncts
    # ------------------------------------------------------------------
    def conjunct_selectivity(self, comparison: Comparison) -> float:
        comparison = comparison.normalized()
        left = comparison.left
        right = comparison.right
        if isinstance(left, PropertyRef) and isinstance(right, Constant):
            if comparison.op is CompareOp.EQ:
                return self._equality_selectivity(left, right.value)
            if comparison.op in (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE):
                return self._range_selectivity(left, right.value)
            return 0.9
        if isinstance(left, PropertyRef) and isinstance(right, PropertyRef):
            if comparison.op is CompareOp.EQ:
                return self._cross_equality_selectivity(left)
            return _CROSS_RANGE_SELECTIVITY
        return 1.0

    #: Canonical variable names used when talking to the INDEX STORE.
    _CANONICAL_KINDS = {
        "bound": "vertex",
        "nbr": "vertex",
        "bound_src": "vertex",
        "bound_dst": "vertex",
        "vs": "vertex",
        "vd": "vertex",
        "vnbr": "vertex",
        "edge": "edge",
        "eadj": "edge",
        "bound_edge": "edge",
        "eb": "edge",
    }

    def _variable_kind(self, var: str) -> str:
        if var in self._CANONICAL_KINDS:
            return self._CANONICAL_KINDS[var]
        return self.query.variable_kind(var)

    def _equality_selectivity(self, ref: PropertyRef, value) -> float:
        graph = self.graph
        kind = self._variable_kind(ref.var)
        if ref.prop == "ID":
            domain = graph.num_vertices if kind == "vertex" else graph.num_edges
            return 1.0 / max(domain, 1)
        if ref.prop == "label":
            if kind == "vertex":
                code = (
                    graph.schema.vertex_label_code(value)
                    if isinstance(value, str)
                    else value
                )
                return max(self.statistics.vertex_label_selectivity(code), 1e-9)
            code = (
                graph.schema.edge_label_code(value) if isinstance(value, str) else value
            )
            return max(self.statistics.edge_label_selectivity(code), 1e-9)
        schema = graph.schema
        if kind == "vertex" and schema.has_vertex_property(ref.prop):
            prop = schema.vertex_property(ref.prop)
        elif kind == "edge" and schema.has_edge_property(ref.prop):
            prop = schema.edge_property(ref.prop)
        else:
            return _GENERIC_EQ_SELECTIVITY
        if prop.is_categorical:
            return 1.0 / max(prop.num_categories, 1)
        return _GENERIC_EQ_SELECTIVITY

    def _range_selectivity(self, ref: PropertyRef, value) -> float:
        if ref.prop == "ID":
            kind = self._variable_kind(ref.var)
            domain = (
                self.graph.num_vertices if kind == "vertex" else self.graph.num_edges
            )
            if isinstance(value, (int, float)) and domain:
                return min(max(value / domain, 1e-6), 1.0)
        return _RANGE_SELECTIVITY

    def _cross_equality_selectivity(self, ref: PropertyRef) -> float:
        kind = self._variable_kind(ref.var)
        schema = self.graph.schema
        if kind == "vertex" and schema.has_vertex_property(ref.prop):
            prop = schema.vertex_property(ref.prop)
            if prop.is_categorical:
                return 1.0 / max(prop.num_categories, 1)
        if kind == "edge" and schema.has_edge_property(ref.prop):
            prop = schema.edge_property(ref.prop)
            if prop.is_categorical:
                return 1.0 / max(prop.num_categories, 1)
        if ref.prop == "ID":
            return 1.0 / max(self.graph.num_vertices, 1)
        return _GENERIC_EQ_SELECTIVITY

    def predicate_selectivity(self, comparisons: Sequence[Comparison]) -> float:
        selectivity = 1.0
        for comparison in comparisons:
            selectivity *= self.conjunct_selectivity(comparison)
        return selectivity

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan_cardinality(self, vertex_var: str, conjuncts: Sequence[Comparison]) -> float:
        label = self.query.vertex(vertex_var).label
        if label is None:
            base = float(self.graph.num_vertices)
        else:
            base = float(
                self.statistics.vertices_with_label(
                    self.graph.schema.vertex_label_code(label)
                )
            )
        return max(base * self.predicate_selectivity(conjuncts), 1.0)


class Optimizer:
    """Produces a :class:`QueryPlan` for a query graph using the INDEX STORE."""

    def __init__(self, store: IndexStore) -> None:
        self.store = store
        self.graph = store.graph

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(self, query: QueryGraph) -> QueryPlan:
        if query.num_vertices == 0:
            raise PlanningError("cannot plan a query without query vertices")
        if not query.is_connected():
            raise PlanningError("only connected query patterns are supported")

        self._query = query
        self._cost_model = CostModel(self.store, query)
        self._conjuncts: List[Comparison] = query.full_predicate().conjuncts()
        self._tracked_edges = query.tracked_edges()

        table: Dict[FrozenSet[str], _DPEntry] = {}
        for vertex in query.vertex_names:
            entry = self._scan_entry(vertex)
            key = frozenset({vertex})
            if key not in table or entry.cost < table[key].cost:
                table[key] = entry

        all_vertices = frozenset(query.vertex_names)
        # Enumerate sub-queries in order of increasing size.
        for size in range(1, query.num_vertices):
            states = [s for s in list(table) if len(s) == size]
            for state in states:
                entry = table[state]
                for new_state, new_entry in self._extensions(state, entry):
                    existing = table.get(new_state)
                    if existing is None or new_entry.cost < existing.cost:
                        table[new_state] = new_entry

        if all_vertices not in table:
            raise PlanningError(
                f"optimizer could not cover all query vertices of {query.name!r}"
            )
        best = table[all_vertices]
        operators = list(best.operators)

        # Final safety filter for any conjunct not applied along the way.
        remaining = [
            comparison
            for position, comparison in enumerate(self._conjuncts)
            if position not in best.applied
        ]
        if remaining:
            operators.append(Filter(Predicate(remaining)))
        plan = QueryPlan(
            query=query,
            operators=operators,
            estimated_cost=best.cost,
            estimated_cardinality=best.cardinality,
        )
        # Precompute the sink capability: only plans whose terminal suffix
        # factorizes opt in to aggregate pushdown (PlanRunner.count), and
        # planning time is where the analysis belongs — executors then read
        # the cached verdict without re-walking the operator pipeline.
        plan.factorized_suffix_start()
        return plan

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def _conjuncts_within(
        self, variables: Set[str], exclude: FrozenSet[int]
    ) -> List[int]:
        positions = []
        for position, comparison in enumerate(self._conjuncts):
            if position in exclude:
                continue
            if comparison.variables() <= variables:
                positions.append(position)
        return positions

    def _scan_entry(self, vertex: str) -> _DPEntry:
        label = self._query.vertex(vertex).label
        applied: Set[int] = set()
        scan_conjuncts: List[Comparison] = []
        for position in self._conjuncts_within({vertex}, frozenset()):
            comparison = self._conjuncts[position]
            if (
                comparison.normalized().op is CompareOp.EQ
                and isinstance(comparison.normalized().left, PropertyRef)
                and comparison.normalized().left.prop == "label"
            ):
                # The scan's label argument covers the label conjunct.
                applied.add(position)
                continue
            scan_conjuncts.append(comparison)
            applied.add(position)
        cardinality = self._cost_model.scan_cardinality(vertex, scan_conjuncts)
        scan = ScanVertices(var=vertex, label=label, predicate=Predicate(scan_conjuncts))
        return _DPEntry(
            cost=0.0,
            cardinality=cardinality,
            operators=(scan,),
            applied=frozenset(applied),
        )

    # ------------------------------------------------------------------
    # extensions
    # ------------------------------------------------------------------
    def _extensions(self, state: FrozenSet[str], entry: _DPEntry):
        """Yield (new_state, new_entry) pairs reachable from ``state``."""
        for result in self._extend_intersect_candidates(state, entry):
            yield result
        for result in self._multi_extend_candidates(state, entry):
            yield result

    # -- EXTEND/INTERSECT -------------------------------------------------
    def _extend_intersect_candidates(self, state: FrozenSet[str], entry: _DPEntry):
        query = self._query
        for new_vertex in query.vertex_names:
            if new_vertex in state:
                continue
            connecting = query.edges_between(set(state), new_vertex)
            if not connecting:
                continue
            built = self._build_extension(state, entry, new_vertex, connecting)
            if built is None:
                continue
            yield built

    def _build_extension(
        self,
        state: FrozenSet[str],
        entry: _DPEntry,
        new_vertex: str,
        connecting: List[QueryEdge],
    ) -> Optional[Tuple[FrozenSet[str], _DPEntry]]:
        applied: Set[int] = set(entry.applied)
        legs: List[ExtensionLeg] = []
        total_list_size = 0.0
        cardinality_factor = 1.0

        for query_edge in connecting:
            leg, leg_applied, leg_size, leg_card = self._build_leg(
                state, new_vertex, query_edge, applied
            )
            if leg is None:
                return None
            legs.append(leg)
            applied |= leg_applied
            total_list_size += leg_size
            cardinality_factor *= leg_card

        # Conjuncts that become evaluable once the new vertex (and its edges)
        # are bound but were not pushed into a leg.
        bound_after = set(state) | {new_vertex}
        bound_after |= {
            edge.name
            for edge in self._query.edges.values()
            if edge.src in bound_after and edge.dst in bound_after and edge.name in self._tracked_edges
        }
        post_positions = self._conjuncts_within(bound_after, frozenset(applied))
        post_conjuncts = [self._conjuncts[p] for p in post_positions]
        applied |= set(post_positions)

        intersection_discount = float(self.graph.num_vertices) ** (len(legs) - 1)
        new_cardinality = max(
            entry.cardinality
            * cardinality_factor
            / max(intersection_discount, 1.0)
            * self._cost_model.predicate_selectivity(post_conjuncts),
            1e-3,
        )
        cost = entry.cost + entry.cardinality * total_list_size
        operator = ExtendIntersect(
            target_var=new_vertex,
            legs=legs,
            post_predicate=Predicate(post_conjuncts),
        )
        new_entry = _DPEntry(
            cost=cost,
            cardinality=new_cardinality,
            operators=entry.operators + (operator,),
            applied=frozenset(applied),
        )
        return frozenset(set(state) | {new_vertex}), new_entry

    def _build_leg(
        self,
        state: FrozenSet[str],
        new_vertex: str,
        query_edge: QueryEdge,
        already_applied: Set[int],
        required_sort: Optional[SortKey] = None,
    ) -> Tuple[Optional[ExtensionLeg], Set[int], float, float]:
        """Build the best access-path leg matching ``query_edge``.

        ``required_sort`` restricts the candidates to access paths whose most
        granular lists are sorted by the given key (needed by MULTI-EXTEND).

        Returns (leg, applied conjunct positions, estimated list size accessed,
        estimated per-input-row output factor).
        """
        query = self._query
        bound_vertex = query_edge.other_endpoint(new_vertex)
        direction = (
            Direction.FORWARD if query_edge.src == bound_vertex else Direction.BACKWARD
        )

        local_vars = {bound_vertex, query_edge.name, new_vertex}
        local_positions = self._conjuncts_within(local_vars, frozenset(already_applied))
        local_conjuncts = [self._conjuncts[p] for p in local_positions]
        rename = {bound_vertex: "bound", query_edge.name: "edge", new_vertex: "nbr"}
        canonical = Predicate(c.renamed(rename) for c in local_conjuncts)

        candidates: List[Tuple[AccessPath, Dict[str, str], str, List[int]]] = []
        for path in self.store.find_vertex_access_paths(direction, canonical):
            candidates.append(
                (path, {"bound": bound_vertex, "edge": query_edge.name, "nbr": new_vertex},
                 bound_vertex, local_positions)
            )

        # Edge-partitioned alternatives: the extension shares its bound vertex
        # with an already-matched, tracked query edge.
        for prev_edge in query.edges.values():
            if prev_edge.name == query_edge.name:
                continue
            if prev_edge.name not in self._tracked_edges:
                continue
            if prev_edge.src not in state or prev_edge.dst not in state:
                continue
            if not prev_edge.touches(bound_vertex):
                continue
            adjacency = self._adjacency_type(bound_vertex, prev_edge, query_edge)
            cross_vars = {
                bound_vertex,
                query_edge.name,
                new_vertex,
                prev_edge.name,
                prev_edge.src,
                prev_edge.dst,
            }
            cross_positions = self._conjuncts_within(
                cross_vars, frozenset(already_applied)
            )
            cross_conjuncts = [self._conjuncts[p] for p in cross_positions]
            cross_rename = {
                prev_edge.name: "bound_edge",
                query_edge.name: "edge",
                new_vertex: "nbr",
                prev_edge.src: "bound_src",
                prev_edge.dst: "bound_dst",
            }
            cross_canonical = Predicate(c.renamed(cross_rename) for c in cross_conjuncts)
            inverse = {v: k for k, v in cross_rename.items()}
            for path in self.store.find_edge_access_paths(adjacency, cross_canonical):
                candidates.append((path, inverse, prev_edge.name, cross_positions))

        if required_sort is not None:
            candidates = [
                candidate
                for candidate in candidates
                if candidate[0].tuned_for(required_sort)
            ]
        if not candidates:
            return None, set(), 0.0, 1.0

        # Rank candidates by (estimated list size, whether a residual conjunct
        # can be answered by binary search on the list's sort order, number of
        # residual conjuncts left).  The second component is what makes the
        # optimizer prefer e.g. a time-sorted secondary index over the primary
        # index when both address lists of the same size (Table III).
        best = None
        for path, inverse, bound_var, positions in candidates:
            residual_sel = self._cost_model.predicate_selectivity(list(path.residual))
            candidate_residual = Predicate(c.renamed(inverse) for c in path.residual)
            sorted_filter, remaining = self._extract_sorted_filter(
                path, candidate_residual, query_edge.name, new_vertex
            )
            key = (
                path.estimated_list_size,
                0 if sorted_filter is not None else 1,
                len(remaining.conjuncts()),
            )
            if best is None or key < best[0]:
                best = (
                    key,
                    path,
                    inverse,
                    bound_var,
                    positions,
                    residual_sel,
                    sorted_filter,
                    remaining,
                )

        _, path, inverse, bound_var, positions, residual_sel, sorted_filter, residual = best
        leg = ExtensionLeg(
            access_path=path,
            bound_var=bound_var,
            target_var=new_vertex,
            edge_var=query_edge.name,
            track_edge=query_edge.name in self._tracked_edges,
            sorted_filter=sorted_filter,
            residual=residual,
            presorted_by_nbr=path.sorted_by_neighbour_id,
        )
        applied = set(positions)
        leg_cardinality = path.estimated_list_size * residual_sel
        return leg, applied, path.estimated_list_size, max(leg_cardinality, 1e-3)

    def _adjacency_type(
        self, shared_vertex: str, bound_edge: QueryEdge, new_edge: QueryEdge
    ) -> EdgeAdjacencyType:
        """2-path shape of (bound edge, new edge) around their shared vertex."""
        bound_at_dst = bound_edge.dst == shared_vertex
        new_is_forward = new_edge.src == shared_vertex
        if bound_at_dst and new_is_forward:
            return EdgeAdjacencyType.DST_FW
        if bound_at_dst and not new_is_forward:
            return EdgeAdjacencyType.DST_BW
        if not bound_at_dst and not new_is_forward:
            return EdgeAdjacencyType.SRC_FW
        return EdgeAdjacencyType.SRC_BW

    def _extract_sorted_filter(
        self,
        path: AccessPath,
        residual: Predicate,
        edge_var: str,
        nbr_var: str,
    ) -> Tuple[Optional[SortedRangeFilter], Predicate]:
        """Turn one residual conjunct into a binary-search range filter.

        Possible when the access path's major sort key is the property the
        conjunct compares against a constant, and only when the path addresses
        a most-granular list (a coarser prefix is not globally sorted).
        """
        if not path.sort_keys or not path.covers_all_levels:
            return None, residual
        sort_key = path.sort_keys[0]
        if sort_key.is_neighbour_id:
            target_var, prop = nbr_var, "ID"
        elif sort_key.target == "edge":
            target_var, prop = edge_var, sort_key.prop
        else:
            target_var, prop = nbr_var, sort_key.prop

        for comparison in residual.conjuncts():
            normalized = comparison.normalized()
            if (
                isinstance(normalized.left, PropertyRef)
                and isinstance(normalized.right, Constant)
                and normalized.left.var == target_var
                and normalized.left.prop == prop
                and normalized.op
                in (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE, CompareOp.EQ)
            ):
                kind = self._query.variable_kind(target_var)
                value = normalized.right.value
                if isinstance(value, str):
                    value = encode_constant(self.graph, normalized.left, kind, value)
                sorted_filter = SortedRangeFilter(
                    sort_key=sort_key, op=normalized.op, value=float(value)
                )
                return sorted_filter, residual.without([comparison])
        return None, residual

    # -- MULTI-EXTEND -----------------------------------------------------
    def _multi_extend_candidates(self, state: FrozenSet[str], entry: _DPEntry):
        """Extensions that add a group of vertices joined by property equality."""
        query = self._query
        unbound = [v for v in query.vertex_names if v not in state]
        if len(unbound) < 2:
            return

        # Collect cross-variable equality conjuncts on a common vertex property
        # among unbound vertices.
        groups: Dict[str, List[Tuple[str, str]]] = {}
        for comparison in self._conjuncts:
            normalized = comparison.normalized()
            if normalized.op is not CompareOp.EQ or normalized.offset:
                continue
            if not (
                isinstance(normalized.left, PropertyRef)
                and isinstance(normalized.right, PropertyRef)
            ):
                continue
            left, right = normalized.left, normalized.right
            if left.prop != right.prop:
                continue
            if left.var in unbound and right.var in unbound and left.var != right.var:
                if (
                    query.variable_kind(left.var) == "vertex"
                    and query.variable_kind(right.var) == "vertex"
                ):
                    groups.setdefault(left.prop, []).append((left.var, right.var))

        for prop, pairs in groups.items():
            for component in self._equality_components(pairs):
                result = self._build_multi_extend(state, entry, component, prop)
                if result is not None:
                    yield result

    def _equality_components(self, pairs: List[Tuple[str, str]]) -> List[Set[str]]:
        """Connected components of the equality graph over unbound vertices."""
        adjacency: Dict[str, Set[str]] = {}
        for a, b in pairs:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        components: List[Set[str]] = []
        seen: Set[str] = set()
        for start in adjacency:
            if start in seen:
                continue
            component = set()
            frontier = [start]
            while frontier:
                node = frontier.pop()
                if node in component:
                    continue
                component.add(node)
                frontier.extend(adjacency[node] - component)
            seen |= component
            if len(component) >= 2:
                components.append(component)
        return components

    def _build_multi_extend(
        self,
        state: FrozenSet[str],
        entry: _DPEntry,
        group: Set[str],
        prop: str,
    ) -> Optional[Tuple[FrozenSet[str], _DPEntry]]:
        query = self._query
        equality_key = SortKey.nbr_property(prop)

        # No query edges may run between group members (they would be left
        # unmatched by this operator).
        for edge in query.edges.values():
            if edge.src in group and edge.dst in group:
                return None

        applied: Set[int] = set(entry.applied)
        legs: List[ExtensionLeg] = []
        total_list_size = 0.0
        cardinality_product = 1.0

        for member in sorted(group):
            connecting = query.edges_between(set(state), member)
            if len(connecting) != 1:
                return None
            # MULTI-EXTEND joins on the sort property; only access paths whose
            # lists are sorted by it are considered, so the operator is only
            # generated when the indexes are tuned for it.
            leg, leg_applied, leg_size, leg_card = self._build_leg(
                state, member, connecting[0], applied, required_sort=equality_key
            )
            if leg is None:
                return None
            legs.append(leg)
            applied |= leg_applied
            total_list_size += leg_size
            cardinality_product *= leg_card

        # Mark the equality conjuncts inside the group as applied (the join
        # guarantees them).
        group_positions = []
        for position, comparison in enumerate(self._conjuncts):
            if position in applied:
                continue
            normalized = comparison.normalized()
            if (
                normalized.op is CompareOp.EQ
                and isinstance(normalized.left, PropertyRef)
                and isinstance(normalized.right, PropertyRef)
                and normalized.left.prop == prop
                and normalized.right.prop == prop
                and normalized.left.var in group
                and normalized.right.var in group
            ):
                group_positions.append(position)
        applied |= set(group_positions)

        bound_after = set(state) | group
        bound_after |= {
            edge.name
            for edge in query.edges.values()
            if edge.src in bound_after
            and edge.dst in bound_after
            and edge.name in self._tracked_edges
        }
        post_positions = self._conjuncts_within(bound_after, frozenset(applied))
        post_conjuncts = [self._conjuncts[p] for p in post_positions]
        applied |= set(post_positions)

        domain = self._equality_domain(prop)
        new_cardinality = max(
            entry.cardinality
            * cardinality_product
            / (domain ** (len(legs) - 1))
            * self._cost_model.predicate_selectivity(post_conjuncts),
            1e-3,
        )
        cost = entry.cost + entry.cardinality * total_list_size
        operator = MultiExtend(
            legs=legs,
            equality_key=equality_key,
            post_predicate=Predicate(post_conjuncts),
        )
        new_entry = _DPEntry(
            cost=cost,
            cardinality=new_cardinality,
            operators=entry.operators + (operator,),
            applied=frozenset(applied),
        )
        return frozenset(set(state) | group), new_entry

    def _equality_domain(self, prop: str) -> float:
        schema = self.graph.schema
        if schema.has_vertex_property(prop):
            prop_def = schema.vertex_property(prop)
            if prop_def.is_categorical:
                return float(max(prop_def.num_categories, 2))
        return 1.0 / _GENERIC_EQ_SELECTIVITY
