"""Morsel-dispatch backends: serial, thread-pool, and process-pool execution.

The morsel dispatcher (:class:`~repro.query.executor.MorselExecutor`) owns
*what* runs — the per-range operator pipeline — and *in which order* results
merge (ascending range order, the determinism contract).  A
:class:`MorselBackend` owns only *where* each morsel body runs:

* :class:`SerialBackend` — runs each morsel inline on the caller's thread.
  Exercises the full morsel/merge bookkeeping without any concurrency; the
  cheapest way to debug a morsel-boundary issue.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` (the PR 4 behaviour).
  The numpy kernels release the GIL, so threads overlap on multi-core
  machines; the Python orchestration between kernels still serializes on
  GIL builds.
* :class:`ProcessBackend` — a ``multiprocessing`` pool.  Sidesteps the GIL
  entirely: the Python orchestration of different morsels runs in different
  interpreters.  The parent ships one pickled :class:`WorkerPayload` (plan +
  graph + batch size) per worker through the pool initializer — *worker
  rehydration* — and afterwards only tiny :class:`MorselTaskSpec` messages
  (plan id + vertex range + pinned store generation) cross the pipe per
  morsel.  Results travel back *columnar*: the raw numpy column buffers of
  each batch plus a stats tuple, never per-row match dicts, so transport
  cost is one buffer copy per column.

Every backend yields byte-identical results: each runs the same
:func:`run_morsel` body over the same ranges, and the dispatcher merges
outputs in ascending range order regardless of completion order.  The
differential suite (``tests/test_backend_equivalence.py``) pins all three
backends against the serial executor.

Generation pinning
------------------

A plan produced by ``Database.plan`` is pinned to the index-store generation
it was planned against (``QueryPlan.store_snapshot``).  Pickling the plan for
a worker carries that snapshot along — the worker's copy of the plan
references the worker's copy of that generation's graph and indexes, shared
structurally inside the one payload pickle — so a morsel executes against
the pinned generation even if a maintenance flush installs a newer one in
the parent between planning and execution.  The task spec carries the pinned
generation and the worker refuses mismatched specs, turning any routing bug
into a loud error instead of a silently incoherent read.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..errors import ExecutionError
from ..graph.graph import PropertyGraph
from .binding import MatchBatch
from .factorized import FactorizedBatch, FactorizedSegment
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    Filter,
    MultiExtend,
    ScanVertices,
)
from .plan import QueryPlan


# ----------------------------------------------------------------------
# the morsel body (shared by every backend)
# ----------------------------------------------------------------------
def run_pipeline(
    plan: QueryPlan, context: ExecutionContext, scan: Optional[ScanVertices] = None
) -> Iterator[MatchBatch]:
    """Drive the plan's operator pipeline under ``context``.

    ``scan`` optionally replaces the plan's leading scan operator (the morsel
    dispatcher substitutes a range-restricted clone); the remaining operators
    are shared as-is — they are stateless between calls.
    """
    lead = scan if scan is not None else plan.operators[0]
    assert isinstance(lead, ScanVertices)
    stream: Iterator[MatchBatch] = lead.execute(context)
    for operator in plan.operators[1:]:
        if isinstance(operator, (ExtendIntersect, MultiExtend, Filter)):
            stream = operator.execute(stream, context)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported operator {type(operator).__name__}")
    for batch in stream:
        context.stats.output_rows += len(batch)
        yield batch


def run_pipeline_factorized(
    plan: QueryPlan, context: ExecutionContext, scan: Optional[ScanVertices] = None
) -> Iterator[FactorizedBatch]:
    """Drive the plan's flat prefix, then emit the terminal suffix unexpanded.

    The operators before ``plan.factorized_suffix_start()`` run exactly as
    in :func:`run_pipeline`; each prefix batch is then handed to every
    suffix operator's ``extend_factorized`` once, producing one unexpanded
    :class:`~repro.query.factorized.FactorizedSegment` per operator instead
    of the combination cross-product.  ``output_rows`` still advances by the
    represented match count, so the counter means the same thing on both
    paths; ``combos_avoided``/``segments_emitted`` record what the flat path
    would have materialized.
    """
    suffix_start = plan.factorized_suffix_start()
    if suffix_start >= len(plan.operators):
        raise ExecutionError(
            f"plan for {plan.query.name!r} has no factorizable suffix; "
            "use the flat pipeline"
        )
    lead = scan if scan is not None else plan.operators[0]
    assert isinstance(lead, ScanVertices)
    stream: Iterator[MatchBatch] = lead.execute(context)
    for operator in plan.operators[1:suffix_start]:
        stream = operator.execute(stream, context)
    suffix = plan.operators[suffix_start:]
    for batch in stream:
        if len(batch) == 0:
            continue
        segments = tuple(
            operator.extend_factorized(batch, context) for operator in suffix
        )
        factorized = FactorizedBatch(prefix=batch, segments=segments)
        context.stats.output_rows += factorized.match_count()
        context.stats.combos_avoided += factorized.flat_rows_avoided()
        context.stats.segments_emitted += len(segments)
        yield factorized


def run_morsel(
    plan: QueryPlan,
    graph: PropertyGraph,
    batch_size: int,
    start: int,
    stop: int,
    factorized: bool = False,
) -> Tuple[List[object], ExecutionStats]:
    """Run the full pipeline over one vertex-range morsel.

    ``batch_size`` is the *in-flight* batch size (the dispatcher passes the
    coalesced size); the dispatcher re-splits the returned batches to its
    emission size.  With ``factorized=True`` the morsel body runs
    :func:`run_pipeline_factorized` instead and returns
    :class:`~repro.query.factorized.FactorizedBatch` objects (never
    re-split: their prefixes are already at most the in-flight size).
    """
    stats = ExecutionStats()
    context = ExecutionContext(
        graph=graph, query=plan.query, batch_size=batch_size, stats=stats
    )
    scan = replace(plan.operators[0], vertex_range=(start, stop))
    pipeline = run_pipeline_factorized if factorized else run_pipeline
    batches = list(pipeline(plan, context, scan=scan))
    return batches, stats


# ----------------------------------------------------------------------
# columnar result transport
# ----------------------------------------------------------------------
#: One encoded batch: the column names and the raw numpy column buffers.
EncodedBatch = Tuple[Tuple[str, ...], List[np.ndarray]]


def encode_batches(batches: Sequence[MatchBatch]) -> List[EncodedBatch]:
    """Strip batches down to raw column buffers for cross-process transport."""
    return [
        (tuple(batch.variables), [batch.column(name) for name in batch.variables])
        for batch in batches
    ]


def decode_batches(encoded: Sequence[EncodedBatch]) -> List[MatchBatch]:
    """Rebuild :class:`MatchBatch` objects from their raw column buffers."""
    return [
        MatchBatch(dict(zip(names, columns))) for names, columns in encoded
    ]


#: One encoded segment: target vars, cardinalities, and — for materialized
#: (single-leg) segments — the candidate buffers and tracked edge variable.
EncodedSegment = Tuple[
    Tuple[str, ...],
    np.ndarray,
    Optional[np.ndarray],
    Optional[str],
    Optional[np.ndarray],
]

#: One encoded factorized batch: the prefix's (names, column buffers) plus
#: the per-operator segment buffers.  This is the whole point of factorized
#: transport: workers reply with per-row cardinalities (plus the single-leg
#: candidate arrays) instead of the expanded cross-product columns, so the
#: process backend's IPC shrinks by the combination fan-out.
EncodedFactorizedBatch = Tuple[
    Tuple[str, ...], List[np.ndarray], List[EncodedSegment]
]


def encode_factorized_batches(
    batches: Sequence[FactorizedBatch],
) -> List[EncodedFactorizedBatch]:
    """Strip factorized batches to raw buffers for cross-process transport."""
    encoded = []
    for batch in batches:
        prefix = batch.prefix
        segments: List[EncodedSegment] = [
            (
                segment.target_vars,
                segment.cardinalities,
                segment.nbr_ids,
                segment.edge_var,
                segment.edge_ids,
            )
            for segment in batch.segments
        ]
        encoded.append(
            (
                tuple(prefix.variables),
                [prefix.column(name) for name in prefix.variables],
                segments,
            )
        )
    return encoded


def decode_factorized_batches(
    encoded: Sequence[EncodedFactorizedBatch],
) -> List[FactorizedBatch]:
    """Rebuild :class:`FactorizedBatch` objects from their raw buffers."""
    return [
        FactorizedBatch(
            prefix=MatchBatch(dict(zip(names, columns))),
            segments=tuple(
                FactorizedSegment(
                    target_vars=target_vars,
                    cardinalities=cardinalities,
                    nbr_ids=nbr_ids,
                    edge_var=edge_var,
                    edge_ids=edge_ids,
                )
                for target_vars, cardinalities, nbr_ids, edge_var, edge_ids in segments
            ),
        )
        for names, columns, segments in encoded
    ]


# ----------------------------------------------------------------------
# process-backend wire format
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MorselTaskSpec:
    """One morsel of work, as shipped to a process-pool worker.

    Deliberately tiny and plain (four ints/None): the heavy state — plan,
    graph, indexes — travels once per worker inside :class:`WorkerPayload`;
    afterwards each morsel costs one of these over the pipe.

    Attributes:
        plan_id: identifies the payload the task belongs to; must match the
            worker's rehydrated payload.
        generation: the index-store generation the plan is pinned to
            (``None`` for hand-built plans without a snapshot); must match
            the payload's generation — a mismatch means the parent tried to
            run a task against a worker rehydrated from a different store
            state, which would silently mix edge/vertex IDs across flush
            remappings.
        start, stop: the half-open vertex-ID range of the morsel.
    """

    plan_id: int
    generation: Optional[int]
    start: int
    stop: int


@dataclass
class WorkerPayload:
    """Everything a process-pool worker needs to execute morsel tasks.

    Pickled once in the parent and shipped through the pool initializer, so
    every worker rehydrates the same plan/graph generation exactly once.
    The plan's ``store_snapshot`` (when present) rides along inside the same
    pickle, so the plan's index references and ``graph`` stay one shared,
    internally consistent object graph on the worker side.

    ``factorized`` selects the morsel body's pipeline (and thereby the reply
    encoding): flat batches for row-producing sinks, unexpanded segment
    buffers + per-row cardinalities for aggregate sinks.
    """

    plan_id: int
    generation: Optional[int]
    plan: QueryPlan
    graph: PropertyGraph
    batch_size: int
    factorized: bool = False


#: Per-process registry of the payload the pool initializer rehydrated.
_WORKER_PAYLOAD: Optional[WorkerPayload] = None

#: How long the process backend waits for a pool worker to prove it
#: initialized before failing the query (generous: spawn starts a fresh
#: interpreter per worker; healthy fork pools answer in milliseconds).
WORKER_STARTUP_TIMEOUT_SECONDS = 30.0

#: Monotonic ids tying task specs to the payload they belong to.
_PLAN_IDS = itertools.count(1)


def _process_worker_init(payload_bytes: bytes) -> None:
    """Pool initializer: rehydrate the plan/graph payload once per worker.

    Runs ``pickle.loads`` even under the ``fork`` start method (where the
    bytes are inherited copy-on-write) so every start method exercises the
    same rehydration path and the payload's picklability is guaranteed
    everywhere, not just on spawn-only platforms.
    """
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = pickle.loads(payload_bytes)


def _process_worker_ready() -> bool:
    """Health probe: True once this worker has rehydrated its payload."""
    return _WORKER_PAYLOAD is not None


def _process_worker_run(
    spec: MorselTaskSpec,
) -> Tuple[List[object], Tuple[int, ...]]:
    """Worker body: validate the spec, run the morsel, return columnar results."""
    payload = _WORKER_PAYLOAD
    if payload is None:
        raise ExecutionError(
            "process-pool worker has no rehydrated payload; the pool was "
            "created without the backend's initializer"
        )
    if spec.plan_id != payload.plan_id or spec.generation != payload.generation:
        raise ExecutionError(
            f"morsel task spec (plan {spec.plan_id}, generation "
            f"{spec.generation}) does not match the worker's rehydrated "
            f"payload (plan {payload.plan_id}, generation "
            f"{payload.generation}); tasks and payloads from different "
            "store generations must not mix"
        )
    batches, stats = run_morsel(
        payload.plan,
        payload.graph,
        payload.batch_size,
        spec.start,
        spec.stop,
        factorized=payload.factorized,
    )
    if payload.factorized:
        return encode_factorized_batches(batches), dataclasses.astuple(stats)
    return encode_batches(batches), dataclasses.astuple(stats)


def preferred_start_method() -> str:
    """The start method the process backend uses on this platform.

    The platform's *default* start method, deliberately: where that default
    is ``fork`` (Linux), workers inherit the parent's memory copy-on-write
    and pool startup costs milliseconds.  Platforms whose default is
    ``spawn`` (Windows, macOS) keep it even though ``fork`` may be
    *offered* — CPython demoted fork there because forked children can
    crash inside the Objective-C runtime — so the backend stays safe but
    per-query pool creation is expensive (a fresh interpreter + re-import
    per worker); the benchmark harness skips the process scenarios there
    (``requires_fork`` in the baseline).
    """
    return multiprocessing.get_start_method()


def fork_available() -> bool:
    """True when process pools can be started cheaply (fork is the default)."""
    return preferred_start_method() == "fork"


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class MorselBackend:
    """Where morsel bodies run; the dispatcher owns ordering and merging.

    Lifecycle: the dispatcher calls :meth:`open` once per ``execute``, then
    interleaves :meth:`submit` (hand over one ``[start, stop)`` range,
    returning an opaque handle) and :meth:`result` (block for one handle's
    ``(batches, stats)``), and finally :meth:`close` — also on abandonment,
    so backends must tolerate ``close`` with submissions outstanding.
    Instances are single-use per ``execute`` call but may be reused
    sequentially; they hold no state between ``open`` calls.

    ``submit`` may run the morsel eagerly, lazily, or remotely — the only
    contract is that ``result(handle)`` returns exactly the output of
    :func:`run_morsel` for the submitted range.  The dispatcher retrieves
    handles in submission (= ascending range) order, which is what makes
    every backend's merged output byte-identical to the serial executor.

    ``open(..., factorized=True)`` switches the morsel bodies to the
    factorized pipeline: ``result`` then returns
    :class:`~repro.query.factorized.FactorizedBatch` objects (segment
    buffers + partial counts over the wire for the process backend) instead
    of flat batches.
    """

    #: Registry name (also the ``Database.run(backend=...)`` spelling).
    name = "abstract"

    def open(
        self, executor, plan: QueryPlan, factorized: bool = False
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def submit(self, start: int, stop: int):  # pragma: no cover
        raise NotImplementedError

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        raise NotImplementedError  # pragma: no cover

    def close(self) -> None:  # pragma: no cover
        raise NotImplementedError


class SerialBackend(MorselBackend):
    """Run every morsel inline on the caller's thread (no concurrency).

    ``submit`` just records the range; the morsel runs lazily inside
    :meth:`result`, so peak memory matches the windowed parallel backends
    instead of materializing the whole result at submission time.
    """

    name = "serial"

    def open(self, executor, plan: QueryPlan, factorized: bool = False) -> None:
        self._plan = plan
        self._graph = executor.graph
        self._batch_size = executor.batch_size * executor.coalesce
        self._factorized = factorized

    def submit(self, start: int, stop: int) -> Tuple[int, int]:
        return (start, stop)

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        start, stop = handle
        return run_morsel(
            self._plan,
            self._graph,
            self._batch_size,
            start,
            stop,
            factorized=self._factorized,
        )

    def close(self) -> None:
        self._plan = None
        self._graph = None


class ThreadBackend(MorselBackend):
    """Run morsels on a thread pool (the numpy kernels release the GIL)."""

    name = "thread"

    def open(self, executor, plan: QueryPlan, factorized: bool = False) -> None:
        self._plan = plan
        self._graph = executor.graph
        self._batch_size = executor.batch_size * executor.coalesce
        self._factorized = factorized
        self._pool = ThreadPoolExecutor(max_workers=executor.num_workers)

    def submit(self, start: int, stop: int):
        return self._pool.submit(
            run_morsel,
            self._plan,
            self._graph,
            self._batch_size,
            start,
            stop,
            factorized=self._factorized,
        )

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        return handle.result()

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class ProcessBackend(MorselBackend):
    """Run morsels on a ``multiprocessing`` pool with worker rehydration.

    ``open`` pickles one :class:`WorkerPayload` and hands it to every worker
    through the pool initializer; ``submit`` ships a :class:`MorselTaskSpec`
    per morsel; ``result`` decodes the columnar reply back into
    :class:`MatchBatch` objects and an :class:`ExecutionStats`.
    """

    name = "process"

    @staticmethod
    def _start_method() -> str:
        """Start method for this pool, adjusted for parent-side threads.

        ``fork``-ing a multi-threaded parent is unsafe: a lock held by a
        sibling thread at the moment of the fork (allocator arenas, another
        query's pool machinery) stays locked forever in the child, which
        then deadlocks inside the worker initializer.  When other threads
        are alive — e.g. queries on the thread backend running concurrently
        — fall back to ``forkserver``, which forks from a clean
        single-threaded server process instead of this one.  The fallback
        carries the standard spawn-family contract (the Linux *default*
        from Python 3.14): the parent's ``__main__`` must be import-safe —
        guard top-level pool-creating code with ``if __name__ ==
        "__main__"`` — and multiprocessing raises its usual bootstrapping
        error (or :func:`open`'s startup health check fires) when it is not.
        """
        method = preferred_start_method()
        if method == "fork" and threading.active_count() > 1:
            if "forkserver" in multiprocessing.get_all_start_methods():
                return "forkserver"
        return method

    def open(self, executor, plan: QueryPlan, factorized: bool = False) -> None:
        plan_id = next(_PLAN_IDS)
        payload = WorkerPayload(
            plan_id=plan_id,
            generation=plan.pinned_generation,
            plan=plan,
            graph=executor.graph,
            batch_size=executor.batch_size * executor.coalesce,
            factorized=factorized,
        )
        self._plan_id = plan_id
        self._generation = payload.generation
        self._factorized = factorized
        method = self._start_method()
        context = multiprocessing.get_context(method)
        self._pool = context.Pool(
            processes=executor.num_workers,
            initializer=_process_worker_init,
            initargs=(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),),
        )
        # Prove one worker came up before accepting morsels.  A pool whose
        # workers die during startup (e.g. forkserver/spawn re-importing a
        # parent ``__main__`` that is not importable — a REPL or stdin
        # script) respawns them forever while queued tasks wait — a silent
        # livelock; this converts it into a loud, actionable error.
        probe = self._pool.apply_async(_process_worker_ready)
        try:
            ready = probe.get(timeout=WORKER_STARTUP_TIMEOUT_SECONDS)
        except multiprocessing.TimeoutError:
            self.close()
            raise ExecutionError(
                f"process-backend workers failed to start within "
                f"{WORKER_STARTUP_TIMEOUT_SECONDS:.0f}s (start method "
                f"{method!r}).  Under the forkserver/spawn start methods "
                "the parent's __main__ must be importable — run from a "
                "script or module, not a REPL/stdin program, or use the "
                "thread backend"
            ) from None
        except BaseException:
            # KeyboardInterrupt (or any other failure) while waiting must
            # not orphan the just-spawned workers: the dispatcher only
            # close()s backends whose open() returned.
            self.close()
            raise
        if not ready:  # pragma: no cover - defensive
            self.close()
            raise ExecutionError(
                "process-backend worker started without a rehydrated payload"
            )

    def submit(self, start: int, stop: int):
        spec = MorselTaskSpec(
            plan_id=self._plan_id,
            generation=self._generation,
            start=start,
            stop=stop,
        )
        return self._pool.apply_async(_process_worker_run, (spec,))

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        encoded, stats_tuple = handle.get()
        decode = decode_factorized_batches if self._factorized else decode_batches
        return decode(encoded), ExecutionStats(*stats_tuple)

    def close(self) -> None:
        # All retrieved results are already materialized in the parent, so
        # terminate (rather than drain) any submissions an abandoned
        # iteration left behind.
        self._pool.terminate()
        self._pool.join()


#: Registry of backend names accepted by ``MorselExecutor``/``Database``.
BACKENDS: Dict[str, Type[MorselBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, ThreadBackend, ProcessBackend)
}

#: Backend used when neither the call, the instance, nor the environment
#: picks one.
DEFAULT_BACKEND = ThreadBackend.name


def resolve_backend(backend) -> MorselBackend:
    """A ready-to-open backend instance from a name or an instance."""
    if isinstance(backend, MorselBackend):
        return backend
    try:
        return BACKENDS[backend]()
    except (KeyError, TypeError):
        raise ExecutionError(
            f"unknown morsel backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
