"""Morsel-dispatch backends: serial, thread-pool, and process-pool execution.

The morsel dispatcher (:class:`~repro.query.executor.MorselExecutor`) owns
*what* runs — the per-range operator pipeline — and *in which order* results
merge (ascending range order, the determinism contract).  A
:class:`MorselBackend` owns only *where* each morsel body runs:

* :class:`SerialBackend` — runs each morsel inline on the caller's thread.
  Exercises the full morsel/merge bookkeeping without any concurrency; the
  cheapest way to debug a morsel-boundary issue.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` (the PR 4 behaviour).
  The numpy kernels release the GIL, so threads overlap on multi-core
  machines; the Python orchestration between kernels still serializes on
  GIL builds.
* :class:`ProcessBackend` — a ``multiprocessing`` pool.  Sidesteps the GIL
  entirely: the Python orchestration of different morsels runs in different
  interpreters.  The parent ships one pickled :class:`WorkerPayload` (plan +
  graph + batch size) per worker through the pool initializer — *worker
  rehydration* — and afterwards only tiny :class:`MorselTaskSpec` messages
  (plan id + vertex range + pinned store generation) cross the pipe per
  morsel.  Results travel back *columnar*: the raw numpy column buffers of
  each batch plus a stats tuple, never per-row match dicts, so transport
  cost is one buffer copy per column.

Every backend yields byte-identical results: each runs the same
:func:`run_morsel` body over the same ranges, and the dispatcher merges
outputs in ascending range order regardless of completion order.  The
differential suite (``tests/test_backend_equivalence.py``) pins all three
backends against the serial executor.

Generation pinning
------------------

A plan produced by ``Database.plan`` is pinned to the index-store generation
it was planned against (``QueryPlan.store_snapshot``).  Pickling the plan for
a worker carries that snapshot along — the worker's copy of the plan
references the worker's copy of that generation's graph and indexes, shared
structurally inside the one payload pickle — so a morsel executes against
the pinned generation even if a maintenance flush installs a newer one in
the parent between planning and execution.  The task spec carries the pinned
generation and the worker refuses mismatched specs, turning any routing bug
into a loud error instead of a silently incoherent read.

Fault tolerance
---------------

Backends are the detection layer of the query runtime's crash recovery
(the *reaction* — retry, then serial fallback — lives in the dispatcher,
:meth:`~repro.query.executor.MorselExecutor._dispatch`):

* ``result()`` raises the recoverable :class:`~repro.errors.WorkerCrashError`
  when a morsel's output is lost or untrustworthy.  For the process backend
  that means: a pool worker died while the morsel was in flight (watched via
  the pool's worker processes; the reply would otherwise never arrive and
  ``get()`` would block forever), no reply within the per-morsel timeout
  (``REPRO_MORSEL_TIMEOUT``), or a reply whose checksum does not match its
  payload.  In-process backends convert the injected-fault signals of
  :mod:`repro.query.faults` the same way.
* Process replies travel in a *checksummed envelope*
  ``(encoded, stats_tuple, checksum)`` — :func:`reply_checksum` covers the
  raw column bytes, the structure, and the stats — so a corrupted transport
  is detected in the parent instead of silently merging wrong rows.
* Blocking waits are *polled* against the query's
  :class:`~repro.query.runtime.QueryContext`, so a deadline or cancellation
  fires within one poll interval even while a worker is stuck.
* Worker exceptions are **not** recoverable: a deterministic bug re-raised
  from ``result()`` propagates (retrying it cannot succeed, and the serial
  fallback would only reproduce it); the dispatcher still closes the
  backend, so no pool outlives the error.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import os
import pickle
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..errors import ExecutionError, WorkerCrashError
from ..graph.graph import PropertyGraph
from .binding import MatchBatch
from .factorized import FactorizedBatch, FactorizedSegment
from .faults import (
    FAULT_KILL_EXIT_CODE,
    FaultPlan,
    InjectedReplyCorruption,
    InjectedWorkerCrash,
)
from .runtime import QueryContext
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    Filter,
    MultiExtend,
    ScanVertices,
)
from .pipeline import run_pipeline, run_pipeline_factorized
from .plan import QueryPlan


# ----------------------------------------------------------------------
# the morsel body (shared by every backend)
# ----------------------------------------------------------------------
def run_morsel(
    plan: QueryPlan,
    graph: PropertyGraph,
    batch_size: int,
    start: int,
    stop: int,
    factorized: bool = False,
    runtime: Optional[QueryContext] = None,
    clock=None,
) -> Tuple[List[object], ExecutionStats]:
    """Run the full compiled pipeline over one vertex-range morsel.

    ``batch_size`` is the *in-flight* batch size (the dispatcher passes the
    coalesced size); the dispatcher re-splits the returned batches to its
    emission size.  With ``factorized=True`` the morsel body runs
    :func:`~repro.query.pipeline.run_pipeline_factorized` instead and
    returns :class:`~repro.query.factorized.FactorizedBatch` objects (never
    re-split: their prefixes are already at most the in-flight size).
    ``runtime`` (in-process backends only — it cannot cross a process
    boundary) enables cooperative per-batch deadline/cancellation checks;
    ``clock`` (in-process only, for the same reason) overrides the
    per-stage timing clock, so tests can drive morsel bodies with a fake
    clock.
    """
    stats = ExecutionStats()
    context = ExecutionContext(
        graph=graph,
        query=plan.query,
        batch_size=batch_size,
        stats=stats,
        runtime=runtime,
    )
    if clock is not None:
        context.clock = clock
    scan = replace(plan.operators[0], vertex_range=(start, stop))
    pipeline = run_pipeline_factorized if factorized else run_pipeline
    batches = list(pipeline(plan, context, scan=scan))
    return batches, stats


def run_morsel_faulted(
    plan: QueryPlan,
    graph: PropertyGraph,
    batch_size: int,
    start: int,
    stop: int,
    factorized: bool = False,
    runtime: Optional[QueryContext] = None,
    faults: Optional[FaultPlan] = None,
    index: int = 0,
    attempt: int = 0,
    clock=None,
) -> Tuple[List[object], ExecutionStats]:
    """:func:`run_morsel` with the in-process fault-injection hooks applied.

    ``kill``/``error``/``delay`` faults fire before the body (a crash or a
    stuck worker never produces partial output); ``corrupt`` fires after it
    (the body's work is done, its reply is untrustworthy).  The injected
    signals escape as their raw harness exceptions — the backends convert
    them into :class:`~repro.errors.WorkerCrashError` exactly where a real
    failure of the same kind would surface.
    """
    if faults is not None:
        faults.apply_before_morsel(index, attempt)
    result = run_morsel(
        plan,
        graph,
        batch_size,
        start,
        stop,
        factorized=factorized,
        runtime=runtime,
        clock=clock,
    )
    if faults is not None and faults.corrupts(index, attempt):
        raise InjectedReplyCorruption(
            f"injected reply corruption on morsel {index} (attempt {attempt})"
        )
    return result


# ----------------------------------------------------------------------
# columnar result transport
# ----------------------------------------------------------------------
#: One encoded batch: the column names and the raw numpy column buffers.
EncodedBatch = Tuple[Tuple[str, ...], List[np.ndarray]]


def encode_batches(batches: Sequence[MatchBatch]) -> List[EncodedBatch]:
    """Strip batches down to raw column buffers for cross-process transport."""
    return [
        (tuple(batch.variables), [batch.column(name) for name in batch.variables])
        for batch in batches
    ]


def decode_batches(encoded: Sequence[EncodedBatch]) -> List[MatchBatch]:
    """Rebuild :class:`MatchBatch` objects from their raw column buffers."""
    return [
        MatchBatch(dict(zip(names, columns))) for names, columns in encoded
    ]


#: One encoded segment: target vars, cardinalities, and — for materialized
#: (single-leg) segments — the candidate buffers and tracked edge variable.
EncodedSegment = Tuple[
    Tuple[str, ...],
    np.ndarray,
    Optional[np.ndarray],
    Optional[str],
    Optional[np.ndarray],
]

#: One encoded factorized batch: the prefix's (names, column buffers) plus
#: the per-operator segment buffers.  This is the whole point of factorized
#: transport: workers reply with per-row cardinalities (plus the single-leg
#: candidate arrays) instead of the expanded cross-product columns, so the
#: process backend's IPC shrinks by the combination fan-out.
EncodedFactorizedBatch = Tuple[
    Tuple[str, ...], List[np.ndarray], List[EncodedSegment]
]


def encode_factorized_batches(
    batches: Sequence[FactorizedBatch],
) -> List[EncodedFactorizedBatch]:
    """Strip factorized batches to raw buffers for cross-process transport."""
    encoded = []
    for batch in batches:
        prefix = batch.prefix
        segments: List[EncodedSegment] = [
            (
                segment.target_vars,
                segment.cardinalities,
                segment.nbr_ids,
                segment.edge_var,
                segment.edge_ids,
            )
            for segment in batch.segments
        ]
        encoded.append(
            (
                tuple(prefix.variables),
                [prefix.column(name) for name in prefix.variables],
                segments,
            )
        )
    return encoded


def decode_factorized_batches(
    encoded: Sequence[EncodedFactorizedBatch],
) -> List[FactorizedBatch]:
    """Rebuild :class:`FactorizedBatch` objects from their raw buffers."""
    return [
        FactorizedBatch(
            prefix=MatchBatch(dict(zip(names, columns))),
            segments=tuple(
                FactorizedSegment(
                    target_vars=target_vars,
                    cardinalities=cardinalities,
                    nbr_ids=nbr_ids,
                    edge_var=edge_var,
                    edge_ids=edge_ids,
                )
                for target_vars, cardinalities, nbr_ids, edge_var, edge_ids in segments
            ),
        )
        for names, columns, segments in encoded
    ]


# ----------------------------------------------------------------------
# reply integrity
# ----------------------------------------------------------------------
def reply_checksum(encoded: Sequence[object], stats_tuple: Tuple) -> int:
    """CRC32 over a reply envelope's structure, buffer bytes, and stats.

    Walks the nested tuple/list structure of an encoded reply (flat or
    factorized), folding in each numpy array's dtype, shape, and raw bytes,
    each scalar's ``repr``, and a length marker per sequence — so a flipped
    payload byte, a truncated batch list, and a reordered column all change
    the checksum.  Fast (one C-speed pass per buffer) relative to the pickle
    transport the reply already paid for.
    """
    crc = zlib.crc32(repr(stats_tuple).encode())
    pending: List[object] = [encoded]
    while pending:
        value = pending.pop()
        if isinstance(value, np.ndarray):
            crc = zlib.crc32(str((value.dtype.str, value.shape)).encode(), crc)
            crc = zlib.crc32(np.ascontiguousarray(value).tobytes(), crc)
        elif isinstance(value, (tuple, list)):
            crc = zlib.crc32(f"seq:{len(value)}".encode(), crc)
            pending.extend(reversed(value))
        else:
            crc = zlib.crc32(repr(value).encode(), crc)
    return crc


def _corrupt_reply(encoded: Sequence[object], checksum: int) -> int:
    """Damage a reply envelope in place (fault injection only).

    Flips one bit in the first non-empty integer buffer found in the
    encoded structure; when the reply has no such buffer (e.g. an
    empty-result morsel), damages the checksum instead so the corruption is
    still detectable.  Returns the checksum to ship (unchanged when a
    buffer was flipped — the *payload* no longer matches it).
    """
    pending: List[object] = [encoded]
    while pending:
        value = pending.pop()
        if isinstance(value, np.ndarray):
            if value.size and np.issubdtype(value.dtype, np.integer):
                try:
                    value.flat[0] ^= 1
                    return checksum
                except (ValueError, TypeError):  # pragma: no cover - read-only
                    continue
        elif isinstance(value, (tuple, list)):
            pending.extend(reversed(value))
    return checksum ^ 0x5A5A


# ----------------------------------------------------------------------
# process-backend wire format
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MorselTaskSpec:
    """One morsel of work, as shipped to a process-pool worker.

    Deliberately tiny and plain (four ints/None): the heavy state — plan,
    graph, indexes — travels once per worker inside :class:`WorkerPayload`;
    afterwards each morsel costs one of these over the pipe.

    Attributes:
        plan_id: identifies the payload the task belongs to; must match the
            worker's rehydrated payload.
        generation: the index-store generation the plan is pinned to
            (``None`` for hand-built plans without a snapshot); must match
            the payload's generation — a mismatch means the parent tried to
            run a task against a worker rehydrated from a different store
            state, which would silently mix edge/vertex IDs across flush
            remappings.
        start, stop: the half-open vertex-ID range of the morsel.
        index: the morsel's deterministic submission index (what the
            payload's fault plan keys on).
        attempt: 0 for the first submission, incremented per retry of the
            same range (first-attempt-only faults key on it).
    """

    plan_id: int
    generation: Optional[int]
    start: int
    stop: int
    index: int = 0
    attempt: int = 0


@dataclass
class WorkerPayload:
    """Everything a process-pool worker needs to execute morsel tasks.

    Pickled once in the parent and shipped through the pool initializer, so
    every worker rehydrates the same plan/graph generation exactly once.
    The plan's ``store_snapshot`` (when present) rides along inside the same
    pickle, so the plan's index references and ``graph`` stay one shared,
    internally consistent object graph on the worker side.

    ``factorized`` selects the morsel body's pipeline (and thereby the reply
    encoding): flat batches for row-producing sinks, unexpanded segment
    buffers + per-row cardinalities for aggregate sinks.  ``faults`` ships
    the chaos-run fault plan to the workers (children never read the
    environment, so injection behaves identically under every start method).
    """

    plan_id: int
    generation: Optional[int]
    plan: QueryPlan
    graph: PropertyGraph
    batch_size: int
    factorized: bool = False
    faults: Optional[FaultPlan] = None


#: Per-process registry of the payload the pool initializer rehydrated.
_WORKER_PAYLOAD: Optional[WorkerPayload] = None

#: How long the process backend waits for a pool worker to prove it
#: initialized before failing the query (generous: spawn starts a fresh
#: interpreter per worker; healthy fork pools answer in milliseconds).
WORKER_STARTUP_TIMEOUT_SECONDS = 30.0

#: Granularity of the parallel backends' blocking result waits.  Each poll
#: interval the backend re-checks the query's deadline/cancellation and the
#: process backend re-checks its workers' liveness, so both guardrails fire
#: within ~this many seconds of the triggering event.
_RESULT_POLL_SECONDS = 0.05

#: After a pool worker is observed dead, how long the process backend keeps
#: waiting for the in-flight morsel's reply before declaring it lost.  The
#: reply may still arrive: the dead worker might not be the one holding
#: this morsel, and a finished reply can sit in the result pipe behind the
#: crash.  One short grace beat distinguishes the two without stalling
#: recovery.
DEATH_GRACE_SECONDS = 0.25

#: Default per-morsel reply timeout for the process backend (None disables).
#: Generous on purpose: it is a stuck-worker backstop, not a deadline — use
#: ``Database.run(timeout=...)`` for query-level budgets.
DEFAULT_MORSEL_TIMEOUT_SECONDS = 120.0

#: Environment override for the per-morsel reply timeout (seconds; ``0``
#: disables the backstop entirely).
MORSEL_TIMEOUT_ENV_VAR = "REPRO_MORSEL_TIMEOUT"

#: Environment variable selecting the default morsel backend by name.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_morsel_timeout(value: Optional[float] = None) -> Optional[float]:
    """The per-morsel reply timeout: explicit value, env override, or default.

    ``0`` (from either source) disables the backstop and returns None.
    """
    if value is None:
        raw = os.environ.get(MORSEL_TIMEOUT_ENV_VAR)
        if raw is None or not raw.strip():
            return DEFAULT_MORSEL_TIMEOUT_SECONDS
        try:
            value = float(raw)
        except ValueError:
            raise ExecutionError(
                f"${MORSEL_TIMEOUT_ENV_VAR} must be a number of seconds, "
                f"got {raw!r}"
            ) from None
    if value < 0:
        raise ExecutionError(
            f"morsel timeout must be >= 0 seconds (0 disables), got {value!r}"
        )
    return value if value > 0 else None

#: Monotonic ids tying task specs to the payload they belong to.
_PLAN_IDS = itertools.count(1)


def _process_worker_init(payload_bytes: bytes) -> None:
    """Pool initializer: rehydrate the plan/graph payload once per worker.

    Runs ``pickle.loads`` even under the ``fork`` start method (where the
    bytes are inherited copy-on-write) so every start method exercises the
    same rehydration path and the payload's picklability is guaranteed
    everywhere, not just on spawn-only platforms.
    """
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = pickle.loads(payload_bytes)


def _process_worker_ready() -> bool:
    """Health probe: True once this worker has rehydrated its payload."""
    return _WORKER_PAYLOAD is not None


def _execute_payload_task(
    payload: WorkerPayload, spec: MorselTaskSpec
) -> Tuple[List[object], Tuple, int]:
    """Validate a spec against a payload, run the morsel, encode the reply.

    The shared worker body of the per-query process backend (payload
    rehydrated by the pool initializer) and the server's persistent process
    backend (payloads cached per worker, shipped lazily): both produce the
    same checksummed envelope ``(encoded, stats_tuple, checksum)``.
    Injected faults fire here the way real failures would: ``kill`` is a
    hard ``os._exit`` (the parent sees a dead child and a lost task, not a
    pickled exception), ``delay`` sleeps holding the morsel, ``error``
    raises through the pool's normal exception transport, and ``corrupt``
    damages the envelope *after* its checksum was computed.
    """
    if spec.plan_id != payload.plan_id or spec.generation != payload.generation:
        raise ExecutionError(
            f"morsel task spec (plan {spec.plan_id}, generation "
            f"{spec.generation}) does not match the worker's rehydrated "
            f"payload (plan {payload.plan_id}, generation "
            f"{payload.generation}); tasks and payloads from different "
            "store generations must not mix"
        )
    faults = payload.faults
    if faults is not None:
        if faults.kills(spec.index, spec.attempt):
            os._exit(FAULT_KILL_EXIT_CODE)
        if faults.errors(spec.index, spec.attempt):
            raise RuntimeError(
                f"injected worker error on morsel {spec.index} "
                f"(attempt {spec.attempt})"
            )
        if faults.delays(spec.index, spec.attempt):
            time.sleep(faults.delay_seconds)
    batches, stats = run_morsel(
        payload.plan,
        payload.graph,
        payload.batch_size,
        spec.start,
        spec.stop,
        factorized=payload.factorized,
    )
    if payload.factorized:
        encoded: List[object] = encode_factorized_batches(batches)
    else:
        encoded = encode_batches(batches)
    stats_tuple = dataclasses.astuple(stats)
    checksum = reply_checksum(encoded, stats_tuple)
    if faults is not None and faults.corrupts(spec.index, spec.attempt):
        checksum = _corrupt_reply(encoded, checksum)
    return encoded, stats_tuple, checksum


def _process_worker_run(
    spec: MorselTaskSpec,
) -> Tuple[List[object], Tuple, int]:
    """Worker body: run one morsel against the pool-initializer payload."""
    payload = _WORKER_PAYLOAD
    if payload is None:
        raise ExecutionError(
            "process-pool worker has no rehydrated payload; the pool was "
            "created without the backend's initializer"
        )
    return _execute_payload_task(payload, spec)


def preferred_start_method() -> str:
    """The start method the process backend uses on this platform.

    The platform's *default* start method, deliberately: where that default
    is ``fork`` (Linux), workers inherit the parent's memory copy-on-write
    and pool startup costs milliseconds.  Platforms whose default is
    ``spawn`` (Windows, macOS) keep it even though ``fork`` may be
    *offered* — CPython demoted fork there because forked children can
    crash inside the Objective-C runtime — so the backend stays safe but
    per-query pool creation is expensive (a fresh interpreter + re-import
    per worker); the benchmark harness skips the process scenarios there
    (``requires_fork`` in the baseline).
    """
    return multiprocessing.get_start_method()


def fork_available() -> bool:
    """True when process pools can be started cheaply (fork is the default)."""
    return preferred_start_method() == "fork"


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class MorselBackend:
    """Where morsel bodies run; the dispatcher owns ordering and merging.

    Lifecycle: the dispatcher calls :meth:`open` once per ``execute``, then
    interleaves :meth:`submit` (hand over one ``[start, stop)`` range,
    returning an opaque handle) and :meth:`result` (block for one handle's
    ``(batches, stats)``), and finally :meth:`close` — also on abandonment,
    so backends must tolerate ``close`` with submissions outstanding.
    Instances are single-use per ``execute`` call but may be reused
    sequentially; they hold no state between ``open`` calls.

    ``submit`` may run the morsel eagerly, lazily, or remotely — the only
    contract is that ``result(handle)`` returns exactly the output of
    :func:`run_morsel` for the submitted range.  The dispatcher retrieves
    handles in submission (= ascending range) order, which is what makes
    every backend's merged output byte-identical to the serial executor.

    ``open(..., factorized=True)`` switches the morsel bodies to the
    factorized pipeline: ``result`` then returns
    :class:`~repro.query.factorized.FactorizedBatch` objects (segment
    buffers + partial counts over the wire for the process backend) instead
    of flat batches.

    ``open(..., runtime=...)`` arms the fault-tolerance layer: ``result``'s
    blocking waits are polled against the runtime so a deadline or a
    cancellation interrupts them, and in-process morsel bodies run
    cooperative per-batch checks.  ``open(..., faults=...)`` arms the
    fault-injection hooks; ``submit``'s ``index``/``attempt`` identify each
    submission to them (and to the dispatcher's retry bookkeeping).
    ``result`` raises the recoverable :class:`~repro.errors.WorkerCrashError`
    when the submitted morsel's output was lost to a worker failure.
    """

    #: Registry name (also the ``Database.run(backend=...)`` spelling).
    name = "abstract"

    def open(
        self,
        executor,
        plan: QueryPlan,
        factorized: bool = False,
        runtime: Optional[QueryContext] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def submit(
        self, start: int, stop: int, index: int = 0, attempt: int = 0
    ):  # pragma: no cover
        raise NotImplementedError

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        raise NotImplementedError  # pragma: no cover

    def close(self) -> None:  # pragma: no cover
        raise NotImplementedError


class SerialBackend(MorselBackend):
    """Run every morsel inline on the caller's thread (no concurrency).

    ``submit`` just records the range; the morsel runs lazily inside
    :meth:`result`, so peak memory matches the windowed parallel backends
    instead of materializing the whole result at submission time.
    """

    name = "serial"

    def open(
        self,
        executor,
        plan: QueryPlan,
        factorized: bool = False,
        runtime: Optional[QueryContext] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._plan = plan
        self._graph = executor.graph
        self._batch_size = executor.batch_size * executor.coalesce
        self._factorized = factorized
        self._runtime = runtime
        self._faults = faults
        self._clock = getattr(executor, "clock", None)

    def submit(
        self, start: int, stop: int, index: int = 0, attempt: int = 0
    ) -> Tuple[int, int, int, int]:
        return (start, stop, index, attempt)

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        start, stop, index, attempt = handle
        try:
            return run_morsel_faulted(
                self._plan,
                self._graph,
                self._batch_size,
                start,
                stop,
                factorized=self._factorized,
                runtime=self._runtime,
                faults=self._faults,
                index=index,
                attempt=attempt,
                clock=self._clock,
            )
        except (InjectedWorkerCrash, InjectedReplyCorruption) as fault:
            raise WorkerCrashError(
                f"morsel {index} [{start}, {stop}) lost to injected fault: "
                f"{fault}"
            ) from fault

    def close(self) -> None:
        self._plan = None
        self._graph = None


class ThreadBackend(MorselBackend):
    """Run morsels on a thread pool (the numpy kernels release the GIL)."""

    name = "thread"

    def open(
        self,
        executor,
        plan: QueryPlan,
        factorized: bool = False,
        runtime: Optional[QueryContext] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._plan = plan
        self._graph = executor.graph
        self._batch_size = executor.batch_size * executor.coalesce
        self._factorized = factorized
        self._runtime = runtime
        self._faults = faults
        self._clock = getattr(executor, "clock", None)
        self._pool = ThreadPoolExecutor(max_workers=executor.num_workers)

    def submit(self, start: int, stop: int, index: int = 0, attempt: int = 0):
        return (
            self._pool.submit(
                run_morsel_faulted,
                self._plan,
                self._graph,
                self._batch_size,
                start,
                stop,
                factorized=self._factorized,
                runtime=self._runtime,
                faults=self._faults,
                index=index,
                attempt=attempt,
                clock=self._clock,
            ),
            index,
            start,
            stop,
        )

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        future, index, start, stop = handle
        try:
            if self._runtime is None:
                return future.result()
            # Poll so the caller's deadline/cancellation can interrupt the
            # wait even while the worker thread is stuck in non-cooperative
            # code (e.g. an injected delay sleeping inside the morsel body).
            while True:
                try:
                    return future.result(timeout=_RESULT_POLL_SECONDS)
                except FutureTimeoutError:
                    self._runtime.check()
        except (InjectedWorkerCrash, InjectedReplyCorruption) as fault:
            raise WorkerCrashError(
                f"morsel {index} [{start}, {stop}) lost to injected fault: "
                f"{fault}"
            ) from fault

    def close(self) -> None:
        # An aborted query (deadline/cancellation — the dispatcher sets the
        # runtime's token before closing) must not block on workers stuck in
        # non-cooperative code: queued futures are cancelled, cooperative
        # bodies stop at their next batch check, and a truly stuck thread is
        # left to finish in the background (Python threads cannot be
        # killed); waiting for it here would defeat the deadline.
        runtime = getattr(self, "_runtime", None)
        aborted = runtime is not None and runtime.cancelled
        self._pool.shutdown(wait=not aborted, cancel_futures=True)


class ProcessBackend(MorselBackend):
    """Run morsels on a ``multiprocessing`` pool with worker rehydration.

    ``open`` pickles one :class:`WorkerPayload` and hands it to every worker
    through the pool initializer; ``submit`` ships a :class:`MorselTaskSpec`
    per morsel; ``result`` decodes the columnar reply back into
    :class:`MatchBatch` objects and an :class:`ExecutionStats`.
    """

    name = "process"

    def __init__(self) -> None:
        self._pool = None
        # Serializes close() against concurrent callers: a pool supervisor
        # tearing down an unhealthy backend can race a server drain (or a
        # dispatcher's finally block), and exactly one of them must
        # terminate/join the pool while the others see a no-op.
        self._close_lock = threading.Lock()

    @staticmethod
    def _start_method() -> str:
        """Start method for this pool, adjusted for parent-side threads.

        ``fork``-ing a multi-threaded parent is unsafe: a lock held by a
        sibling thread at the moment of the fork (allocator arenas, another
        query's pool machinery) stays locked forever in the child, which
        then deadlocks inside the worker initializer.  When other threads
        are alive — e.g. queries on the thread backend running concurrently
        — fall back to ``forkserver``, which forks from a clean
        single-threaded server process instead of this one.  The fallback
        carries the standard spawn-family contract (the Linux *default*
        from Python 3.14): the parent's ``__main__`` must be import-safe —
        guard top-level pool-creating code with ``if __name__ ==
        "__main__"`` — and multiprocessing raises its usual bootstrapping
        error (or :func:`open`'s startup health check fires) when it is not.
        """
        method = preferred_start_method()
        if method == "fork" and threading.active_count() > 1:
            if "forkserver" in multiprocessing.get_all_start_methods():
                return "forkserver"
        return method

    def open(
        self,
        executor,
        plan: QueryPlan,
        factorized: bool = False,
        runtime: Optional[QueryContext] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        plan_id = next(_PLAN_IDS)
        payload = WorkerPayload(
            plan_id=plan_id,
            generation=plan.pinned_generation,
            plan=plan,
            graph=executor.graph,
            batch_size=executor.batch_size * executor.coalesce,
            factorized=factorized,
            faults=faults,
        )
        self._plan_id = plan_id
        self._generation = payload.generation
        self._factorized = factorized
        self._runtime = runtime
        self._morsel_timeout = resolve_morsel_timeout(
            getattr(executor, "morsel_timeout", None)
        )
        method = self._start_method()
        context = multiprocessing.get_context(method)
        self._pool = context.Pool(
            processes=executor.num_workers,
            initializer=_process_worker_init,
            initargs=(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),),
        )
        # Prove one worker came up before accepting morsels.  A pool whose
        # workers die during startup (e.g. forkserver/spawn re-importing a
        # parent ``__main__`` that is not importable — a REPL or stdin
        # script) respawns them forever while queued tasks wait — a silent
        # livelock; this converts it into a loud, actionable error.
        probe = self._pool.apply_async(_process_worker_ready)
        try:
            ready = probe.get(timeout=WORKER_STARTUP_TIMEOUT_SECONDS)
        except multiprocessing.TimeoutError:
            self.close()
            raise ExecutionError(
                f"process-backend workers failed to start within "
                f"{WORKER_STARTUP_TIMEOUT_SECONDS:.0f}s (start method "
                f"{method!r}).  Under the forkserver/spawn start methods "
                "the parent's __main__ must be importable — run from a "
                "script or module, not a REPL/stdin program, or use the "
                "thread backend"
            ) from None
        except BaseException:
            # KeyboardInterrupt (or any other failure) while waiting must
            # not orphan the just-spawned workers: the dispatcher only
            # close()s backends whose open() returned.
            self.close()
            raise
        if not ready:  # pragma: no cover - defensive
            self.close()
            raise ExecutionError(
                "process-backend worker started without a rehydrated payload"
            )
        self._seen_pids = self._worker_pids()
        self._death_ever = False

    # ------------------------------------------------------------------
    # worker liveness
    # ------------------------------------------------------------------
    def _worker_pids(self) -> frozenset:
        """PIDs of the pool's current worker processes (empty when opaque)."""
        workers = getattr(self._pool, "_pool", None)
        if not workers:  # pragma: no cover - pool internals unavailable
            return frozenset()
        return frozenset(
            worker.pid for worker in workers if worker.pid is not None
        )

    def _death_observed(self) -> bool:
        """True once any pool worker has died during this execution (sticky).

        ``multiprocessing.Pool`` auto-respawns dead workers (with the same
        initializer, so replacements rehydrate the payload), but the task a
        dead worker held is lost forever and its ``get()`` would block
        until the morsel timeout.  Watching the worker set — a pid we have
        not seen before means a respawn, i.e. a death — turns that hang
        into prompt recovery.  Exit codes are checked too: a dead worker
        the pool has not yet reaped keeps its pid but gains an exitcode.

        The observation is *sticky*: which morsel the dead worker held is
        unknowable from the parent, so after any death every outstanding
        reply is given one grace beat before being declared lost.  A
        false positive only costs a redundant retry (duplicate results are
        never merged — the retry replaces the declared-lost reply); a
        missed loss would cost a morsel-timeout hang.
        """
        if self._death_ever:
            return True
        workers = getattr(self._pool, "_pool", None)
        if not workers:  # pragma: no cover - pool internals unavailable
            return False
        died = any(worker.exitcode is not None for worker in workers)
        pids = self._worker_pids()
        if pids - self._seen_pids:
            died = True
        self._seen_pids = self._seen_pids | pids
        self._death_ever = died
        return died

    def submit(self, start: int, stop: int, index: int = 0, attempt: int = 0):
        spec = MorselTaskSpec(
            plan_id=self._plan_id,
            generation=self._generation,
            start=start,
            stop=stop,
            index=index,
            attempt=attempt,
        )
        return (
            self._pool.apply_async(_process_worker_run, (spec,)),
            index,
            start,
            stop,
        )

    def _await_reply(self, async_result, index: int, start: int, stop: int):
        """Block (polled) for one morsel's reply envelope.

        Raises :class:`~repro.errors.WorkerCrashError` when the reply is
        lost to a worker death or the per-morsel timeout, re-raises worker
        exceptions, and re-checks the runtime's deadline/cancellation every
        poll interval.
        """
        started = time.monotonic()
        death_seen_at: Optional[float] = None
        while True:
            try:
                return async_result.get(timeout=_RESULT_POLL_SECONDS)
            except multiprocessing.TimeoutError:
                pass
            now = time.monotonic()
            if self._runtime is not None:
                self._runtime.check()
            if death_seen_at is None and self._death_observed():
                death_seen_at = now
            if death_seen_at is not None and now - death_seen_at >= DEATH_GRACE_SECONDS:
                raise WorkerCrashError(
                    f"morsel {index} [{start}, {stop}) lost: a process-pool "
                    "worker died while the morsel was in flight and its "
                    "reply never arrived"
                )
            if (
                self._morsel_timeout is not None
                and now - started >= self._morsel_timeout
            ):
                raise WorkerCrashError(
                    f"morsel {index} [{start}, {stop}) produced no reply "
                    f"within {self._morsel_timeout:g}s "
                    f"(${MORSEL_TIMEOUT_ENV_VAR} to adjust); treating the "
                    "worker as hung"
                )

    def _decode_reply(
        self, reply, index: int, start: int, stop: int
    ) -> Tuple[List[MatchBatch], ExecutionStats]:
        """Integrity-check one reply envelope and decode its batches."""
        try:
            encoded, stats_tuple, checksum = reply
        except (TypeError, ValueError):
            raise WorkerCrashError(
                f"morsel {index} [{start}, {stop}) returned a malformed "
                "reply envelope"
            ) from None
        if reply_checksum(encoded, stats_tuple) != checksum:
            raise WorkerCrashError(
                f"morsel {index} [{start}, {stop}) reply failed its "
                "checksum; discarding the corrupt payload"
            )
        decode = decode_factorized_batches if self._factorized else decode_batches
        return decode(encoded), ExecutionStats(*stats_tuple)

    def result(self, handle) -> Tuple[List[MatchBatch], ExecutionStats]:
        async_result, index, start, stop = handle
        reply = self._await_reply(async_result, index, start, stop)
        return self._decode_reply(reply, index, start, stop)

    def close(self) -> None:
        # All retrieved results are already materialized in the parent, so
        # terminate (rather than drain) any submissions an abandoned
        # iteration left behind.  ``join`` runs in a ``finally`` so workers
        # are reaped even when ``terminate`` itself raises — a pool must
        # never outlive its query, least of all on the error path.
        #
        # Concurrent-safe and idempotent: the pool is claimed atomically
        # under ``_close_lock``, so when a supervisor teardown races a
        # server drain (or a dispatcher's finally block) exactly one caller
        # terminates/joins and the rest return immediately.
        with self._close_lock:
            pool = getattr(self, "_pool", None)
            self._pool = None
        if pool is None:
            return
        try:
            pool.terminate()
        finally:
            pool.join()


#: Registry of backend names accepted by ``MorselExecutor``/``Database``.
BACKENDS: Dict[str, Type[MorselBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, ThreadBackend, ProcessBackend)
}

#: Backend used when neither the call, the instance, nor the environment
#: picks one.
DEFAULT_BACKEND = ThreadBackend.name


def resolve_backend(backend) -> MorselBackend:
    """A ready-to-open backend instance from a name or an instance.

    Raises a typed :class:`~repro.errors.ExecutionError` (so callers
    catching :class:`~repro.errors.ReproError` see it) naming every valid
    backend and the environment knob — a misconfigured deployment should
    read its fix straight off the traceback.
    """
    if isinstance(backend, MorselBackend):
        return backend
    names = ", ".join(repr(name) for name in sorted(BACKENDS))
    try:
        return BACKENDS[backend]()
    except (KeyError, TypeError):
        raise ExecutionError(
            f"unknown morsel backend {backend!r}; valid backends are "
            f"{names} (pass one to Database.run(backend=...) or set the "
            f"${BACKEND_ENV_VAR} environment variable)"
        ) from None
