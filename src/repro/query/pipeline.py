"""The physical pipeline: ``Source → [PhysicalOperator...] → Sink``.

:class:`PipelineBuilder` compiles a :class:`~repro.query.plan.QueryPlan`
into a :class:`PhysicalPipeline` — an explicit source stage (the leading
:class:`~repro.query.operators.ScanVertices`), the chain of extension and
filter stages, and a first-class :class:`Sink` terminal.  This is the one
execution path: the serial :class:`~repro.query.executor.Executor`, every
morsel backend (:mod:`repro.query.backends` — morsel bodies call
:func:`run_pipeline` / :func:`run_pipeline_factorized`, which compile
through the builder), and the server's persistent pools all run the same
pipeline objects.

Halt propagation
----------------

Sinks are *push*-style: :meth:`Sink.push` consumes one batch and returns
``True`` to keep the stream coming or ``False`` once the sink is satisfied
(a reached ``LIMIT``, a proven ``EXISTS``).  The halt signal propagates

* **across batches** — :meth:`PhysicalPipeline.run` (and :meth:`Sink.drain`)
  stops pulling the stage chain on the first ``False``, so upstream
  operators never produce a batch past the halt; and
* **across morsels** — the morsel dispatcher refills its in-flight window
  only while its consumer keeps pulling, so once a sink reports satisfied
  no further morsel is submitted to the backend
  (:meth:`~repro.query.executor.MorselExecutor._dispatch`;
  ``ExecutionStats.morsels_dispatched`` records how many actually went
  out).  This is what makes ``collect(limit=)`` genuinely short-circuit
  instead of post-filtering a full run.

Per-stage observability
-----------------------

Every stage boundary is timed with the context's injectable monotonic
clock (``ExecutionContext.clock``): ``ExecutionStats.operator_seconds``
maps stage labels (``"0:scan"``, ``"1:extend"``, ...) to *exclusive* wall
time — the time a ``next()`` on that stage spent excluding its upstream
stages — so the per-stage times of one pipeline sum to its total drive
time; ``operator_batches`` counts the batches each stage emitted.  Both
travel in the columnar stats envelope from process workers and merge
key-wise across morsels, and both are excluded from stats equality
(``compare=False``), keeping the cross-backend byte-identity contract on
the work counters intact.

The pre-pipeline generator chain is kept as :func:`run_pipeline_legacy` —
the untimed flat oracle the differential harness
(``tests/test_pipeline_executor.py``) pins the pipeline against.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ExecutionError
from .binding import MatchBatch
from .factorized import FactorizedBatch
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    Filter,
    MultiExtend,
    ScanVertices,
)
from .plan import QueryPlan

#: Stage-label names per operator class (labels are ``"{index}:{name}"``).
OPERATOR_STAGE_NAMES = {
    ScanVertices: "scan",
    ExtendIntersect: "extend",
    MultiExtend: "multi-extend",
    Filter: "filter",
}


def stage_label(index: int, operator: object) -> str:
    """Deterministic label of plan operator ``index`` in stats/describe."""
    name = OPERATOR_STAGE_NAMES.get(type(operator))
    if name is None:  # pragma: no cover - defensive
        raise TypeError(f"unsupported operator {type(operator).__name__}")
    return f"{index}:{name}"


# ----------------------------------------------------------------------
# stage timing
# ----------------------------------------------------------------------
class _StageTicker:
    """Exclusive-time attribution across nested timed stages.

    Each timed region measures its total elapsed clock time and subtracts
    whatever nested timed regions accumulated inside it (``inner``), so a
    stage is charged only for its own work — and the charged times sum to
    the outermost region's elapsed time exactly, fake clocks included.
    """

    __slots__ = ("clock", "inner")

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.inner = 0.0

    def timed_call(self, stats: ExecutionStats, label: str, fn, *args):
        """Run ``fn(*args)`` charging its exclusive time to ``label``."""
        started = self.clock()
        saved = self.inner
        self.inner = 0.0
        try:
            return fn(*args)
        finally:
            elapsed = self.clock() - started
            stats.record_stage(label, elapsed - self.inner, 1)
            self.inner = saved + elapsed


def _timed_stage(
    stream: Iterator, label: str, stats: ExecutionStats, ticker: _StageTicker
) -> Iterator:
    """Wrap a stage's output stream, charging exclusive time per ``next()``.

    The final (StopIteration) pull is charged too — tail work an operator
    does after its last batch still belongs to the stage — with no batch
    counted for it.
    """
    while True:
        started = ticker.clock()
        saved = ticker.inner
        ticker.inner = 0.0
        done = False
        try:
            item = next(stream)
        except StopIteration:
            done = True
        elapsed = ticker.clock() - started
        stats.record_stage(label, elapsed - ticker.inner, 0 if done else 1)
        ticker.inner = saved + elapsed
        if done:
            return
        yield item


def _runtime_checked(
    stream: Iterator[MatchBatch], context: ExecutionContext
) -> Iterator[MatchBatch]:
    """Interleave cooperative deadline/cancellation checks into a batch stream.

    Wrapped around the *scan* stream, so the check granularity is one scan
    batch of pipeline work even for plans whose later operators filter most
    batches away before they reach the output loop.
    """
    for batch in stream:
        context.check_runtime()
        yield batch


# ----------------------------------------------------------------------
# sinks: the first-class pipeline terminal
# ----------------------------------------------------------------------
class Sink:
    """Push-style terminal of a physical pipeline.

    ``push(item)`` consumes one batch (flat
    :class:`~repro.query.binding.MatchBatch` or
    :class:`~repro.query.factorized.FactorizedBatch`, sink permitting) and
    returns ``False`` once the sink needs no more input — the halt signal
    the pipeline driver and the morsel dispatcher propagate upstream.
    ``result()`` finalizes; ``satisfied`` reports whether the halt
    condition has been met without consuming anything.
    """

    name = "sink"

    def push(self, item) -> bool:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError

    @property
    def satisfied(self) -> bool:
        return False

    def drain(self, stream: Iterable):
        """Push the whole ``stream`` (stopping early on halt) and finalize.

        An early halt closes the stream explicitly, so generator-backed
        pipelines run their cleanup (``finally: backend.close()`` in the
        morsel dispatcher) deterministically rather than at GC time.
        """
        try:
            for item in stream:
                if not self.push(item):
                    break
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        return self.result()


class CountSink(Sink):
    """Aggregate-only sink: accumulates the match count, never flat rows.

    Consumes either stream shape — flat :class:`~repro.query.binding
    .MatchBatch` batches (``len`` per batch) or
    :class:`~repro.query.factorized.FactorizedBatch` batches (per-row
    product of segment cardinalities, one multiply/sum pass per batch) —
    and produces the identical count for either, by the factorization
    contract.
    """

    name = "count"

    def __init__(self) -> None:
        self.count = 0

    def push(self, item) -> bool:
        self.count += item.match_count()
        return True

    def result(self) -> int:
        return self.count


def validate_limit(limit: Optional[int]) -> Optional[int]:
    """Shared ``limit`` validation for every LIMIT entry point.

    ``None`` means unlimited and ``0`` is a legal empty result; anything
    negative raises a typed :class:`~repro.errors.ExecutionError` (the same
    contract as ``parallelism``/``timeout`` validation) instead of being
    silently swallowed into zero rows.  Used by ``Database.collect``,
    the executors' ``collect``, ``DatabaseServer.submit(mode="collect")``,
    and :class:`LimitSink` itself.
    """
    if limit is not None and limit < 0:
        raise ExecutionError(
            f"limit must be >= 0, got {limit} "
            "(limit=0 is a legal empty result; limit=None is unlimited)"
        )
    return limit


class FlattenSink(Sink):
    """Materializing sink: flat match dicts — the kept oracle representation.

    With a ``limit`` the sink halts as soon as the limit is reached
    *mid-batch*: only the needed rows of the final batch are converted, the
    ``push`` returns ``False``, and upstream operators never run past it
    (see :class:`LimitSink`, the streaming spelling of the same).
    """

    name = "flatten"

    def __init__(self, limit: Optional[int] = None) -> None:
        self.matches: List[Dict[str, int]] = []
        self.limit = limit

    def push(self, batch: MatchBatch) -> bool:
        if self.limit is None:
            self.matches.extend(batch.to_dicts())
            return True
        remaining = self.limit - len(self.matches)
        if remaining <= len(batch):
            self.matches.extend(batch.row(index) for index in range(remaining))
            return False
        self.matches.extend(batch.to_dicts())
        return True

    @property
    def satisfied(self) -> bool:
        return self.limit is not None and len(self.matches) >= self.limit

    def result(self) -> List[Dict[str, int]]:
        return self.matches


class LimitSink(FlattenSink):
    """Streaming ``LIMIT`` sink: exactly the first ``limit`` matches.

    Never materializes beyond need — the batch that crosses the limit
    contributes only its needed prefix rows, the halt propagates upstream
    immediately, and (under the morsel dispatcher) no further morsel is
    submitted once satisfied.
    """

    name = "limit"

    def __init__(self, limit: int) -> None:
        validate_limit(limit)
        super().__init__(limit=limit)


class ExistsSink(Sink):
    """Boolean sink: halts on the first non-empty batch, keeps no rows.

    Consumes either stream shape (``match_count`` is defined on both);
    ``result()`` is ``True`` iff any match exists.
    """

    name = "exists"

    def __init__(self) -> None:
        self.found = False

    def push(self, item) -> bool:
        if item.match_count() > 0:
            self.found = True
            return False
        return True

    @property
    def satisfied(self) -> bool:
        return self.found

    def result(self) -> bool:
        return self.found


# ----------------------------------------------------------------------
# the compiled pipeline
# ----------------------------------------------------------------------
class PipelineStage:
    """One labelled stage of a compiled pipeline."""

    __slots__ = ("label", "operator")

    def __init__(self, label: str, operator: object) -> None:
        self.label = label
        self.operator = operator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PipelineStage({self.label!r}, {type(self.operator).__name__})"


class PhysicalPipeline:
    """A compiled ``Source → stages → (optional factorized suffix)`` chain.

    Built by :class:`PipelineBuilder`; stateless across runs (stages share
    the plan's immutable operators), so one pipeline object can drive any
    number of contexts — including the morsel case, where every morsel body
    compiles an identical pipeline around its range-restricted scan clone.

    :meth:`stream` lazily yields output batches under a context (timing
    every stage boundary); :meth:`run` drives the stream into a
    :class:`Sink`, honouring its halt signal.
    """

    def __init__(
        self,
        plan: QueryPlan,
        source: PipelineStage,
        stages: Tuple[PipelineStage, ...],
        suffix: Tuple[PipelineStage, ...] = (),
    ) -> None:
        self.plan = plan
        self.source = source
        self.stages = stages
        self.suffix = suffix

    @property
    def factorized(self) -> bool:
        return bool(self.suffix)

    @property
    def labels(self) -> List[str]:
        """Stage labels in pipeline order (keys of ``operator_seconds``)."""
        return [self.source.label] + [
            stage.label for stage in self.stages + self.suffix
        ]

    def describe(self) -> str:
        """One-line physical shape, e.g. ``0:scan → 1:extend → 2:filter``."""
        parts = [self.source.label]
        parts.extend(stage.label for stage in self.stages)
        if self.suffix:
            suffix = ", ".join(stage.label for stage in self.suffix)
            parts.append(f"[factorized suffix: {suffix}]")
        return " → ".join(parts)

    def _seed_stats(self, stats: ExecutionStats) -> None:
        # Every stage is present in the observability maps even when it
        # never emits (empty morsel, early halt) — "timings present for
        # every stage" is part of the observability contract.
        for label in self.labels:
            stats.operator_seconds.setdefault(label, 0.0)
            stats.operator_batches.setdefault(label, 0)

    def _compose(
        self, context: ExecutionContext, ticker: _StageTicker
    ) -> Iterator[MatchBatch]:
        """The timed stage chain up to (excluding) the factorized suffix."""
        scan = self.source.operator
        stream: Iterator[MatchBatch] = _timed_stage(
            scan.execute(context), self.source.label, context.stats, ticker
        )
        if context.runtime is not None:
            stream = _runtime_checked(stream, context)
        for stage in self.stages:
            stream = _timed_stage(
                stage.operator.execute(stream, context),
                stage.label,
                context.stats,
                ticker,
            )
        return stream

    def stream(self, context: ExecutionContext) -> Iterator:
        """Yield the pipeline's output batches under ``context``.

        Flat pipelines yield :class:`~repro.query.binding.MatchBatch`;
        factorized ones yield
        :class:`~repro.query.factorized.FactorizedBatch` (flat prefix plus
        unexpanded suffix segments).  Runtime guardrails are checked
        between batches exactly as the pre-pipeline executor did.
        """
        ticker = _StageTicker(context.clock)
        self._seed_stats(context.stats)
        stream = self._compose(context, ticker)
        if not self.suffix:
            for batch in stream:
                context.check_runtime()
                context.stats.output_rows += len(batch)
                yield batch
            return
        for batch in stream:
            context.check_runtime()
            if len(batch) == 0:
                continue
            segments = tuple(
                ticker.timed_call(
                    context.stats,
                    stage.label,
                    stage.operator.extend_factorized,
                    batch,
                    context,
                )
                for stage in self.suffix
            )
            factorized = FactorizedBatch(prefix=batch, segments=segments)
            context.stats.output_rows += factorized.match_count()
            context.stats.combos_avoided += factorized.flat_rows_avoided()
            context.stats.segments_emitted += len(segments)
            yield factorized

    def run(self, context: ExecutionContext, sink: Sink):
        """Drive the pipeline into ``sink``, honouring its halt signal."""
        return sink.drain(self.stream(context))


class PipelineBuilder:
    """Compiles a :class:`~repro.query.plan.QueryPlan` into a pipeline.

    Validates the physical shape once — a leading
    :class:`~repro.query.operators.ScanVertices` source followed by
    extension/filter stages — and assigns the deterministic stage labels
    under which per-stage times are reported.
    """

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan

    def build(
        self,
        scan: Optional[ScanVertices] = None,
        factorized: bool = False,
    ) -> PhysicalPipeline:
        """Compile the plan; ``scan`` optionally replaces the source.

        The morsel dispatcher passes a range-restricted scan clone; the
        remaining operators are shared as-is (stateless between calls).
        ``factorized=True`` splits the plan at
        ``plan.factorized_suffix_start()`` into flat stages plus an
        unexpanded suffix, raising :class:`~repro.errors.ExecutionError`
        for plans without a factorizable suffix.
        """
        plan = self.plan
        lead = scan if scan is not None else plan.operators[0]
        if not isinstance(lead, ScanVertices):
            raise TypeError(
                f"pipeline source must be ScanVertices, got {type(lead).__name__}"
            )
        suffix_start = len(plan.operators)
        if factorized:
            suffix_start = plan.factorized_suffix_start()
            if suffix_start >= len(plan.operators):
                raise ExecutionError(
                    f"plan for {plan.query.name!r} has no factorizable suffix; "
                    "use the flat pipeline"
                )
        source = PipelineStage(stage_label(0, lead), lead)
        stages = []
        for index, operator in enumerate(plan.operators[1:suffix_start], start=1):
            if not isinstance(operator, (ExtendIntersect, MultiExtend, Filter)):
                raise TypeError(
                    f"unsupported operator {type(operator).__name__}"
                )
            stages.append(PipelineStage(stage_label(index, operator), operator))
        suffix = tuple(
            PipelineStage(stage_label(index, operator), operator)
            for index, operator in enumerate(
                plan.operators[suffix_start:], start=suffix_start
            )
        )
        return PhysicalPipeline(plan, source, tuple(stages), suffix)


# ----------------------------------------------------------------------
# the morsel-body entry points (all backends route through these)
# ----------------------------------------------------------------------
def run_pipeline(
    plan: QueryPlan, context: ExecutionContext, scan: Optional[ScanVertices] = None
) -> Iterator[MatchBatch]:
    """Drive the plan's compiled flat pipeline under ``context``.

    ``scan`` optionally replaces the plan's leading scan operator (the
    morsel dispatcher substitutes a range-restricted clone).  When the
    context carries a :class:`~repro.query.runtime.QueryContext`, the
    deadline and cancellation token are checked between batches, raising
    :class:`~repro.errors.QueryTimeoutError` /
    :class:`~repro.errors.QueryCancelledError` mid-stream.
    """
    pipeline = PipelineBuilder(plan).build(scan=scan)
    yield from pipeline.stream(context)


def run_pipeline_factorized(
    plan: QueryPlan, context: ExecutionContext, scan: Optional[ScanVertices] = None
) -> Iterator[FactorizedBatch]:
    """Drive the plan's flat prefix, then emit the terminal suffix unexpanded.

    The operators before ``plan.factorized_suffix_start()`` run exactly as
    in :func:`run_pipeline`; each prefix batch is then handed to every
    suffix operator's ``extend_factorized`` once, producing one unexpanded
    :class:`~repro.query.factorized.FactorizedSegment` per operator instead
    of the combination cross-product.  ``output_rows`` still advances by the
    represented match count, so the counter means the same thing on both
    paths; ``combos_avoided``/``segments_emitted`` record what the flat path
    would have materialized.
    """
    pipeline = PipelineBuilder(plan).build(scan=scan, factorized=True)
    yield from pipeline.stream(context)


def run_pipeline_legacy(
    plan: QueryPlan, context: ExecutionContext, scan: Optional[ScanVertices] = None
) -> Iterator[MatchBatch]:
    """The pre-pipeline flat executor, kept as the differential oracle.

    The untimed generator chain the compiled pipeline replaced: same
    operators, same runtime checks, same ``output_rows`` accounting, no
    stage timing.  ``tests/test_pipeline_executor.py`` pins the pipeline
    byte-identical (matches, order, work-counter stats) to this path across
    the query zoo × graph shapes × backends matrix.
    """
    lead = scan if scan is not None else plan.operators[0]
    assert isinstance(lead, ScanVertices)
    stream: Iterator[MatchBatch] = lead.execute(context)
    if context.runtime is not None:
        stream = _runtime_checked(stream, context)
    for operator in plan.operators[1:]:
        if isinstance(operator, (ExtendIntersect, MultiExtend, Filter)):
            stream = operator.execute(stream, context)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported operator {type(operator).__name__}")
    for batch in stream:
        context.check_runtime()
        context.stats.output_rows += len(batch)
        yield batch
