"""Naive backtracking subgraph matcher, used as a correctness oracle.

This matcher enumerates all homomorphic matches of a query pattern by simple
recursive backtracking over the query edges, evaluating the full predicate on
every complete binding.  It is deliberately straightforward — no indexes
beyond per-vertex adjacency dictionaries, no ordering heuristics — so that the
optimizer/executor stack can be validated against it on small graphs (unit and
property-based tests).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..errors import QueryParseError
from ..graph.graph import PropertyGraph
from .pattern import QueryEdge, QueryGraph


class NaiveMatcher:
    """Brute-force homomorphic subgraph matcher."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self._out_edges: Dict[int, List[int]] = defaultdict(list)
        self._in_edges: Dict[int, List[int]] = defaultdict(list)
        for edge_id in range(graph.num_edges):
            self._out_edges[int(graph.edge_src[edge_id])].append(edge_id)
            self._in_edges[int(graph.edge_dst[edge_id])].append(edge_id)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def match(self, query: QueryGraph) -> List[Dict[str, int]]:
        """Return every homomorphic match (vertex and edge bindings)."""
        if not query.is_connected():
            raise QueryParseError("the naive matcher requires a connected pattern")
        edge_order = self._order_edges(query)
        results: List[Dict[str, int]] = []
        binding: Dict[str, Tuple[str, int]] = {}

        start_vertex = edge_order[0].src if edge_order else next(iter(query.vertex_names))
        for vertex_id in self._vertex_candidates(query, start_vertex):
            binding[start_vertex] = ("vertex", vertex_id)
            self._recurse(query, edge_order, 0, binding, results)
            del binding[start_vertex]
        return results

    def count(self, query: QueryGraph) -> int:
        return len(self.match(query))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _order_edges(self, query: QueryGraph) -> List[QueryEdge]:
        """Order query edges so each one touches an already-covered vertex."""
        remaining = list(query.edges.values())
        if not remaining:
            return []
        ordered = [remaining.pop(0)]
        covered: Set[str] = {ordered[0].src, ordered[0].dst}
        while remaining:
            for position, edge in enumerate(remaining):
                if edge.src in covered or edge.dst in covered:
                    ordered.append(remaining.pop(position))
                    covered.update({edge.src, edge.dst})
                    break
            else:  # disconnected; is_connected() should have caught this
                raise QueryParseError("pattern is not connected")
        return ordered

    def _vertex_candidates(self, query: QueryGraph, vertex_var: str) -> List[int]:
        label = query.vertex(vertex_var).label
        if label is None:
            return [int(v) for v in self.graph.all_vertices()]
        return [int(v) for v in self.graph.vertices_with_label(label)]

    def _vertex_matches(self, query: QueryGraph, vertex_var: str, vertex_id: int) -> bool:
        label = query.vertex(vertex_var).label
        if label is None:
            return True
        return int(self.graph.vertex_labels[vertex_id]) == self.graph.schema.vertex_label_code(label)

    def _edge_matches_label(self, query_edge: QueryEdge, edge_id: int) -> bool:
        if query_edge.label is None:
            return True
        return int(self.graph.edge_labels[edge_id]) == self.graph.schema.edge_label_code(
            query_edge.label
        )

    def _recurse(
        self,
        query: QueryGraph,
        edge_order: List[QueryEdge],
        position: int,
        binding: Dict[str, Tuple[str, int]],
        results: List[Dict[str, int]],
    ) -> None:
        if position == len(edge_order):
            if query.predicate.evaluate(self.graph, binding):
                results.append({name: value for name, (_, value) in binding.items()})
            return
        query_edge = edge_order[position]
        src_bound = query_edge.src in binding
        dst_bound = query_edge.dst in binding

        if src_bound:
            candidates = self._out_edges[binding[query_edge.src][1]]
        elif dst_bound:
            candidates = self._in_edges[binding[query_edge.dst][1]]
        else:  # pragma: no cover - ordering guarantees an endpoint is bound
            candidates = list(range(self.graph.num_edges))

        for edge_id in candidates:
            if not self._edge_matches_label(query_edge, edge_id):
                continue
            src_id = int(self.graph.edge_src[edge_id])
            dst_id = int(self.graph.edge_dst[edge_id])
            if src_bound and binding[query_edge.src][1] != src_id:
                continue
            if dst_bound and binding[query_edge.dst][1] != dst_id:
                continue
            if not src_bound and not self._vertex_matches(query, query_edge.src, src_id):
                continue
            if not dst_bound and not self._vertex_matches(query, query_edge.dst, dst_id):
                continue

            added: List[str] = []
            if not src_bound:
                binding[query_edge.src] = ("vertex", src_id)
                added.append(query_edge.src)
            if not dst_bound:
                binding[query_edge.dst] = ("vertex", dst_id)
                added.append(query_edge.dst)
            binding[query_edge.name] = ("edge", edge_id)
            added.append(query_edge.name)

            self._recurse(query, edge_order, position + 1, binding, results)

            for name in added:
                del binding[name]
