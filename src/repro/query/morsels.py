"""Morsel generation: splitting a scan domain into per-worker vertex ranges.

The morsel dispatcher (:class:`~repro.query.executor.MorselExecutor`)
partitions the leading scan's vertex-ID domain into contiguous ``[start,
stop)`` ranges and runs the full operator pipeline once per range.  How the
domain is cut decides load balance, and nothing else: every splitter here
produces a *partition* of the domain in ascending order — ranges cover the
domain exactly, without overlap or gap — so concatenating per-range outputs
in list order reproduces the serial scan order no matter which splitter
produced the ranges.  Splitting is a pure function of the domain and the
weights; it never changes which rows a plan produces.

Two strategies:

* :func:`even_ranges` — equal *vertex-count* ranges (the PR 4 behaviour).
  Fine for uniform-degree graphs, but on skewed graphs a range that happens
  to contain the heavy hubs carries a disproportionate share of the
  adjacency work and becomes the straggler.
* :func:`degree_weighted_ranges` — equal *work* ranges.  Each vertex gets a
  weight (its adjacency-list length read off the primary CSR offsets, plus a
  constant for the scan itself); the prefix sum of the weights is cut at
  ``k/target`` of the total for ``k = 1..target-1`` (one ``searchsorted``
  over the cumulative array), so every morsel carries roughly the same
  amount of adjacency work.  A super-hub vertex whose weight exceeds the
  per-morsel budget absorbs several cut targets; deduplication then merges
  those cuts, isolating the hub in its own single-vertex morsel — the
  closest achievable balance, since a vertex range cannot split below one
  vertex.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Range = Tuple[int, int]


def _empty_domain(lo: int, hi: int) -> bool:
    return hi <= lo


def ranges_of_size(lo: int, hi: int, size: int) -> List[Range]:
    """Consecutive ranges of ``size`` vertices covering ``[lo, hi)``."""
    if _empty_domain(lo, hi):
        return []
    size = max(int(size), 1)
    return [(start, min(start + size, hi)) for start in range(lo, hi, size)]


def even_ranges(lo: int, hi: int, target_morsels: int) -> List[Range]:
    """Split ``[lo, hi)`` into ~``target_morsels`` equal vertex-count ranges."""
    if _empty_domain(lo, hi):
        return []
    domain = hi - lo
    target = max(int(target_morsels), 1)
    return ranges_of_size(lo, hi, max(-(-domain // target), 1))


def degree_weighted_ranges(
    lo: int,
    hi: int,
    target_morsels: int,
    weights: Sequence[float],
) -> List[Range]:
    """Split ``[lo, hi)`` into ~``target_morsels`` equal-*work* ranges.

    Args:
        lo, hi: the half-open vertex-ID domain to partition.
        target_morsels: desired number of ranges — a granularity target,
            not an exact count.  Fewer are produced when heavy vertices
            absorb several cut targets (a range never holds less than one
            vertex) or when the domain has fewer vertices; a few *more* when
            isolating over-budget vertices adds boundaries around them
            (at most two extra per such vertex).
        weights: per-vertex work estimate for exactly the vertices
            ``lo .. hi-1`` (length ``hi - lo``).  Non-negative; typically the
            adjacency-list lengths from the primary index's CSR offsets plus
            a constant per-vertex scan cost.

    Returns:
        Ranges in ascending order forming an exact partition of ``[lo, hi)``:
        each vertex appears in exactly one range, every range is non-empty,
        and the per-range weight sums are as close to ``total/target`` as the
        per-vertex granularity allows.
    """
    if _empty_domain(lo, hi):
        return []
    domain = hi - lo
    target = max(int(target_morsels), 1)
    work = np.asarray(weights, dtype=np.float64)
    if work.shape != (domain,):
        raise ValueError(
            f"weights must have one entry per domain vertex "
            f"({domain}), got shape {work.shape}"
        )
    cumulative = np.cumsum(work)
    total = float(cumulative[-1])
    if target <= 1 or total <= 0.0:
        # No work signal (or a single morsel requested): fall back to the
        # even split so zero-degree domains still parallelize by count.
        return even_ranges(lo, hi, target)
    # Cut *after* the vertex whose cumulative work first reaches k/target of
    # the total.  searchsorted returns the first index with cumulative >=
    # goal, so +1 places the boundary behind that vertex; boundaries land in
    # [1, domain] and np.unique drops the duplicates a super-hub vertex
    # creates when it swallows several goals at once.  Vertices whose own
    # weight meets the per-morsel budget additionally get boundaries on
    # *both* sides, so a super-hub is isolated in a single-vertex morsel
    # instead of dragging its light prefix into the heaviest range.
    goals = total * np.arange(1, target, dtype=np.float64) / target
    cuts = np.searchsorted(cumulative, goals, side="left") + 1
    heavy = np.nonzero(work >= total / target)[0]
    bounds = np.unique(np.concatenate(([0], cuts, heavy, heavy + 1, [domain])))
    return [
        (lo + int(start), lo + int(stop))
        for start, stop in zip(bounds[:-1], bounds[1:])
    ]
