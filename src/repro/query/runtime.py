"""Per-query runtime guardrails: wall-clock deadlines and cancellation.

A :class:`QueryContext` travels with one query execution and answers a
single question at well-defined *check points*: "may this query keep
running?"  Check points are cooperative — nothing is interrupted
pre-emptively — and sit at the boundaries the engine already works in:

* the vectorized pipeline checks between batches
  (:func:`repro.query.backends.run_pipeline` wraps the scan stream and the
  output stream), so a serial or in-process morsel body notices a deadline
  or a cancellation within one batch of work;
* the morsel dispatcher checks between morsels
  (:meth:`repro.query.executor.MorselExecutor._dispatch`), and the parallel
  backends poll their blocking waits against the context, so a query never
  sleeps past its deadline inside ``Future.result()`` / ``AsyncResult.get()``
  even when the morsel body itself is stuck in a worker that cannot run
  cooperative checks (a different process, or a worker sleeping in an
  injected delay fault).

On violation the check raises :class:`~repro.errors.QueryTimeoutError` or
:class:`~repro.errors.QueryCancelledError` with the partial
:class:`~repro.query.operators.ExecutionStats` attached — the counters of
the work whose results were already merged when the query was cut short.

The process morsel backend does not ship the context to its workers (a
``threading.Event`` cannot cross a process boundary): the *parent* enforces
the deadline by bounding its per-morsel result waits and terminating the
pool on violation, which also reaps workers stuck mid-morsel.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import ExecutionError, QueryCancelledError, QueryTimeoutError


class CancellationToken:
    """Cooperative cancellation flag shared between a caller and a query.

    Thread-safe and reusable across check points but not across queries:
    once cancelled it stays cancelled.  Hand the same token to
    ``Database.run(cancel=token)`` and call :meth:`cancel` from any other
    thread to stop the query at its next check point.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()

    def cancel(self) -> bool:
        """Request cancellation; idempotent and safe from any thread.

        Returns True for exactly one caller — the one whose call flipped the
        token — and False for every later (or concurrent) call.  Callers
        that account for cancellations (the server's shed counters, tests
        hammering the token from many threads) can attribute the transition
        without a separate lock; callers that only want the query stopped
        can ignore the return value.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"


class QueryContext:
    """Deadline + cancellation state for one query execution.

    Args:
        timeout: wall-clock budget in seconds; ``None`` means no deadline.
            The deadline is fixed at construction (``clock() + timeout``),
            so planning and execution share one budget.
        cancel: a :class:`CancellationToken` to observe; a fresh private
            token is created when omitted, so :meth:`request_abort` always
            has something to set.
        clock: monotonic time source, injectable for deterministic tests.
        deadline: an absolute deadline in the clock's domain, overriding the
            ``clock() + timeout`` computation.  The admission-controlled
            server fixes a query's deadline at *submission*, so time spent
            waiting in the admission queue counts against the same budget
            the query executes under; ``timeout`` should still carry the
            originally requested budget so error messages stay meaningful.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.monotonic,
        deadline: Optional[float] = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ExecutionError(
                f"timeout must be a positive number of seconds, got {timeout!r}"
            )
        self.timeout = timeout
        self.token = cancel if cancel is not None else CancellationToken()
        self._clock = clock
        if deadline is not None:
            self.deadline = deadline
        else:
            self.deadline = None if timeout is None else clock() + timeout

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def remaining(self) -> Optional[float]:
        """Seconds left until the deadline (may be negative); None = no deadline."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    @property
    def cancelled(self) -> bool:
        return self.token.cancelled

    # ------------------------------------------------------------------
    # check points
    # ------------------------------------------------------------------
    def check(self, stats=None) -> None:
        """Raise if the query must stop; no-op otherwise.

        Cancellation wins over the deadline: an explicit user action is
        reported as what it was even when the deadline has also passed.
        ``stats`` (the partial :class:`ExecutionStats` merged so far) is
        attached to the raised error.
        """
        if self.token.cancelled:
            raise QueryCancelledError(
                "query cancelled via its cancellation token", stats=stats
            )
        if self.expired():
            if stats is not None and hasattr(stats, "deadline_remaining"):
                stats.deadline_remaining = 0.0
            budget = (
                f"its {self.timeout:g}s deadline"
                if self.timeout is not None
                else "its deadline"
            )
            raise QueryTimeoutError(
                f"query exceeded {budget}",
                stats=stats,
                timeout=self.timeout,
            )

    def request_abort(self) -> None:
        """Tell in-flight cooperative workers to stop at their next check.

        Used by the dispatcher after a deadline/cancellation fires so
        thread-backend morsels still running the pipeline abandon their
        work at the next batch boundary instead of running to completion
        inside ``close()``.
        """
        self.token.cancel()


def make_runtime(
    timeout: Optional[float] = None, cancel: Optional[CancellationToken] = None
) -> Optional[QueryContext]:
    """A :class:`QueryContext` for the given knobs, or None when both unset.

    ``None`` keeps the fast path literally unchanged: no per-batch check
    code runs for queries that asked for no guardrails.
    """
    if timeout is None and cancel is None:
        return None
    return QueryContext(timeout=timeout, cancel=cancel)
