"""Deterministic fault injection for the morsel runtime (chaos testing).

A :class:`FaultPlan` describes *which* morsel fails and *how*, keyed on the
morsel's deterministic submission index (morsel ranges are a pure function
of the plan and the executor configuration, so "kill the worker running
morsel 2" means the same vertex range on every run).  The chaos suite
(``tests/test_fault_injection.py``) uses it to prove the determinism
contract holds *under faults*: results after an injected worker kill, reply
corruption, or delay are byte-identical to the fault-free serial oracle.

Fault kinds:

* ``kill``    — the worker dies while holding the morsel.  In-process
  backends raise :class:`InjectedWorkerCrash`; the process backend worker
  calls ``os._exit`` so the parent sees a *real* dead child (the lost-task
  path, not a pickled exception).
* ``delay``   — the morsel body sleeps before running, modelling a stuck
  worker; used to drive a morsel past its deadline or reply timeout.
* ``corrupt`` — the reply envelope is corrupted after its checksum was
  computed (process backend: a flipped payload byte; in-process backends:
  :class:`InjectedReplyCorruption`, since their replies never cross a
  transport that could corrupt them).
* ``error``   — the morsel body raises a plain ``RuntimeError``, modelling
  a worker-side *bug* rather than a worker *failure*.  Deliberately
  **not** recoverable: retrying a deterministic bug cannot succeed and
  would only mask it, so it propagates (and the pool must still be torn
  down — the leak regression test rides on this fault).

Every fault fires on the morsel's first attempt only, so a retried morsel
succeeds — unless the directive carries the ``!`` suffix (``kill@2!``),
which makes it fire on every attempt and forces the dispatcher all the way
to its in-process serial fallback.

``REPRO_FAULTS`` environment format: comma-separated directives —
``kill@2``, ``delay@0:0.5`` (seconds after the colon), ``corrupt@1``,
``error@3``, each optionally suffixed with ``!``.  The plan ships to
process-pool workers inside the worker payload, so child processes never
read the environment and the injection is identical under every start
method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..errors import ExecutionError

#: Environment variable holding a fault-plan spec for chaos runs.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit code of a process-pool worker killed by an injected fault
#: (distinguishable from a real crash in the worker logs).
FAULT_KILL_EXIT_CODE = 86


class InjectedWorkerCrash(Exception):
    """Raised by an in-process morsel body standing in for a worker death.

    Deliberately NOT a :class:`~repro.errors.ReproError`: it is a test
    harness signal the backends convert into the recoverable
    :class:`~repro.errors.WorkerCrashError`, never a library error a caller
    should see.
    """


class InjectedReplyCorruption(Exception):
    """Raised by an in-process morsel body standing in for a corrupt reply."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic morsel-indexed faults; picklable so it ships to workers.

    Each ``*_morsel`` field is the submission index the fault targets
    (``None`` disables that fault); the matching ``*_every_attempt`` flag
    widens it from first-attempt-only to every retry.
    """

    kill_morsel: Optional[int] = None
    kill_every_attempt: bool = False
    delay_morsel: Optional[int] = None
    delay_seconds: float = 0.0
    delay_every_attempt: bool = False
    corrupt_morsel: Optional[int] = None
    corrupt_every_attempt: bool = False
    error_morsel: Optional[int] = None
    error_every_attempt: bool = False

    # ------------------------------------------------------------------
    # trigger predicates
    # ------------------------------------------------------------------
    @staticmethod
    def _fires(target: Optional[int], every: bool, index: int, attempt: int) -> bool:
        return target is not None and index == target and (every or attempt == 0)

    def kills(self, index: int, attempt: int) -> bool:
        return self._fires(self.kill_morsel, self.kill_every_attempt, index, attempt)

    def delays(self, index: int, attempt: int) -> bool:
        return self._fires(self.delay_morsel, self.delay_every_attempt, index, attempt)

    def corrupts(self, index: int, attempt: int) -> bool:
        return self._fires(
            self.corrupt_morsel, self.corrupt_every_attempt, index, attempt
        )

    def errors(self, index: int, attempt: int) -> bool:
        return self._fires(self.error_morsel, self.error_every_attempt, index, attempt)

    # ------------------------------------------------------------------
    # in-process application (kill/delay/error before the morsel body)
    # ------------------------------------------------------------------
    def apply_before_morsel(self, index: int, attempt: int) -> None:
        """Fire pre-body faults the way an in-process worker experiences them."""
        if self.kills(index, attempt):
            raise InjectedWorkerCrash(
                f"injected worker crash on morsel {index} (attempt {attempt})"
            )
        if self.errors(index, attempt):
            raise RuntimeError(
                f"injected worker error on morsel {index} (attempt {attempt})"
            )
        if self.delays(index, attempt):
            time.sleep(self.delay_seconds)

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """A :class:`FaultPlan` from a ``REPRO_FAULTS``-style spec string.

        Returns None for an empty/absent spec; raises
        :class:`~repro.errors.ExecutionError` on a malformed one (a typo'd
        chaos run must fail loudly, not silently run fault-free).
        """
        if spec is None or not spec.strip():
            return None
        fields: dict = {}
        for raw in spec.split(","):
            directive = raw.strip()
            if not directive:
                continue
            every = directive.endswith("!")
            if every:
                directive = directive[:-1]
            try:
                kind, _, target = directive.partition("@")
                kind = kind.strip().lower()
                if kind == "delay":
                    index_text, _, seconds_text = target.partition(":")
                    index = int(index_text)
                    seconds = float(seconds_text)
                    if seconds < 0:
                        raise ValueError("negative delay")
                    fields.update(
                        delay_morsel=index,
                        delay_seconds=seconds,
                        delay_every_attempt=every,
                    )
                elif kind in ("kill", "corrupt", "error"):
                    index = int(target)
                    fields[f"{kind}_morsel"] = index
                    fields[f"{kind}_every_attempt"] = every
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
                if index < 0:
                    raise ValueError("negative morsel index")
            except ValueError as exc:
                raise ExecutionError(
                    f"malformed fault directive {raw.strip()!r} in "
                    f"${FAULTS_ENV_VAR} spec {spec!r}: expected "
                    "kill@K | delay@K:SECONDS | corrupt@K | error@K "
                    "(optionally suffixed with '!' to fire on every attempt)"
                ) from exc
        return cls(**fields) if fields else None
