"""The top-level database facade.

:class:`Database` wires the pieces together the way GraphflowDB does in the
paper: a property graph, the primary A+ indexes, the INDEX STORE with any
secondary indexes, the DP optimizer, and the batch executor.  It also applies
the index DDL commands (``RECONFIGURE PRIMARY INDEXES``, ``CREATE 1-HOP
VIEW``, ``CREATE 2-HOP VIEW``).

Example:
    >>> from repro import Database
    >>> from repro.graph import running_example_graph
    >>> db = Database(running_example_graph())
    >>> db.execute_ddl(
    ...     "CREATE 1-HOP VIEW UsdWires "
    ...     "MATCH vs-[eadj:Wire]->vd WHERE eadj.currency = USD "
    ...     "INDEX AS FW PARTITION BY eadj.label SORT BY vnbr.ID"
    ... )
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import DDLParseError, ExecutionError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction
from ..index.config import IndexConfig
from ..index.ddl import (
    CreateOneHopCommand,
    CreateTwoHopCommand,
    ReconfigurePrimaryCommand,
    parse_ddl,
)
from ..index.edge_partitioned import EdgePartitionedIndex
from ..index.index_store import IndexStore
from ..index.maintenance import IndexMaintainer
from ..index.primary import PrimaryIndex, ReconfigurationResult
from ..index.vertex_partitioned import VertexPartitionedIndex
from ..index.views import OneHopView, TwoHopView
from ..storage.memory import MemoryReport
from .backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    DEFAULT_BACKEND,
    MORSEL_TIMEOUT_ENV_VAR,
    MorselBackend,
)
from .executor import Executor, MorselExecutor, QueryResult
from .faults import FAULTS_ENV_VAR
from .optimizer import Optimizer
from .pattern import QueryGraph
from .pipeline import validate_limit
from .plan import QueryPlan
from .plan_cache import DEFAULT_PLAN_CACHE_CAPACITY, PlanCache
from .runtime import CancellationToken


@dataclass
class IndexCreationResult:
    """Outcome of creating one or more secondary indexes."""

    names: List[str]
    seconds: float
    indexed_edges: int


#: Environment variable supplying the default worker count of ``Database.run``
#: (used by CI to push the whole test suite through the parallel path).
PARALLELISM_ENV_VAR = "REPRO_PARALLELISM"

# BACKEND_ENV_VAR ("REPRO_BACKEND") now lives in .backends next to the
# registry it selects from; re-exported here for backward compatibility.


class Database:
    """An in-memory GDBMS instance with a tunable A+ indexing subsystem.

    Parallel execution
    ------------------

    ``run``/``count`` accept a ``parallelism`` worker count and a morsel
    dispatch ``backend``.  With the default ``parallelism=1`` the plan runs
    on the serial batch :class:`~repro.query.executor.Executor` — the oracle
    path.  With ``parallelism >= 2`` the plan runs on the morsel-driven
    :class:`~repro.query.executor.MorselExecutor`: the scan's vertex domain
    is split into contiguous range morsels (degree-weighted by default, so
    each morsel carries ~equal adjacency work even on skewed graphs), the
    full operator pipeline runs per morsel on the selected backend —
    ``"thread"`` (default; numpy kernels release the GIL), ``"process"``
    (a ``multiprocessing`` pool with per-worker plan/graph rehydration,
    sidestepping the GIL entirely), or ``"serial"`` (inline, for debugging
    morsel bookkeeping) — and the per-morsel outputs are merged in
    ascending range order.  Every backend's result is byte-identical to the
    serial one — same match rows, same order, same
    :class:`~repro.query.operators.ExecutionStats` — so both knobs trade
    only wall-clock time, never semantics.  Per-instance defaults come from
    the constructor's ``parallelism``/``backend`` or, failing that, the
    ``REPRO_PARALLELISM``/``REPRO_BACKEND`` environment variables.

    Queries capture an atomic snapshot of the index store when planned, so
    running queries concurrently with an
    :class:`~repro.index.maintenance.IndexMaintainer` flush is safe: each
    query sees one complete store generation, never a partially merged index.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        primary_config: Optional[IndexConfig] = None,
        batch_size: int = 1024,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        plan_cache_capacity: Optional[int] = None,
    ) -> None:
        self._primary = PrimaryIndex(graph, config=primary_config)
        self.store = IndexStore(graph, self._primary)
        self.batch_size = batch_size
        self.parallelism = parallelism
        self.backend = backend
        #: Memoized planning for QueryGraph submissions: an LRU keyed on
        #: (canonical fingerprint, store generation, planning knobs), so
        #: repeated hot patterns plan once per store generation and reuse
        #: the *same* pinned plan object (:mod:`repro.query.plan_cache`).
        #: ``plan_cache_capacity=0`` disables it.
        self.plan_cache = PlanCache(
            DEFAULT_PLAN_CACHE_CAPACITY
            if plan_cache_capacity is None
            else plan_cache_capacity
        )

    def _resolve_parallelism(self, parallelism: Optional[int]) -> int:
        """Effective worker count: call arg > instance default > env > 1."""
        if parallelism is None:
            parallelism = self.parallelism
        if parallelism is None:
            raw = os.environ.get(PARALLELISM_ENV_VAR, "").strip()
            if raw:
                try:
                    parallelism = int(raw)
                except ValueError as exc:
                    raise ExecutionError(
                        f"${PARALLELISM_ENV_VAR} must be an integer worker "
                        f"count, got {raw!r}"
                    ) from exc
            else:
                parallelism = 1
        if parallelism < 1:
            raise ExecutionError(f"parallelism must be >= 1, got {parallelism}")
        return int(parallelism)

    def _resolve_backend(self, backend: Optional[str]) -> str:
        """Effective dispatch backend name: call arg > instance > env > thread.

        Only registry *names* are accepted here (a fresh backend object is
        constructed per execution from the name): a ``MorselBackend``
        *instance* is stateful per-execute, and a shared ``Database`` runs
        queries concurrently, so one instance serving several in-flight
        queries would clobber its own pool.  Callers who really want to
        supply an instance (custom backends, tests) construct a
        :class:`~repro.query.executor.MorselExecutor` directly and own its
        concurrency.
        """
        if backend is None:
            backend = self.backend
        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
        if isinstance(backend, MorselBackend):
            raise ExecutionError(
                "Database accepts morsel backend *names* "
                f"({sorted(BACKENDS)}), not instances — a backend instance "
                "is stateful per-execute and cannot serve concurrent "
                "queries; build a MorselExecutor directly to use one"
            )
        backend = str(backend).strip().lower()
        if backend not in BACKENDS:
            raise ExecutionError(
                f"unknown morsel backend {backend!r} "
                f"(from backend=/${BACKEND_ENV_VAR}); "
                f"available: {sorted(BACKENDS)}"
            )
        return backend

    def _make_executor(
        self,
        graph: PropertyGraph,
        workers: int,
        backend: Optional[str] = None,
    ) -> Union[Executor, MorselExecutor]:
        # Resolve (and thereby validate) the backend even on the serial
        # path, so a typo'd backend=/REPRO_BACKEND surfaces at the call
        # that configured it rather than when parallelism is later raised.
        backend = self._resolve_backend(backend)
        if workers == 1:
            return Executor(graph, batch_size=self.batch_size)
        return MorselExecutor(
            graph,
            batch_size=self.batch_size,
            num_workers=workers,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        """The current graph (follows index maintenance merges)."""
        return self.store.graph

    @property
    def primary_index(self) -> PrimaryIndex:
        return self.store.primary

    def executor(
        self,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> Union[Executor, MorselExecutor]:
        """An executor over the current graph (parallel when workers > 1).

        The graph is read from one store snapshot; pair it with a plan
        produced against the same generation (as :meth:`run` does) when
        maintenance flushes may run concurrently.
        """
        return self._make_executor(
            self.store.snapshot().graph,
            self._resolve_parallelism(parallelism),
            backend,
        )

    def optimizer(self) -> Optimizer:
        return Optimizer(self.store)

    def maintainer(
        self,
        merge_threshold: int = 4096,
        columnar: bool = True,
        incremental: bool = True,
    ) -> IndexMaintainer:
        return IndexMaintainer(
            self.store,
            merge_threshold=merge_threshold,
            columnar=columnar,
            incremental=incremental,
        )

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def reconfigure_primary(self, config: IndexConfig) -> ReconfigurationResult:
        """Rebuild the primary A+ indexes under a new configuration.

        The replacement primary is built off to the side and installed with
        one atomic store swap (like a maintenance flush), so a query racing
        the reconfiguration snapshots either the old or the new primary —
        never the forward index of one configuration paired with the
        backward index of the other.
        """
        state = self.store.state
        old_config = state.primary.config
        started = time.perf_counter()
        new_primary = PrimaryIndex(state.graph, config=config)
        self.store.install_state(
            graph=state.graph,
            primary=new_primary,
            statistics=state.statistics,
            vertex_indexes=state.vertex_indexes,
            edge_indexes=state.edge_indexes,
        )
        return ReconfigurationResult(
            old_config=old_config,
            new_config=config,
            seconds=time.perf_counter() - started,
        )

    def create_vertex_index(
        self,
        view: OneHopView,
        directions: Sequence[Direction] = (Direction.FORWARD,),
        config: Optional[IndexConfig] = None,
        name: Optional[str] = None,
    ) -> IndexCreationResult:
        """Create (and register) a secondary vertex-partitioned index."""
        config = config or IndexConfig.default()
        started = time.perf_counter()
        names: List[str] = []
        indexed = 0
        for direction in directions:
            index_name = name
            if index_name is not None and len(directions) > 1:
                index_name = f"{name}-{direction.value}"
            index = VertexPartitionedIndex(
                self.graph,
                view,
                direction,
                config,
                self.store.primary.for_direction(direction),
                name=index_name,
            )
            self.store.register_vertex_index(index)
            names.append(index.name)
            indexed += index.num_indexed_edges
        return IndexCreationResult(
            names=names, seconds=time.perf_counter() - started, indexed_edges=indexed
        )

    def create_edge_index(
        self,
        view: TwoHopView,
        config: Optional[IndexConfig] = None,
        name: Optional[str] = None,
    ) -> IndexCreationResult:
        """Create (and register) a secondary edge-partitioned index."""
        config = config or IndexConfig.default()
        started = time.perf_counter()
        index = EdgePartitionedIndex(self.graph, view, config, self.store.primary, name=name)
        self.store.register_edge_index(index)
        return IndexCreationResult(
            names=[index.name],
            seconds=time.perf_counter() - started,
            indexed_edges=index.num_indexed_edges,
        )

    def drop_index(self, name: str) -> None:
        self.store.drop_index(name)

    def execute_ddl(self, command: str):
        """Parse and apply one index DDL command.

        Returns the result object of the underlying operation
        (:class:`ReconfigurationResult` or :class:`IndexCreationResult`).
        """
        parsed = parse_ddl(command)
        if isinstance(parsed, ReconfigurePrimaryCommand):
            return self.reconfigure_primary(parsed.config)
        if isinstance(parsed, CreateOneHopCommand):
            return self.create_vertex_index(
                parsed.view, directions=parsed.directions, config=parsed.config
            )
        if isinstance(parsed, CreateTwoHopCommand):
            return self.create_edge_index(parsed.view, config=parsed.config)
        raise DDLParseError(f"unsupported DDL command: {command!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def plan(self, query: QueryGraph) -> QueryPlan:
        """Optimize a query into a physical plan (plan-cache aware).

        The plan is pinned to the store generation it was planned against
        (``plan.store_snapshot``): running it later — even after maintenance
        flushes — executes against that generation's graph, keeping the
        plan's index references and the executed graph coherent.

        Planning consults :attr:`plan_cache`: a structurally identical query
        already planned against the *current* store generation returns the
        same pinned plan object without re-running the optimizer.  Any store
        change (flush, reconfiguration, index DDL) bumps the generation, so
        the next ``plan`` of the pattern re-plans against the new state.
        """
        plan, _snapshot, _hit = self._pinned_plan(query)
        return plan

    def _pinned_plan(self, query: Union[QueryGraph, QueryPlan]):
        """Resolve (plan, snapshot, cache_hit) on one coherent generation.

        A concurrent maintenance flush must never be observed half-merged: a
        pre-built plan supplies the generation it was planned against (its
        legs reference that generation's indexes; executing it against a
        newer graph would mix edge IDs across flush remappings), otherwise
        the current generation is captured here and the plan cache consulted
        under it — a hit returns the entry's own pinned snapshot, which
        denotes the same immutable store state the key's generation does.
        Pre-built plans bypass the cache entirely (their pinned-replay
        semantics are the caller's explicit choice); ``cache_hit`` is False
        for them.
        """
        if isinstance(query, QueryPlan):
            plan = query
            snapshot = (
                plan.store_snapshot
                if plan.store_snapshot is not None
                else self.store.snapshot()
            )
            return plan, snapshot, False
        snapshot = self.store.snapshot()

        def _plan_fresh() -> QueryPlan:
            fresh = Optimizer(snapshot).optimize(query)
            fresh.store_snapshot = snapshot
            return fresh

        plan, hit = self.plan_cache.get_or_plan(
            query, snapshot.state.generation, _plan_fresh
        )
        if hit:
            snapshot = plan.store_snapshot
        return plan, snapshot, hit

    def run(
        self,
        query: Union[QueryGraph, QueryPlan],
        materialize: bool = False,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        factorized: Optional[bool] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
    ) -> QueryResult:
        """Plan (if needed) and execute a query.

        Args:
            query: a query graph (planned here against an atomic store
                snapshot) or an already-built plan, which is executed against
                the generation pinned in its ``store_snapshot`` (its legs
                reference that generation's indexes; executing it against a
                newer graph would mix edge IDs across flush remappings).
            materialize: also collect the matches as dictionaries.
            parallelism: worker count; ``1`` (the default) runs serially,
                ``>= 2`` runs the morsel-driven parallel executor.  The
                output is byte-identical either way.
            backend: morsel dispatch backend for ``parallelism >= 2`` —
                ``"serial"``, ``"thread"`` (default), or ``"process"``.
                Output is byte-identical across backends.
            factorized: ``None``/``False`` runs the flat pipeline (the
                default — ``run`` keeps flat row semantics and stats);
                ``True`` runs the factorized count-only pipeline: the
                result's ``count`` and factorized stats
                (``combos_avoided``, ``segments_emitted``) are filled, no
                rows are materialized, and the plan must have a
                factorizable suffix (incompatible with ``materialize``).
            timeout: wall-clock budget in seconds; a query that exceeds it
                raises :class:`~repro.errors.QueryTimeoutError` (with the
                partial stats attached) at its next check point — between
                batches/morsels, or within one poll interval when a worker
                is stuck.  A finished run records the unused budget in
                ``result.stats.deadline_remaining``.
            cancel: a :class:`~repro.query.runtime.CancellationToken`;
                triggering it from any thread stops the query at its next
                check point with :class:`~repro.errors.QueryCancelledError`.
        """
        workers = self._resolve_parallelism(parallelism)
        plan, snapshot, _cache_hit = self._pinned_plan(query)
        return self._make_executor(snapshot.graph, workers, backend).run(
            plan,
            materialize=materialize,
            factorized=factorized,
            timeout=timeout,
            cancel=cancel,
        )

    def count(
        self,
        query: Union[QueryGraph, QueryPlan],
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        factorized: Optional[bool] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
    ) -> int:
        """Number of matches of a query (factorized when the plan allows).

        With the default ``factorized=None`` the count is computed with
        aggregate pushdown whenever the plan has a factorizable terminal
        suffix — trailing extension combinations stay unexpanded and the
        count is the per-row product of their cardinalities — and falls
        back to the flat pipeline otherwise.  ``factorized=False`` forces
        the flat oracle path; ``True`` requires a factorizable plan.  The
        returned count is identical on every path and backend.
        ``timeout``/``cancel`` behave as in :meth:`run`.
        """
        workers = self._resolve_parallelism(parallelism)
        plan, snapshot, _cache_hit = self._pinned_plan(query)
        return self._make_executor(snapshot.graph, workers, backend).count(
            plan, factorized=factorized, timeout=timeout, cancel=cancel
        )

    def collect(
        self,
        query: Union[QueryGraph, QueryPlan],
        limit: Optional[int] = None,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
    ) -> List[Dict[str, int]]:
        """Matches as dictionaries; ``limit`` short-circuits the pipeline.

        A ``limit`` drains through the streaming
        :class:`~repro.query.pipeline.LimitSink`: the pipeline halts as
        soon as the limit is reached — mid-batch, and under
        ``parallelism >= 2`` mid-morsel (no further morsel is dispatched) —
        while the returned prefix stays byte-identical to the unlimited
        run's first ``limit`` matches on every backend.  ``limit=None``
        is unlimited and ``limit=0`` a legal empty result; a negative
        limit raises :class:`~repro.errors.ExecutionError` (validated
        here like ``parallelism`` is, before any planning happens).
        ``timeout``/``cancel`` behave as in :meth:`run`.
        """
        validate_limit(limit)
        workers = self._resolve_parallelism(parallelism)
        plan, snapshot, _cache_hit = self._pinned_plan(query)
        return self._make_executor(snapshot.graph, workers, backend).collect(
            plan, limit=limit, timeout=timeout, cancel=cancel
        )

    def exists(
        self,
        query: Union[QueryGraph, QueryPlan],
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
    ) -> bool:
        """Whether the query has any match (streaming, first-match early-out).

        Drains through :class:`~repro.query.pipeline.ExistsSink`: the
        first non-empty batch halts the pipeline and (under
        ``parallelism >= 2``) stops morsel dispatch, so nothing beyond the
        first match is ever computed.  ``timeout``/``cancel`` behave as in
        :meth:`run`.
        """
        workers = self._resolve_parallelism(parallelism)
        plan, snapshot, _cache_hit = self._pinned_plan(query)
        return self._make_executor(snapshot.graph, workers, backend).exists(
            plan, timeout=timeout, cancel=cancel
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def server(self, config=None):
        """An admission-controlled :class:`~repro.server.DatabaseServer`.

        The long-lived service shape of this database: persistent worker
        pools shared across queries, a bounded admission queue with a
        configurable overload policy, and graceful drain.  ``config`` is a
        :class:`~repro.server.ServerConfig` (defaults apply when omitted).
        Use as a context manager — exit drains::

            with db.server() as server:
                result = server.run(query, timeout=5.0)
        """
        from ..server import DatabaseServer

        return DatabaseServer(self, config)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def memory_report(self) -> MemoryReport:
        """Byte-accurate accounting of every index in the store."""
        report = MemoryReport()
        for breakdown in self.store.memory_breakdowns():
            report.add(breakdown)
        return report

    def describe(self) -> str:
        lines = [self.graph.describe(), self.store.describe()]
        default = self._resolve_parallelism(None)
        backend_name = self._resolve_backend(None)
        lines.append(
            "Pipeline (physical execution):\n"
            "  plans compile to Source -> [stages] -> Sink "
            "(repro.query.pipeline): a leading\n"
            "  vertex scan, extend-intersect / multi-extend / filter stages "
            "labelled\n"
            "  '0:scan', '1:extend', ... (plan.describe() lists the logical "
            "operators), and\n"
            "  a first-class push-style sink — CountSink, FlattenSink, or "
            "the streaming\n"
            "  LimitSink / ExistsSink that never materialize beyond need.  "
            "Halt semantics:\n"
            "  a sink's push() returning False stops the pipeline "
            "mid-stream, across\n"
            "  batches and across morsels — collect(limit=) and exists() "
            "stop dispatching\n"
            "  morsels once satisfied (stats.morsels_dispatched records how "
            "many went out).\n"
            "  Per-operator stats: every stage boundary is timed "
            "(injectable monotonic\n"
            "  clock); stats.operator_seconds maps stage labels to "
            "exclusive wall time\n"
            "  (summing to the pipeline total) and stats.operator_batches "
            "counts emitted\n"
            "  batches — on every backend, surviving the process workers' "
            "columnar stats\n"
            "  transport, and excluded from the byte-identity contract "
            "below."
        )
        lines.append(
            "Parallel execution:\n"
            f"  default parallelism: {default} "
            f"(constructor parallelism= or ${PARALLELISM_ENV_VAR}; "
            "run()/count() accept a per-query override)\n"
            f"  default backend: {backend_name} "
            f"(constructor backend= or ${BACKEND_ENV_VAR}; "
            f"available: {', '.join(sorted(BACKENDS))})\n"
            "  parallelism=1 runs the serial batch executor (the oracle); "
            ">=2 runs the\n"
            "  morsel-driven dispatcher: the scan domain is cut into "
            "contiguous vertex-range\n"
            "  morsels (degree-weighted via the primary CSR offsets, so "
            "each morsel carries\n"
            "  ~equal adjacency work on skewed graphs), the full pipeline "
            "runs per morsel on\n"
            "  the selected backend — serial (inline), thread (GIL-releasing "
            "numpy kernels),\n"
            "  or process (multiprocessing pool: plan+graph rehydrated once "
            "per worker,\n"
            "  per-morsel task specs out, columnar numpy buffers back) — "
            "and outputs merge\n"
            "  in ascending range order.  Determinism contract: matches, "
            "order, and stats\n"
            "  are byte-identical to the serial run for every backend, "
            "weighting, morsel\n"
            "  size, and worker count."
        )
        lines.append(
            "Factorized execution (aggregate pushdown):\n"
            "  count() computes aggregate-only queries without expanding the "
            "combination\n"
            "  cross-product: when a plan ends in a run of vectorized "
            "extensions with no\n"
            "  post-predicates and no cross-dependencies (its factorizable "
            "suffix, reported\n"
            "  by plan.describe()), those operators emit per-row cardinality "
            "segments and\n"
            "  the count is the per-prefix-row product of segment sizes.  "
            "Opt out with\n"
            "  count(query, factorized=False) — the flat oracle path; "
            "run()/collect() stay\n"
            "  flat unless run(factorized=True) is requested.  Determinism "
            "contract: the\n"
            "  count is identical on every path, backend, and worker count; "
            "result.stats\n"
            "  reports combos_avoided (flat rows never materialized) and "
            "segments_emitted."
        )
        lines.append(
            "Robustness (fault-tolerant query runtime):\n"
            "  run()/count() accept timeout= (wall-clock seconds; raises "
            "QueryTimeoutError\n"
            "  with partial stats attached) and cancel= (a "
            "CancellationToken; trigger it\n"
            "  from any thread to raise QueryCancelledError).  Checks are "
            "cooperative —\n"
            "  between batches and between morsels — and the parallel "
            "backends poll their\n"
            "  blocking waits, so deadlines fire even while a worker is "
            "stuck.\n"
            "  The process backend recovers from worker crashes: a dead "
            "worker, a reply\n"
            "  missing past the per-morsel backstop "
            f"(${MORSEL_TIMEOUT_ENV_VAR}), or a reply\n"
            "  failing its checksum loses only that morsel, which is "
            "retried and finally\n"
            "  re-executed serially in-process — results stay "
            "byte-identical to a\n"
            "  fault-free run; stats.retries / stats.morsels_recovered "
            "record the recovery.\n"
            f"  Chaos knob: ${FAULTS_ENV_VAR} (kill@K | delay@K:SECS | "
            "corrupt@K | error@K,\n"
            "  '!' suffix = every attempt) injects deterministic faults "
            "for testing."
        )
        from ..server.admission import ServerConfig

        defaults = ServerConfig()
        lines.append(
            "Server (admission-controlled service mode):\n"
            "  db.server() wraps this database in a long-lived "
            "DatabaseServer: persistent\n"
            "  worker pools shared across queries (keyed on (backend, "
            "parallelism); payloads\n"
            "  re-shipped lazily per (plan id, store generation); crashed "
            "pools recycled\n"
            "  behind a circuit breaker that degrades to serial execution), "
            "plus bounded\n"
            "  admission: max_concurrent execution slots, a max_queue_depth "
            "queue, and a\n"
            f"  full-queue policy of 'reject' (typed ServerOverloadedError), "
            "'shed-oldest',\n"
            "  or 'block'.  Deadlines are fixed at submission, so queue "
            "wait spends the\n"
            "  query's own budget, and expired queued queries are shed "
            "without a slot.\n"
            "  drain() cancels queued queries, finishes running ones, and "
            "closes pools\n"
            "  leak-free.  Defaults: slots="
            f"{defaults.max_concurrent}, queue depth="
            f"{defaults.max_queue_depth}, policy={defaults.policy!r},\n"
            f"  breaker threshold={defaults.breaker_threshold} / cooldown="
            f"{defaults.breaker_cooldown:g}s.  Determinism contract: an\n"
            "  admitted query's result is byte-identical to a direct "
            "Database.run()."
        )
        cache_counters = self.plan_cache.stats.snapshot()
        lines.append(
            "Plan cache (canonical query fingerprints):\n"
            "  QueryGraph submissions are memoized: plan()/run()/count()/"
            "collect()/exists()\n"
            "  (and the server's submit()) consult an LRU keyed on (query "
            "fingerprint,\n"
            "  store generation, planning knobs).  The fingerprint is a "
            "canonical label of\n"
            "  the pattern — vertices, edges, labels, directions, "
            "predicates — so renaming\n"
            "  variables or reordering insertion hits the same entry; any "
            "store change\n"
            "  (maintenance flush, reconfiguration, index DDL) bumps the "
            "generation, which\n"
            "  invalidates for free: the next submission re-plans against "
            "the new state.\n"
            "  Hits return the *same* pinned plan object, so the server "
            "pools' payload\n"
            "  registry (keyed on plan identity) skips re-pickling too.  "
            "Pre-built\n"
            "  QueryPlan submissions bypass the cache (pinned-generation "
            "replay).\n"
            "  Determinism contract: a cache-hit execution is "
            "byte-identical to a\n"
            "  fresh-planned one on every backend.\n"
            f"  capacity: {self.plan_cache.capacity} entries "
            "(constructor plan_cache_capacity=; 0 disables), "
            f"current: {len(self.plan_cache)}\n"
            "  counters: "
            + ", ".join(f"{k}={v}" for k, v in cache_counters.items())
        )
        return "\n".join(lines)
