"""The top-level database facade.

:class:`Database` wires the pieces together the way GraphflowDB does in the
paper: a property graph, the primary A+ indexes, the INDEX STORE with any
secondary indexes, the DP optimizer, and the batch executor.  It also applies
the index DDL commands (``RECONFIGURE PRIMARY INDEXES``, ``CREATE 1-HOP
VIEW``, ``CREATE 2-HOP VIEW``).

Example:
    >>> from repro import Database
    >>> from repro.graph import running_example_graph
    >>> db = Database(running_example_graph())
    >>> db.execute_ddl(
    ...     "CREATE 1-HOP VIEW UsdWires "
    ...     "MATCH vs-[eadj:Wire]->vd WHERE eadj.currency = USD "
    ...     "INDEX AS FW PARTITION BY eadj.label SORT BY vnbr.ID"
    ... )
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import DDLParseError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction
from ..index.config import IndexConfig
from ..index.ddl import (
    CreateOneHopCommand,
    CreateTwoHopCommand,
    ReconfigurePrimaryCommand,
    parse_ddl,
)
from ..index.edge_partitioned import EdgePartitionedIndex
from ..index.index_store import IndexStore
from ..index.maintenance import IndexMaintainer
from ..index.primary import PrimaryIndex, ReconfigurationResult
from ..index.vertex_partitioned import VertexPartitionedIndex
from ..index.views import OneHopView, TwoHopView
from ..storage.memory import MemoryReport
from .executor import Executor, QueryResult
from .optimizer import Optimizer
from .pattern import QueryGraph
from .plan import QueryPlan


@dataclass
class IndexCreationResult:
    """Outcome of creating one or more secondary indexes."""

    names: List[str]
    seconds: float
    indexed_edges: int


class Database:
    """An in-memory GDBMS instance with a tunable A+ indexing subsystem."""

    def __init__(
        self,
        graph: PropertyGraph,
        primary_config: Optional[IndexConfig] = None,
        batch_size: int = 1024,
    ) -> None:
        self._primary = PrimaryIndex(graph, config=primary_config)
        self.store = IndexStore(graph, self._primary)
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        """The current graph (follows index maintenance merges)."""
        return self.store.graph

    @property
    def primary_index(self) -> PrimaryIndex:
        return self.store.primary

    def executor(self) -> Executor:
        return Executor(self.graph, batch_size=self.batch_size)

    def optimizer(self) -> Optimizer:
        return Optimizer(self.store)

    def maintainer(
        self,
        merge_threshold: int = 4096,
        columnar: bool = True,
        incremental: bool = True,
    ) -> IndexMaintainer:
        return IndexMaintainer(
            self.store,
            merge_threshold=merge_threshold,
            columnar=columnar,
            incremental=incremental,
        )

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def reconfigure_primary(self, config: IndexConfig) -> ReconfigurationResult:
        """Rebuild the primary A+ indexes under a new configuration."""
        return self.store.primary.reconfigure(config)

    def create_vertex_index(
        self,
        view: OneHopView,
        directions: Sequence[Direction] = (Direction.FORWARD,),
        config: Optional[IndexConfig] = None,
        name: Optional[str] = None,
    ) -> IndexCreationResult:
        """Create (and register) a secondary vertex-partitioned index."""
        config = config or IndexConfig.default()
        started = time.perf_counter()
        names: List[str] = []
        indexed = 0
        for direction in directions:
            index_name = name
            if index_name is not None and len(directions) > 1:
                index_name = f"{name}-{direction.value}"
            index = VertexPartitionedIndex(
                self.graph,
                view,
                direction,
                config,
                self.store.primary.for_direction(direction),
                name=index_name,
            )
            self.store.register_vertex_index(index)
            names.append(index.name)
            indexed += index.num_indexed_edges
        return IndexCreationResult(
            names=names, seconds=time.perf_counter() - started, indexed_edges=indexed
        )

    def create_edge_index(
        self,
        view: TwoHopView,
        config: Optional[IndexConfig] = None,
        name: Optional[str] = None,
    ) -> IndexCreationResult:
        """Create (and register) a secondary edge-partitioned index."""
        config = config or IndexConfig.default()
        started = time.perf_counter()
        index = EdgePartitionedIndex(self.graph, view, config, self.store.primary, name=name)
        self.store.register_edge_index(index)
        return IndexCreationResult(
            names=[index.name],
            seconds=time.perf_counter() - started,
            indexed_edges=index.num_indexed_edges,
        )

    def drop_index(self, name: str) -> None:
        self.store.drop_index(name)

    def execute_ddl(self, command: str):
        """Parse and apply one index DDL command.

        Returns the result object of the underlying operation
        (:class:`ReconfigurationResult` or :class:`IndexCreationResult`).
        """
        parsed = parse_ddl(command)
        if isinstance(parsed, ReconfigurePrimaryCommand):
            return self.reconfigure_primary(parsed.config)
        if isinstance(parsed, CreateOneHopCommand):
            return self.create_vertex_index(
                parsed.view, directions=parsed.directions, config=parsed.config
            )
        if isinstance(parsed, CreateTwoHopCommand):
            return self.create_edge_index(parsed.view, config=parsed.config)
        raise DDLParseError(f"unsupported DDL command: {command!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def plan(self, query: QueryGraph) -> QueryPlan:
        """Optimize a query into a physical plan."""
        return self.optimizer().optimize(query)

    def run(
        self, query: Union[QueryGraph, QueryPlan], materialize: bool = False
    ) -> QueryResult:
        """Plan (if needed) and execute a query."""
        plan = query if isinstance(query, QueryPlan) else self.plan(query)
        return self.executor().run(plan, materialize=materialize)

    def count(self, query: Union[QueryGraph, QueryPlan]) -> int:
        """Number of matches of a query."""
        return self.run(query).count

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def memory_report(self) -> MemoryReport:
        """Byte-accurate accounting of every index in the store."""
        report = MemoryReport()
        for breakdown in self.store.memory_breakdowns():
            report.add(breakdown)
        return report

    def describe(self) -> str:
        lines = [self.graph.describe(), self.store.describe()]
        return "\n".join(lines)
