"""Plan execution.

The :class:`Executor` drives a :class:`~repro.query.plan.QueryPlan`'s operator
pipeline over a property graph, producing partial-match batches and exposing
convenience entry points for counting or collecting the matches.  Matching
semantics is *homomorphism*: distinct query variables may bind to the same
graph element unless the query predicate forbids it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..graph.graph import PropertyGraph
from .binding import DEFAULT_BATCH_SIZE, MatchBatch
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    Filter,
    MultiExtend,
    ScanVertices,
)
from .plan import QueryPlan


@dataclass
class QueryResult:
    """Materialized result of a query execution."""

    matches: List[Dict[str, int]]
    count: int
    seconds: float
    stats: ExecutionStats

    def __len__(self) -> int:
        return self.count


class Executor:
    """Executes query plans over one property graph."""

    def __init__(self, graph: PropertyGraph, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.graph = graph
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    # streaming execution
    # ------------------------------------------------------------------
    def execute(
        self, plan: QueryPlan, stats: Optional[ExecutionStats] = None
    ) -> Iterator[MatchBatch]:
        """Yield batches of matches produced by the plan."""
        context = ExecutionContext(
            graph=self.graph,
            query=plan.query,
            batch_size=self.batch_size,
            stats=stats or ExecutionStats(),
        )
        scan = plan.operators[0]
        assert isinstance(scan, ScanVertices)
        stream: Iterator[MatchBatch] = scan.execute(context)
        for operator in plan.operators[1:]:
            if isinstance(operator, (ExtendIntersect, MultiExtend, Filter)):
                stream = operator.execute(stream, context)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported operator {type(operator).__name__}")
        for batch in stream:
            context.stats.output_rows += len(batch)
            yield batch

    # ------------------------------------------------------------------
    # convenience entry points
    # ------------------------------------------------------------------
    def count(self, plan: QueryPlan) -> int:
        """Number of matches produced by the plan."""
        total = 0
        for batch in self.execute(plan):
            total += len(batch)
        return total

    def collect(self, plan: QueryPlan, limit: Optional[int] = None) -> List[Dict[str, int]]:
        """Materialize matches as dictionaries (optionally limited)."""
        matches: List[Dict[str, int]] = []
        for batch in self.execute(plan):
            matches.extend(batch.to_dicts())
            if limit is not None and len(matches) >= limit:
                return matches[:limit]
        return matches

    def run(self, plan: QueryPlan, materialize: bool = False) -> QueryResult:
        """Execute a plan, timing it and gathering execution statistics."""
        stats = ExecutionStats()
        started = time.perf_counter()
        matches: List[Dict[str, int]] = []
        count = 0
        for batch in self.execute(plan, stats=stats):
            count += len(batch)
            if materialize:
                matches.extend(batch.to_dicts())
        elapsed = time.perf_counter() - started
        return QueryResult(matches=matches, count=count, seconds=elapsed, stats=stats)
