"""Plan execution: the serial executor and the morsel-driven dispatcher.

The :class:`Executor` drives a :class:`~repro.query.plan.QueryPlan`'s operator
pipeline over a property graph, producing partial-match batches and exposing
convenience entry points for counting or collecting the matches.  Matching
semantics is *homomorphism*: distinct query variables may bind to the same
graph element unless the query predicate forbids it.

Morsel-driven parallel execution
--------------------------------

:class:`MorselExecutor` parallelizes a plan the way morsel-driven schedulers
(Leis et al.) do: the scan's candidate domain — the vertex-ID range of the
leading :class:`~repro.query.operators.ScanVertices` — is split into
contiguous *morsels*, and the **full operator pipeline** runs per morsel on a
thread pool.  Every operator is already batch-at-a-time and stateless (the
scan is cloned per morsel with an explicit ``vertex_range``; extension and
filter operators share immutable configuration and index references), so no
operator semantics change: each morsel's pipeline is exactly the serial
pipeline over a sub-range of the scan.

Two properties make this profitable and safe in pure Python + numpy:

* the hot kernels (``NestedCSR.gather``, ``intersect_segments``, vectorized
  predicate masks) spend their time inside numpy, which releases the GIL for
  its inner loops, so threads overlap on multi-core machines;
* inside a morsel the dispatcher runs the pipeline with a *coalesced* batch
  size (``coalesce`` × the configured batch size), so several serial-sized
  batches are joined per kernel call — the larger-than-batch intersection
  the kernels were built for — without changing the produced rows.

**Determinism.**  Extension operators emit output rows in input-row order and
batch boundaries never affect which rows are produced (the batch kernels are
row-segmented), so the concatenation of per-morsel outputs in ascending
range order is *byte-identical* to the serial executor's output: same match
rows in the same order, and — because every stats counter is per-row
accounting — identical :class:`~repro.query.operators.ExecutionStats`.
``parallelism=1`` (the default everywhere) bypasses the dispatcher entirely
and remains the oracle the parallel path is tested against.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ExecutionError
from ..graph.graph import PropertyGraph
from .binding import DEFAULT_BATCH_SIZE, MatchBatch
from .operators import (
    ExecutionContext,
    ExecutionStats,
    ExtendIntersect,
    Filter,
    MultiExtend,
    ScanVertices,
)
from .plan import QueryPlan


@dataclass
class QueryResult:
    """Materialized result of a query execution."""

    matches: List[Dict[str, int]]
    count: int
    seconds: float
    stats: ExecutionStats

    def __len__(self) -> int:
        return self.count


def _run_pipeline(
    plan: QueryPlan, context: ExecutionContext, scan: Optional[ScanVertices] = None
) -> Iterator[MatchBatch]:
    """Drive the plan's operator pipeline under ``context``.

    ``scan`` optionally replaces the plan's leading scan operator (the morsel
    dispatcher substitutes a range-restricted clone); the remaining operators
    are shared as-is — they are stateless between calls.
    """
    lead = scan if scan is not None else plan.operators[0]
    assert isinstance(lead, ScanVertices)
    stream: Iterator[MatchBatch] = lead.execute(context)
    for operator in plan.operators[1:]:
        if isinstance(operator, (ExtendIntersect, MultiExtend, Filter)):
            stream = operator.execute(stream, context)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported operator {type(operator).__name__}")
    for batch in stream:
        context.stats.output_rows += len(batch)
        yield batch


class PlanRunner:
    """Shared count/collect/run entry points over an ``execute`` stream.

    Subclasses provide ``execute(plan, stats=None) -> Iterator[MatchBatch]``;
    the convenience entry points here consume that stream identically for
    the serial and the morsel-driven executor, so their result contracts
    cannot drift apart.
    """

    def execute(
        self, plan: QueryPlan, stats: Optional[ExecutionStats] = None
    ) -> Iterator[MatchBatch]:
        raise NotImplementedError

    def count(self, plan: QueryPlan) -> int:
        """Number of matches produced by the plan."""
        total = 0
        for batch in self.execute(plan):
            total += len(batch)
        return total

    def collect(self, plan: QueryPlan, limit: Optional[int] = None) -> List[Dict[str, int]]:
        """Materialize matches as dictionaries (optionally limited)."""
        matches: List[Dict[str, int]] = []
        for batch in self.execute(plan):
            matches.extend(batch.to_dicts())
            if limit is not None and len(matches) >= limit:
                return matches[:limit]
        return matches

    def run(self, plan: QueryPlan, materialize: bool = False) -> QueryResult:
        """Execute a plan, timing it and gathering execution statistics."""
        stats = ExecutionStats()
        started = time.perf_counter()
        matches: List[Dict[str, int]] = []
        count = 0
        for batch in self.execute(plan, stats=stats):
            count += len(batch)
            if materialize:
                matches.extend(batch.to_dicts())
        elapsed = time.perf_counter() - started
        return QueryResult(matches=matches, count=count, seconds=elapsed, stats=stats)


class Executor(PlanRunner):
    """Executes query plans serially over one property graph."""

    def __init__(self, graph: PropertyGraph, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.graph = graph
        self.batch_size = batch_size

    def execute(
        self, plan: QueryPlan, stats: Optional[ExecutionStats] = None
    ) -> Iterator[MatchBatch]:
        """Yield batches of matches produced by the plan."""
        context = ExecutionContext(
            graph=self.graph,
            query=plan.query,
            batch_size=self.batch_size,
            stats=stats or ExecutionStats(),
        )
        yield from _run_pipeline(plan, context)


#: Morsels handed out per worker (load-balancing granularity of the default
#: morsel size: more morsels than workers lets fast workers steal the tail).
MORSELS_PER_WORKER = 4

#: Serial-sized batches coalesced into one in-flight batch inside a morsel.
#: Larger batches amortize the per-kernel-call Python overhead (one gather /
#: one ``intersect_segments`` call covers ``coalesce`` × ``batch_size`` rows),
#: but past ~2 the extension operators' intermediates outgrow the caches and
#: the kernels slow down more than the amortization saves (measured on the
#: two-leg WCOJ shape of ``benchmarks/bench_extend_throughput.py``).
DEFAULT_COALESCE = 2


#: In-flight morsels per worker: bounds how many completed-but-unconsumed
#: morsel results can be buffered at once, so memory stays proportional to
#: the window (× the largest morsel output), not to the whole query result.
MORSEL_WINDOW_PER_WORKER = 2


class MorselExecutor(PlanRunner):
    """Morsel-driven parallel plan execution with deterministic merge order.

    Args:
        graph: the property graph the plan reads.
        batch_size: row count of the batches the executor *emits* (the same
            contract as :class:`Executor`; inside a morsel the pipeline runs
            with ``batch_size * coalesce`` rows in flight).
        num_workers: thread-pool width.  ``1`` still runs through the
            dispatcher (useful for testing morsel bookkeeping); use
            :class:`Executor` for the true serial path.
        morsel_size: vertices per morsel.  Defaults to an even split of the
            scan domain into ``num_workers * MORSELS_PER_WORKER`` ranges; set
            explicitly to exercise boundary cases (single-vertex morsels,
            morsels smaller than a batch).
        coalesce: in-morsel batch coalescing factor (>= 1).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        batch_size: int = DEFAULT_BATCH_SIZE,
        num_workers: int = 4,
        morsel_size: Optional[int] = None,
        coalesce: int = DEFAULT_COALESCE,
    ) -> None:
        if num_workers < 1:
            raise ExecutionError(f"num_workers must be >= 1, got {num_workers}")
        if morsel_size is not None and morsel_size < 1:
            raise ExecutionError(f"morsel_size must be >= 1, got {morsel_size}")
        if coalesce < 1:
            raise ExecutionError(f"coalesce must be >= 1, got {coalesce}")
        self.graph = graph
        self.batch_size = batch_size
        self.num_workers = int(num_workers)
        self.morsel_size = None if morsel_size is None else int(morsel_size)
        self.coalesce = int(coalesce)

    # ------------------------------------------------------------------
    # morsel partitioning
    # ------------------------------------------------------------------
    def morsel_ranges(self, plan: QueryPlan) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` vertex ranges covering the scan domain.

        The ranges partition the leading scan's domain in ascending order;
        concatenating per-range outputs in list order therefore reproduces
        the serial scan order.  An explicit ``vertex_range`` on the plan's
        scan is respected (the morsels partition that sub-range).
        """
        scan = plan.operators[0]
        assert isinstance(scan, ScanVertices)
        lo, hi = scan.domain(self.graph)
        domain = hi - lo
        if domain <= 0:
            return []
        size = self.morsel_size
        if size is None:
            target = self.num_workers * MORSELS_PER_WORKER
            size = max(-(-domain // target), 1)
        return [(start, min(start + size, hi)) for start in range(lo, hi, size)]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_morsel(
        self, plan: QueryPlan, lo: int, hi: int
    ) -> Tuple[List[MatchBatch], ExecutionStats]:
        """Run the full pipeline over one vertex-range morsel (worker body)."""
        stats = ExecutionStats()
        context = ExecutionContext(
            graph=self.graph,
            query=plan.query,
            batch_size=self.batch_size * self.coalesce,
            stats=stats,
        )
        scan = replace(plan.operators[0], vertex_range=(lo, hi))
        batches = list(_run_pipeline(plan, context, scan=scan))
        return batches, stats

    def execute(
        self, plan: QueryPlan, stats: Optional[ExecutionStats] = None
    ) -> Iterator[MatchBatch]:
        """Yield match batches in deterministic morsel order.

        Morsels are dispatched through a bounded sliding window
        (``num_workers * MORSEL_WINDOW_PER_WORKER`` in flight): workers
        drain the window out of order, the next morsel is submitted as the
        oldest one is consumed, and batches are yielded strictly in
        ascending morsel order (re-split to ``batch_size`` rows) — so
        consumers observe the exact serial row sequence while peak memory
        stays proportional to the window, not to the whole query result.
        """
        merged = stats if stats is not None else ExecutionStats()
        ranges = iter(self.morsel_ranges(plan))
        window = self.num_workers * MORSEL_WINDOW_PER_WORKER
        with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            pending = deque()
            for lo, hi in ranges:
                pending.append(pool.submit(self._run_morsel, plan, lo, hi))
                if len(pending) >= window:
                    break
            while pending:
                batches, morsel_stats = pending.popleft().result()
                refill = next(ranges, None)
                if refill is not None:
                    pending.append(pool.submit(self._run_morsel, plan, *refill))
                merged.add(morsel_stats)
                for batch in batches:
                    yield from batch.split(self.batch_size)
