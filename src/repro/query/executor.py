"""Plan execution: the serial executor and the morsel-driven dispatcher.

The :class:`Executor` drives a :class:`~repro.query.plan.QueryPlan`'s operator
pipeline over a property graph, producing partial-match batches and exposing
convenience entry points for counting or collecting the matches.  Matching
semantics is *homomorphism*: distinct query variables may bind to the same
graph element unless the query predicate forbids it.

Morsel-driven parallel execution
--------------------------------

:class:`MorselExecutor` parallelizes a plan the way morsel-driven schedulers
(Leis et al.) do: the scan's candidate domain — the vertex-ID range of the
leading :class:`~repro.query.operators.ScanVertices` — is split into
contiguous *morsels*, and the **full operator pipeline** runs per morsel.
Every operator is already batch-at-a-time and stateless (the scan is cloned
per morsel with an explicit ``vertex_range``; extension and filter operators
share immutable configuration and index references), so no operator
semantics change: each morsel's pipeline is exactly the serial pipeline over
a sub-range of the scan.

The dispatcher is split along two orthogonal axes:

* **where morsels run** — a pluggable :class:`~repro.query.backends
  .MorselBackend`: ``serial`` (inline, for debugging the morsel
  bookkeeping), ``thread`` (a thread pool; the numpy kernels release the GIL
  for their inner loops, so threads overlap on multi-core machines), or
  ``process`` (a ``multiprocessing`` pool that sidesteps the GIL entirely —
  picklable task specs out, columnar numpy buffers back; see
  :mod:`repro.query.backends`);
* **how the domain is cut** — a weighting strategy from
  :mod:`repro.query.morsels`: ``degree`` (the default) prefix-sums the
  primary index's CSR list lengths so each morsel carries roughly equal
  *adjacency work*, which is what balances Zipf-skewed graphs; ``even``
  cuts equal vertex-count ranges (the PR 4 behaviour).  Degree weighting
  over-partitions (``STEAL_SPLIT_FACTOR`` × more, smaller morsels) so idle
  workers keep pulling queued morsels while a heavy one is in flight —
  bounded work-stealing through the pool's queue, with the in-flight window
  capping buffered results.

Inside a morsel the dispatcher runs the pipeline with a *coalesced* batch
size (``coalesce`` × the configured batch size), so several serial-sized
batches are joined per kernel call — the larger-than-batch intersection the
kernels were built for — without changing the produced rows.

**Determinism.**  Extension operators emit output rows in input-row order and
batch boundaries never affect which rows are produced (the batch kernels are
row-segmented), so the concatenation of per-morsel outputs in ascending
range order is *byte-identical* to the serial executor's output — same match
rows in the same order, and, because every stats counter is per-row
accounting, identical :class:`~repro.query.operators.ExecutionStats` — for
**every** backend × weighting × morsel size × worker count combination.
``parallelism=1`` (the default everywhere) bypasses the dispatcher entirely
and remains the oracle the parallel paths are tested against
(``tests/test_backend_equivalence.py``).

**Fault tolerance.**  Determinism survives worker failures: a morsel lost
to a crash, hang, or corrupt reply (the backend raises
:class:`~repro.errors.WorkerCrashError`) is retried at the front of the
dispatch window and, past ``max_retries``, re-executed serially in the
parent — so the merged output stays byte-identical to the fault-free run
while ``ExecutionStats.retries``/``morsels_recovered`` record the recovery.
Queries also carry optional runtime guardrails — a wall-clock ``timeout``
and a cooperative ``cancel`` token (:mod:`repro.query.runtime`) — checked
between batches and between morsels, and enforced against stuck workers by
the backends' polled waits.  The chaos suite
(``tests/test_fault_injection.py``) drives all of this with deterministic
injected faults (:mod:`repro.query.faults`).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    WorkerCrashError,
)
from ..graph.graph import PropertyGraph
from ..graph.types import Direction
from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    MorselBackend,
    resolve_backend,
    run_morsel,
    run_pipeline,
    run_pipeline_factorized,
)
from .binding import DEFAULT_BATCH_SIZE, MatchBatch
from .factorized import FactorizedBatch
from .faults import FAULTS_ENV_VAR, FaultPlan
from .morsels import degree_weighted_ranges, even_ranges, ranges_of_size
from .operators import ExecutionContext, ExecutionStats, ScanVertices
from .pipeline import (
    CountSink,
    ExistsSink,
    FlattenSink,
    LimitSink,
    PipelineBuilder,
    Sink,
    validate_limit,
)
from .plan import QueryPlan
from .runtime import CancellationToken, QueryContext, make_runtime


@dataclass
class QueryResult:
    """Materialized result of a query execution."""

    matches: List[Dict[str, int]]
    count: int
    seconds: float
    stats: ExecutionStats

    def __len__(self) -> int:
        return self.count


class PlanRunner:
    """Shared count/collect/exists/run entry points over an ``execute`` stream.

    Subclasses provide ``execute(plan, stats=None) -> Iterator[MatchBatch]``
    (and, for factorized-capable runners, ``execute_factorized``); the
    convenience entry points here consume those streams identically for the
    serial and the morsel-driven executor, so their result contracts cannot
    drift apart.

    Sink-aware finalization: every entry point drains its stream through a
    first-class pipeline :class:`~repro.query.pipeline.Sink` whose halt
    signal propagates upstream.  Row-producing entry points (``collect``,
    ``run(materialize=True)``) use :class:`~repro.query.pipeline
    .FlattenSink` — the kept oracle — or its streaming
    :class:`~repro.query.pipeline.LimitSink` spelling when a ``limit`` is
    given, which stops the pipeline (and, under the morsel dispatcher,
    morsel submission) as soon as the limit is satisfied.  ``exists``
    drains through :class:`~repro.query.pipeline.ExistsSink`, halting on
    the first match.  ``count`` (and ``run(factorized=True)``) route plans
    with a factorizable suffix through
    :class:`~repro.query.pipeline.CountSink` over the factorized stream,
    computing the count from unexpanded cardinality products instead of
    materializing the combination cross-product.

    Entry points accept an optional ``stats`` object so callers can
    observe the merged :class:`~repro.query.operators.ExecutionStats`
    (per-stage times, ``morsels_dispatched``, ...) of runs whose return
    value carries no stats of its own.
    """

    def execute(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[MatchBatch]:
        raise NotImplementedError

    def execute_factorized(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[FactorizedBatch]:
        raise NotImplementedError

    def _resolve_factorized(
        self, plan: QueryPlan, factorized: Optional[bool]
    ) -> bool:
        """Effective sink choice: ``None`` auto-opts-in capable plans."""
        if factorized is None:
            return plan.supports_factorized_count
        if factorized and not plan.supports_factorized_count:
            raise ExecutionError(
                f"plan for {plan.query.name!r} has no factorizable suffix "
                "(see QueryPlan.supports_factorized_count); "
                "factorized=True cannot be honoured"
            )
        return bool(factorized)

    def count(
        self,
        plan: QueryPlan,
        factorized: Optional[bool] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        runtime: Optional[QueryContext] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> int:
        """Number of matches produced by the plan (sink-aware).

        ``factorized=None`` (the default) computes the count from
        unexpanded cardinality products whenever the plan supports it and
        falls back to the flat stream otherwise; ``False`` forces the flat
        oracle path; ``True`` requires a factorizable plan (raises
        otherwise).  The count is identical either way.

        ``timeout`` (seconds) and ``cancel`` (a
        :class:`~repro.query.runtime.CancellationToken`) arm the query's
        runtime guardrails: a violated deadline raises
        :class:`~repro.errors.QueryTimeoutError`, a triggered token
        :class:`~repro.errors.QueryCancelledError` — both carrying the
        partial stats merged so far.  A pre-built ``runtime`` overrides
        both: the admission-controlled server passes one whose deadline was
        fixed at submission, so queue wait spends the same budget.
        """
        use_factorized = self._resolve_factorized(plan, factorized)
        if runtime is None:
            runtime = make_runtime(timeout, cancel)
        stream = (
            self.execute_factorized(plan, stats=stats, runtime=runtime)
            if use_factorized
            else self.execute(plan, stats=stats, runtime=runtime)
        )
        return CountSink().drain(stream)

    def collect(
        self,
        plan: QueryPlan,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        runtime: Optional[QueryContext] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> List[Dict[str, int]]:
        """Materialize matches as dictionaries (optionally limited).

        A ``limit`` drains through the streaming
        :class:`~repro.query.pipeline.LimitSink`: the sink halts the
        pipeline as soon as the limit is reached *mid-batch* — the final
        batch contributes only its needed prefix rows, no further batch is
        pulled, and under the morsel dispatcher no further morsel is
        submitted (``stats.morsels_dispatched`` stays below the unlimited
        run's).  The returned prefix is byte-identical to the unlimited
        run's first ``limit`` matches.  ``timeout``/``cancel``/``runtime``
        behave as in :meth:`count`.

        ``limit=None`` is unlimited and ``limit=0`` a legal empty result;
        a negative limit raises a typed
        :class:`~repro.errors.ExecutionError` (it used to be silently
        swallowed into zero rows here, masking caller bugs).
        """
        validate_limit(limit)
        if limit == 0:
            return []
        sink = FlattenSink() if limit is None else LimitSink(limit)
        if runtime is None:
            runtime = make_runtime(timeout, cancel)
        return sink.drain(self.execute(plan, stats=stats, runtime=runtime))

    def exists(
        self,
        plan: QueryPlan,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        runtime: Optional[QueryContext] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> bool:
        """Whether the plan produces any match at all (streaming, early-out).

        Drains through :class:`~repro.query.pipeline.ExistsSink`: the first
        non-empty batch halts the pipeline, so upstream operators (and,
        under the morsel dispatcher, morsel submission) stop as soon as one
        match is proven.  ``timeout``/``cancel``/``runtime`` behave as in
        :meth:`count`.
        """
        if runtime is None:
            runtime = make_runtime(timeout, cancel)
        return ExistsSink().drain(self.execute(plan, stats=stats, runtime=runtime))

    def run(
        self,
        plan: QueryPlan,
        materialize: bool = False,
        factorized: Optional[bool] = None,
        timeout: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        runtime: Optional[QueryContext] = None,
    ) -> QueryResult:
        """Execute a plan, timing it and gathering execution statistics.

        ``factorized=None``/``False`` runs the flat pipeline (the oracle
        path — ``run`` keeps flat semantics unless explicitly opted in);
        ``factorized=True`` drains the factorized stream through a
        :class:`CountSink` — the result carries the count and the
        factorized stats (``combos_avoided``, ``segments_emitted``) but no
        rows, so it cannot be combined with ``materialize=True``.

        ``timeout``/``cancel``/``runtime`` behave as in :meth:`count`; a
        run that finishes under its deadline records the unused budget in
        ``stats.deadline_remaining``.
        """
        use_factorized = bool(factorized) and self._resolve_factorized(
            plan, factorized
        )
        if use_factorized and materialize:
            raise ExecutionError(
                "materialize=True needs flat tuples; a factorized run is "
                "count-only (use the default flat path to collect matches)"
            )
        if runtime is None:
            runtime = make_runtime(timeout, cancel)
        stats = ExecutionStats()
        started = time.perf_counter()
        matches: List[Dict[str, int]] = []
        if use_factorized:
            count = CountSink().drain(
                self.execute_factorized(plan, stats=stats, runtime=runtime)
            )
        elif materialize:
            matches = FlattenSink().drain(
                self.execute(plan, stats=stats, runtime=runtime)
            )
            count = len(matches)
        else:
            count = CountSink().drain(self.execute(plan, stats=stats, runtime=runtime))
        elapsed = time.perf_counter() - started
        if runtime is not None and runtime.deadline is not None:
            stats.deadline_remaining = max(0.0, runtime.remaining())
        return QueryResult(matches=matches, count=count, seconds=elapsed, stats=stats)


class Executor(PlanRunner):
    """Executes query plans serially over one property graph.

    ``clock`` optionally overrides the monotonic clock used for per-stage
    timing (``ExecutionStats.operator_seconds``) — injectable so tests can
    assert exact time attribution with a fake clock.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        batch_size: int = DEFAULT_BATCH_SIZE,
        clock=None,
    ) -> None:
        self.graph = graph
        self.batch_size = batch_size
        self.clock = clock

    def _context(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats],
        runtime: Optional[QueryContext],
    ) -> ExecutionContext:
        context = ExecutionContext(
            graph=self.graph,
            query=plan.query,
            batch_size=self.batch_size,
            stats=stats or ExecutionStats(),
            runtime=runtime,
        )
        if self.clock is not None:
            context.clock = self.clock
        return context

    def execute(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[MatchBatch]:
        """Yield batches of matches produced by the plan."""
        yield from run_pipeline(plan, self._context(plan, stats, runtime))

    def execute_factorized(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[FactorizedBatch]:
        """Yield factorized batches: flat prefixes with unexpanded suffixes."""
        yield from run_pipeline_factorized(
            plan, self._context(plan, stats, runtime)
        )


#: Morsels handed out per worker (load-balancing granularity of the default
#: morsel size: more morsels than workers lets fast workers steal the tail).
MORSELS_PER_WORKER = 4

#: Extra over-partitioning of degree-weighted morsels: the weighted splitter
#: targets ``workers × MORSELS_PER_WORKER × STEAL_SPLIT_FACTOR`` morsels, so
#: workers that finish early keep stealing queued (smaller) morsels while a
#: heavy one is still in flight.  Bounded: the in-flight window caps how many
#: completed-but-unmerged results can pile up, and the splitter never cuts
#: below one vertex per morsel.
STEAL_SPLIT_FACTOR = 2

#: Serial-sized batches coalesced into one in-flight batch inside a morsel.
#: Larger batches amortize the per-kernel-call Python overhead (one gather /
#: one ``intersect_segments`` call covers ``coalesce`` × ``batch_size`` rows),
#: but past ~2 the extension operators' intermediates outgrow the caches and
#: the kernels slow down more than the amortization saves (measured on the
#: two-leg WCOJ shape of ``benchmarks/bench_extend_throughput.py``).
DEFAULT_COALESCE = 2


#: In-flight morsels per worker: bounds how many completed-but-unconsumed
#: morsel results can be buffered at once, so memory stays proportional to
#: the window (× the largest morsel output), not to the whole query result.
MORSEL_WINDOW_PER_WORKER = 2

#: How many times a morsel lost to a worker failure is re-submitted to the
#: backend before the dispatcher gives up on the pool and re-executes the
#: range serially in-process.  Two covers the realistic transient cases
#: (the reply raced a *different* worker's death; the respawned worker
#: absorbed the retry) without stalling long on a systematically failing
#: pool.
MAX_MORSEL_RETRIES = 2

#: Morsel weighting strategies accepted by :class:`MorselExecutor`.
WEIGHTINGS = ("degree", "even")


class MorselExecutor(PlanRunner):
    """Morsel-driven parallel plan execution with deterministic merge order.

    Args:
        graph: the property graph the plan reads.
        batch_size: row count of the batches the executor *emits* (the same
            contract as :class:`Executor`; inside a morsel the pipeline runs
            with ``batch_size * coalesce`` rows in flight).
        num_workers: worker-pool width.  ``1`` still runs through the
            dispatcher (useful for testing morsel bookkeeping); use
            :class:`Executor` for the true serial path.
        morsel_size: vertices per morsel.  ``None`` (the default) derives
            morsels from ``weighting``; an explicit size forces fixed-size
            even ranges regardless of weighting — the boundary-case knob
            (single-vertex morsels, morsels smaller than a batch).
        coalesce: in-morsel batch coalescing factor (>= 1).
        backend: where morsel bodies run — a name from
            :data:`~repro.query.backends.BACKENDS` (``"serial"``,
            ``"thread"``, ``"process"``) or a
            :class:`~repro.query.backends.MorselBackend` instance.
        weighting: how the scan domain is cut — ``"degree"`` (equal
            adjacency work per morsel, prefix-summed from the primary CSR
            offsets; the default) or ``"even"`` (equal vertex counts).
        max_retries: re-submissions of a morsel lost to a worker failure
            before the dispatcher degrades to in-process serial re-execution
            of the range (``0`` = straight to the serial fallback).
        morsel_timeout: process-backend per-morsel reply timeout in seconds
            (``None`` = the :data:`~repro.query.backends
            .MORSEL_TIMEOUT_ENV_VAR` override or the default backstop;
            ``0`` disables).
        fault_plan: a :class:`~repro.query.faults.FaultPlan` (or spec
            string) injected into this executor's queries — the
            programmatic spelling of the ``REPRO_FAULTS`` environment
            variable, for chaos tests.
        clock: override of the per-stage timing clock, threaded into the
            in-process morsel bodies (serial/thread backends and the serial
            fallback; process workers keep the real clock — callables do
            not cross the pickle boundary).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        batch_size: int = DEFAULT_BATCH_SIZE,
        num_workers: int = 4,
        morsel_size: Optional[int] = None,
        coalesce: int = DEFAULT_COALESCE,
        backend: Union[str, MorselBackend] = DEFAULT_BACKEND,
        weighting: str = "degree",
        max_retries: int = MAX_MORSEL_RETRIES,
        morsel_timeout: Optional[float] = None,
        fault_plan: Union[None, str, FaultPlan] = None,
        clock=None,
    ) -> None:
        if num_workers < 1:
            raise ExecutionError(f"num_workers must be >= 1, got {num_workers}")
        if morsel_size is not None and morsel_size < 1:
            raise ExecutionError(f"morsel_size must be >= 1, got {morsel_size}")
        if coalesce < 1:
            raise ExecutionError(f"coalesce must be >= 1, got {coalesce}")
        if not isinstance(backend, MorselBackend) and backend not in BACKENDS:
            raise ExecutionError(
                f"unknown morsel backend {backend!r}; available: {sorted(BACKENDS)}"
            )
        if weighting not in WEIGHTINGS:
            raise ExecutionError(
                f"unknown morsel weighting {weighting!r}; "
                f"available: {sorted(WEIGHTINGS)}"
            )
        if max_retries < 0:
            raise ExecutionError(f"max_retries must be >= 0, got {max_retries}")
        if morsel_timeout is not None and morsel_timeout < 0:
            raise ExecutionError(
                f"morsel_timeout must be >= 0 seconds (0 disables), "
                f"got {morsel_timeout}"
            )
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self.graph = graph
        self.batch_size = batch_size
        self.num_workers = int(num_workers)
        self.morsel_size = None if morsel_size is None else int(morsel_size)
        self.coalesce = int(coalesce)
        self.backend = backend
        self.weighting = weighting
        self.max_retries = int(max_retries)
        self.morsel_timeout = morsel_timeout
        self.fault_plan = fault_plan
        self.clock = clock

    def _resolve_faults(self) -> Optional[FaultPlan]:
        """The active fault plan: the instance's, else the environment's."""
        if self.fault_plan is not None:
            return self.fault_plan
        return FaultPlan.parse(os.environ.get(FAULTS_ENV_VAR))

    # ------------------------------------------------------------------
    # morsel partitioning
    # ------------------------------------------------------------------
    def _domain_weights(self, plan: QueryPlan, lo: int, hi: int) -> np.ndarray:
        """Per-vertex work estimate over the scan domain ``[lo, hi)``.

        One unit per vertex for the scan itself, plus — for every leg
        anywhere in the pipeline whose adjacency is read off the *scanned*
        vertex — that vertex's list length.  List lengths come from the
        index's CSR bound offsets when the index exposes them
        (``vertex_degrees``; the primary adjacency indexes do) and fall back
        to the graph's degree arrays otherwise.  Legs bound to later
        variables read domains already redistributed by earlier extensions
        and cannot be attributed to a scan vertex cheaply; scan-bound legs
        are where degree skew concentrates (the hub's list is re-fetched by
        every operator touching it), so this estimate captures the bulk of
        the imbalance at O(domain) cost.
        """
        weights = np.ones(hi - lo, dtype=np.float64)
        scan = plan.operators[0]
        assert isinstance(scan, ScanVertices)
        for operator in plan.operators[1:]:
            legs = getattr(operator, "legs", None)
            if not legs:
                continue
            for leg in legs:
                if leg.access_path.uses_bound_edge or leg.bound_var != scan.var:
                    continue
                vertex_degrees = getattr(
                    leg.access_path.index, "vertex_degrees", None
                )
                if callable(vertex_degrees):
                    weights += vertex_degrees(lo, hi)
                elif leg.access_path.direction is Direction.FORWARD:
                    weights += self.graph.out_degree()[lo:hi]
                else:
                    weights += self.graph.in_degree()[lo:hi]
        return weights

    def morsel_ranges(self, plan: QueryPlan) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` vertex ranges covering the scan domain.

        The ranges partition the leading scan's domain in ascending order;
        concatenating per-range outputs in list order therefore reproduces
        the serial scan order — regardless of whether the cuts are even or
        degree-weighted.  An explicit ``vertex_range`` on the plan's scan is
        respected (the morsels partition that sub-range), and an explicit
        ``morsel_size`` forces fixed-size ranges.
        """
        scan = plan.operators[0]
        assert isinstance(scan, ScanVertices)
        lo, hi = scan.domain(self.graph)
        if hi <= lo:
            return []
        if self.morsel_size is not None:
            return ranges_of_size(lo, hi, self.morsel_size)
        target = self.num_workers * MORSELS_PER_WORKER
        if self.weighting == "even":
            return even_ranges(lo, hi, target)
        return degree_weighted_ranges(
            lo,
            hi,
            target * STEAL_SPLIT_FACTOR,
            self._domain_weights(plan, lo, hi),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[MatchBatch]:
        """Yield match batches in deterministic morsel order.

        Morsels are dispatched to the configured backend through a bounded
        sliding window (``num_workers * MORSEL_WINDOW_PER_WORKER`` in
        flight): workers drain the window out of order, the next morsel is
        submitted as the oldest one is consumed, and batches are yielded
        strictly in ascending morsel order (re-split to ``batch_size``
        rows) — so consumers observe the exact serial row sequence while
        peak memory stays proportional to the window, not to the whole
        query result.
        """
        for batch in self._dispatch(plan, stats, factorized=False, runtime=runtime):
            yield from batch.split(self.batch_size)

    def execute_factorized(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats] = None,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[FactorizedBatch]:
        """Yield factorized batches in deterministic morsel order.

        Same windowed dispatch as :meth:`execute`, with the backend's
        morsel bodies running the *factorized* pipeline — workers ship back
        prefix columns plus per-leg cardinality segments instead of
        expanded cross-products.  Factorized batches are yielded whole (no
        re-split to ``batch_size``: segment arrays are per-prefix-row, and
        the only consumers are aggregate sinks that reduce them
        immediately).
        """
        yield from self._dispatch(plan, stats, factorized=True, runtime=runtime)

    def _dispatch(
        self,
        plan: QueryPlan,
        stats: Optional[ExecutionStats],
        factorized: bool,
        runtime: Optional[QueryContext] = None,
    ) -> Iterator[object]:
        """Windowed morsel dispatch shared by the flat and factorized paths.

        This is also the *reaction* half of crash recovery (backends are the
        detection half): a morsel whose ``result()`` raises the recoverable
        :class:`~repro.errors.WorkerCrashError` is re-submitted to the
        backend up to ``max_retries`` times — the retry entry goes to the
        *front* of the window, so the ascending merge order (and thus
        byte-identical output) is preserved — and, when retries are
        exhausted, the range is re-executed serially in-process with fault
        injection disabled.  Failed attempts' partial stats are discarded,
        so the merged counters are identical to a fault-free run (plus the
        ``retries``/``morsels_recovered`` bookkeeping).

        A deadline/cancellation violation — raised here between morsels, by
        a backend's polled wait, or by a cooperative in-process morsel body
        — gets the merged partial stats attached and requests abort on the
        runtime's token, so in-flight cooperative morsels stop at their next
        batch boundary instead of running to completion inside ``close()``.

        **Early termination across morsels.**  The window is topped up at
        the head of each merge iteration — *after* the consumer has pulled
        the previous morsel's batches — never eagerly ahead of consumption.
        When a sink halts (``collect(limit=)`` satisfied, ``exists`` proven)
        this generator is abandoned mid-yield, so no further morsel is ever
        submitted to the backend; ``merged.morsels_dispatched`` (counted at
        first-attempt submission) then stays strictly below the full
        domain's morsel count.  Before this restructure the dispatcher
        refilled the window *before* yielding, so a satisfied limit still
        dispatched one extra morsel per buffered result.
        """
        merged = stats if stats is not None else ExecutionStats()
        all_ranges = self.morsel_ranges(plan)
        if not all_ranges:
            return
        ranges = iter(enumerate(all_ranges))
        window = self.num_workers * MORSEL_WINDOW_PER_WORKER
        faults = self._resolve_faults()
        backend = resolve_backend(self.backend)
        backend.open(self, plan, factorized=factorized, runtime=runtime, faults=faults)
        try:
            # Window entries: (handle, index, lo, hi, attempt).
            pending = deque()
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    refill = next(ranges, None)
                    if refill is None:
                        exhausted = True
                        break
                    rindex, (rlo, rhi) = refill
                    rhandle = backend.submit(rlo, rhi, index=rindex, attempt=0)
                    pending.append((rhandle, rindex, rlo, rhi, 0))
                    merged.morsels_dispatched += 1
                if not pending:
                    break
                handle, index, lo, hi, attempt = pending.popleft()
                recovered = attempt > 0
                try:
                    batches, morsel_stats = backend.result(handle)
                except WorkerCrashError:
                    merged.retries += 1
                    if runtime is not None:
                        runtime.check(merged)
                    if attempt < self.max_retries:
                        retry = attempt + 1
                        handle = backend.submit(lo, hi, index=index, attempt=retry)
                        pending.appendleft((handle, index, lo, hi, retry))
                        continue
                    # Retries exhausted: recover the range in-process,
                    # serially, with injection disabled — the deterministic
                    # last resort that cannot lose to another worker fault.
                    batches, morsel_stats = run_morsel(
                        plan,
                        self.graph,
                        self.batch_size * self.coalesce,
                        lo,
                        hi,
                        factorized=factorized,
                        runtime=runtime,
                        clock=self.clock,
                    )
                    recovered = True
                if recovered:
                    merged.morsels_recovered += 1
                merged.add(morsel_stats)
                if runtime is not None:
                    runtime.check(merged)
                yield from batches
        except (QueryTimeoutError, QueryCancelledError) as exc:
            # Whatever check point raised (a morsel-local context, a
            # backend's polled wait), the caller should see the merged
            # partial stats of the work already consumed.
            exc.stats = merged
            if runtime is not None:
                runtime.request_abort()
            raise
        finally:
            backend.close()
