"""Physical query plans.

A :class:`QueryPlan` is a linear pipeline of physical operators: one
:class:`~repro.query.operators.ScanVertices` followed by a sequence of
extend/intersect, multi-extend and filter operators that bind the remaining
query variables.  Plans are produced by the DP optimizer
(:mod:`repro.query.optimizer`) or constructed by hand in tests, and run by the
:class:`~repro.query.executor.Executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..errors import PlanningError
from .operators import ExtendIntersect, Filter, MultiExtend, PhysicalOperator, ScanVertices
from .pattern import QueryGraph


@dataclass
class QueryPlan:
    """An executable plan together with its cost estimate.

    Attributes:
        query: the query graph the plan answers.
        operators: the operator pipeline; the first operator must be a scan.
        estimated_cost: the optimizer's i-cost estimate (0 for manual plans).
        estimated_cardinality: estimated number of output matches.
        store_snapshot: the index-store generation the plan was planned
            against (set by ``Database.plan``/``Database.run``).  The plan's
            legs hold direct references into this generation's indexes, so
            executing the plan against any *other* generation's graph would
            mix edge/vertex IDs across flush remappings; ``Database.run``
            executes a pinned plan against this snapshot's graph.  ``None``
            for hand-built plans (tests, benchmarks), which are executed
            against whatever graph the caller supplies.

    Pickling
    --------

    Plans are picklable, snapshot included: the operators reference index
    objects, which reference the pinned generation's graph, and pickle
    preserves that sharing inside one payload — the deserialized plan is a
    self-contained copy that still executes against *its own* generation,
    even if the originating store has installed newer ones since.  This is
    how the process morsel backend rehydrates plans in pool workers
    (:mod:`repro.query.backends`).
    """

    query: QueryGraph
    operators: List[PhysicalOperator]
    estimated_cost: float = 0.0
    estimated_cardinality: float = 0.0
    store_snapshot: Optional[object] = field(default=None, repr=False, compare=False)
    #: Cached result of the factorized-suffix analysis (computed lazily; the
    #: optimizer precomputes it so planned queries carry their sink
    #: capability).  Not part of identity/pickling semantics beyond caching.
    _factorized_start: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.operators:
            raise PlanningError("a plan needs at least one operator")
        if not isinstance(self.operators[0], ScanVertices):
            raise PlanningError("the first operator of a plan must be a scan")

    def __hash__(self) -> int:
        """Structural hash, consistent with the dataclass-generated ``__eq__``.

        Built on the query's canonical fingerprint plus the operator
        pipeline's shape and cost estimates — everything ``__eq__`` compares
        hangs off those (``store_snapshot`` carries ``compare=False``, so the
        pinned generation stays out of both).  Plans of structurally
        identical queries hash alike, which is what lets plans live in hash
        containers (result memos, the payload bookkeeping around
        :mod:`repro.server.pools`) instead of being unhashable as the bare
        ``eq=True`` dataclass was.
        """
        return hash(
            (
                self.query.fingerprint(),
                tuple(self.operator_names()),
                self.estimated_cost,
                self.estimated_cardinality,
            )
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pinned_generation(self) -> Optional[int]:
        """Index-store generation this plan is pinned to (None if unpinned).

        Read off ``store_snapshot``; survives pickling, so a plan shipped to
        a process-pool worker still knows which generation its index
        references belong to (the worker rejects task specs stamped with a
        different generation).
        """
        snapshot = self.store_snapshot
        if snapshot is None:
            return None
        state = getattr(snapshot, "state", None)
        return getattr(state, "generation", None)

    def bound_variables(self) -> Set[str]:
        """Query variables bound after running the whole pipeline."""
        bound: Set[str] = set()
        for operator in self.operators:
            if isinstance(operator, ScanVertices):
                bound.add(operator.var)
            elif isinstance(operator, ExtendIntersect):
                bound.add(operator.target_var)
                bound.update(leg.edge_var for leg in operator.legs if leg.track_edge)
            elif isinstance(operator, MultiExtend):
                bound.update(operator.target_vars)
                bound.update(leg.edge_var for leg in operator.legs if leg.track_edge)
        return bound

    def binds_all_query_vertices(self) -> bool:
        return set(self.query.vertex_names) <= self.bound_variables()

    def uses_index(self, index_name: str) -> bool:
        """True if any leg of the plan reads the named index."""
        for operator in self.operators:
            legs = getattr(operator, "legs", None)
            if not legs:
                continue
            for leg in legs:
                if leg.access_path.name == index_name:
                    return True
        return False

    def operator_names(self) -> List[str]:
        return [type(op).__name__ for op in self.operators]

    def num_multiway_intersections(self) -> int:
        """Number of operators performing a >= 2-way intersection."""
        count = 0
        for operator in self.operators:
            legs = getattr(operator, "legs", None)
            if legs and len(legs) >= 2:
                count += 1
        return count

    # ------------------------------------------------------------------
    # sink capability (factorized aggregate pushdown)
    # ------------------------------------------------------------------
    def factorized_suffix_start(self) -> int:
        """Index of the first operator of the factorizable terminal suffix.

        The suffix is the longest run of trailing extension operators whose
        combinations can stay *unexpanded* for aggregate-only sinks: the
        match count is then the per-prefix-row product of the suffix
        operators' cardinalities.  Returns ``len(self.operators)`` when no
        suffix qualifies (the plan is flat-only).

        An operator joins the suffix only when its combinations are
        mutually independent of every later suffix operator given the
        prefix:

        * it is a vectorized :class:`~repro.query.operators.ExtendIntersect`
          or :class:`~repro.query.operators.MultiExtend` with a TRUE post
          predicate (a post predicate filters combinations, breaking the
          pure cardinality product);
        * a MULTI-EXTEND's legs bind pairwise-distinct target vertices
          (shared targets need per-combination reconciliation);
        * nothing it produces (targets, tracked edge variables) is *read*
          by a later suffix operator (leg bound variables,
          residual-predicate variables beyond the leg's own target/edge) —
          so every suffix operator's inputs come from the flat prefix and
          the per-operator cardinalities are independent given a prefix
          row.
        """
        if self._factorized_start is None:
            self._factorized_start = self._analyze_factorized_suffix()
        return self._factorized_start

    def _analyze_factorized_suffix(self) -> int:
        operators = self.operators
        start = len(operators)
        reads_by_suffix: Set[str] = set()
        for index in range(len(operators) - 1, 0, -1):
            operator = operators[index]
            if not isinstance(operator, (ExtendIntersect, MultiExtend)):
                break
            if not operator.vectorized or not operator.post_predicate.is_true:
                break
            if isinstance(operator, MultiExtend):
                if len(operator.target_vars) != len(operator.legs):
                    break
                produced = set(operator.target_vars)
            else:
                produced = {operator.target_var}
            produced.update(
                leg.edge_var for leg in operator.legs if leg.track_edge
            )
            reads: Set[str] = set()
            for leg in operator.legs:
                reads.add(leg.bound_var)
                reads.update(
                    name
                    for name in leg.residual.variables()
                    if name not in (leg.target_var, leg.edge_var)
                )
            # An already-accepted (later) suffix operator consuming this
            # operator's output would make the cardinalities dependent:
            # this operator must stay in the flat prefix, ending the walk.
            if produced & reads_by_suffix:
                break
            reads_by_suffix |= reads
            start = index
        return start

    @property
    def supports_factorized_count(self) -> bool:
        """True when an aggregate sink may skip combo expansion on a suffix."""
        return self.factorized_suffix_start() < len(self.operators)

    def describe(self) -> str:
        lines = [f"Plan for {self.query.name!r} (i-cost≈{self.estimated_cost:,.0f}):"]
        for position, operator in enumerate(self.operators, 1):
            lines.append(f"  {position}. {operator.describe()}")
        suffix_start = self.factorized_suffix_start()
        if suffix_start < len(self.operators):
            lines.append(
                f"  sink capability: factorized count "
                f"(operators {suffix_start + 1}..{len(self.operators)} stay "
                "unexpanded for aggregate sinks)"
            )
        else:
            lines.append("  sink capability: flat only")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
