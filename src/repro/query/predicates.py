"""Compatibility shim: the predicate AST lives in :mod:`repro.predicates`.

The module was promoted to the package root because it is shared by the index
subsystem and the query processor; importing it from either package must not
trigger the other package's ``__init__`` (which would create an import cycle).
Everything is re-exported here so ``repro.query.predicates`` remains a valid
import path.
"""

from ..predicates import (  # noqa: F401
    CompareOp,
    Comparison,
    Constant,
    Operand,
    Predicate,
    PropertyRef,
    cmp,
    comparison_subsumes,
    const,
    encode_constant,
    predicate_subsumes,
    prop,
    residual_conjuncts,
)

__all__ = [
    "CompareOp",
    "Comparison",
    "Constant",
    "Operand",
    "Predicate",
    "PropertyRef",
    "cmp",
    "comparison_subsumes",
    "const",
    "encode_constant",
    "predicate_subsumes",
    "prop",
    "residual_conjuncts",
]
