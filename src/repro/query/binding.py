"""Partial-match batches flowing between physical operators.

A :class:`MatchBatch` is a column-oriented set of partial matches: one numpy
int64 column per bound query variable (vertex or edge), all of equal length.
Operators consume and produce batches; representing matches columnar keeps the
per-tuple Python overhead of the interpreter-based executor manageable and
allows predicates to be evaluated vectorized.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from ..errors import ExecutionError

#: Default number of partial matches per batch.
DEFAULT_BATCH_SIZE = 1024


class MatchBatch:
    """A column-oriented batch of partial matches."""

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged match batch: column lengths {lengths}")
        self._columns = {
            name: np.asarray(col, dtype=np.int64) for name, col in columns.items()
        }
        self._length = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, variables: Iterable[str]) -> "MatchBatch":
        return cls({name: np.empty(0, dtype=np.int64) for name in variables})

    @classmethod
    def single_column(cls, name: str, values: np.ndarray) -> "MatchBatch":
        return cls({name: np.asarray(values, dtype=np.int64)})

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def match_count(self) -> int:
        """Matches this batch contributes — ``len`` for a flat batch.

        Mirrors :meth:`repro.query.factorized.FactorizedBatch.match_count`
        so count sinks can treat both stream shapes uniformly.
        """
        return self._length

    @property
    def variables(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError as exc:
            raise ExecutionError(f"variable {name!r} is not bound in this batch") from exc

    def has_variable(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> Dict[str, int]:
        """Return one partial match as a plain dict (used by tests/debugging)."""
        return {name: int(col[index]) for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, int]]:
        for index in range(self._length):
            yield self.row(index)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray) -> "MatchBatch":
        """Keep only the rows where ``mask`` is True."""
        return MatchBatch({name: col[mask] for name, col in self._columns.items()})

    def repeat(self, counts: np.ndarray) -> "MatchBatch":
        """Repeat row ``i`` ``counts[i]`` times (the extend/explode step)."""
        return MatchBatch(
            {name: np.repeat(col, counts) for name, col in self._columns.items()}
        )

    def with_columns(self, new_columns: Mapping[str, np.ndarray]) -> "MatchBatch":
        """Return a batch with additional bound variables."""
        merged = dict(self._columns)
        for name, col in new_columns.items():
            if name in merged:
                raise ExecutionError(f"variable {name!r} is already bound")
            merged[name] = np.asarray(col, dtype=np.int64)
        return MatchBatch(merged)

    def concat(self, other: "MatchBatch") -> "MatchBatch":
        if set(self._columns) != set(other._columns):
            raise ExecutionError("cannot concatenate batches with different variables")
        return MatchBatch(
            {
                name: np.concatenate([col, other._columns[name]])
                for name, col in self._columns.items()
            }
        )

    def split(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator["MatchBatch"]:
        """Yield consecutive sub-batches of at most ``batch_size`` rows."""
        if self._length <= batch_size:
            yield self
            return
        for start in range(0, self._length, batch_size):
            yield MatchBatch(
                {
                    name: col[start : start + batch_size]
                    for name, col in self._columns.items()
                }
            )

    def to_dicts(self) -> List[Dict[str, int]]:
        return list(self.iter_rows())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatchBatch(vars={self.variables}, rows={self._length})"


def concat_batches(batches: List[MatchBatch]) -> Optional[MatchBatch]:
    """Concatenate a list of batches (None for an empty list)."""
    if not batches:
        return None
    result = batches[0]
    for batch in batches[1:]:
        result = result.concat(batch)
    return result
