"""Factorized intermediate results: unexpanded terminal extensions.

A flat pipeline expands every extension into the full combination
cross-product even when the consumer is ``count()`` — on star-shaped
patterns that materializes the *product* of the leg fan-outs per prefix
row, all of it pure waste for an aggregate.  Following the list-based
processing of Gupta et al. (Columnar Storage and List-based Processing for
GDBMSs), the factorized representation keeps the terminal extensions as
per-row cardinality segments instead:

* a :class:`FactorizedBatch` is a flat *prefix* (a normal
  :class:`~repro.query.binding.MatchBatch` of bound columns) plus one
  :class:`FactorizedSegment` per suffix operator;
* segment ``j`` records, per prefix row ``i``, how many combinations that
  operator would have contributed (``cardinalities[i]``) — for single-leg
  extends also the concatenated candidate arrays, so the batch can still be
  flattened;
* because the plan analysis (:meth:`~repro.query.plan.QueryPlan
  .factorized_suffix_start`) only admits *mutually independent* suffix
  operators, the match count of the batch is the sum over prefix rows of
  the product of the per-segment cardinalities — one vectorized
  multiply/sum pass, zero combo expansion.

The flat path remains the kept oracle: ``FactorizedBatch.flatten`` (for
materialized segments) reproduces the flat pipeline's rows in the flat
pipeline's order, and the differential suite
(``tests/test_factorized_count.py``) pins ``count()`` equality between the
representations across every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..storage.intersect import combo_positions
from .binding import MatchBatch


@dataclass(frozen=True)
class FactorizedSegment:
    """One unexpanded extension of a suffix operator over a prefix batch.

    ``cardinalities[i]`` is the number of combinations the emitting operator
    contributes for prefix row ``i`` — exactly the factor by which the flat
    path would have multiplied that row.  Single-leg extends also carry the
    concatenated candidate arrays (row offsets derive from the
    cardinalities), which makes the segment *materialized* and flattenable;
    intersection segments (multi-leg E/I, MULTI-EXTEND) are count-only.

    Attributes:
        target_vars: the query vertices the emitting operator binds.
        cardinalities: int64 combinations per prefix row.
        nbr_ids: concatenated neighbour candidates (materialized segments).
        edge_var: the tracked edge variable, if any (materialized segments).
        edge_ids: concatenated edge candidates aligned with ``nbr_ids``.
    """

    target_vars: Tuple[str, ...]
    cardinalities: np.ndarray
    nbr_ids: Optional[np.ndarray] = None
    edge_var: Optional[str] = None
    edge_ids: Optional[np.ndarray] = None

    @property
    def is_materialized(self) -> bool:
        """True when the candidate arrays are present (single-leg extends)."""
        return self.nbr_ids is not None

    def offsets(self) -> np.ndarray:
        """Per-prefix-row start offsets into the candidate arrays."""
        ends = np.cumsum(self.cardinalities, dtype=np.int64)
        return ends - self.cardinalities


@dataclass(frozen=True)
class FactorizedBatch:
    """A flat prefix of bound columns plus unexpanded extension segments.

    Represents ``prefix × segment_1 × segment_2 × ...``: the segments are
    mutually independent given the prefix (guaranteed by the plan's suffix
    analysis), so prefix row ``i`` stands for ``prod_j cardinalities_j[i]``
    flat matches that are never materialized.
    """

    prefix: MatchBatch
    segments: Tuple[FactorizedSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ExecutionError("a factorized batch needs at least one segment")
        for segment in self.segments:
            if len(segment.cardinalities) != len(self.prefix):
                raise ExecutionError(
                    f"segment cardinalities cover {len(segment.cardinalities)} "
                    f"rows but the prefix has {len(self.prefix)}"
                )

    # ------------------------------------------------------------------
    # cardinality arithmetic (the CountSink hot path)
    # ------------------------------------------------------------------
    def row_counts(self) -> np.ndarray:
        """Flat matches represented by each prefix row (segment product)."""
        counts = np.ones(len(self.prefix), dtype=np.int64)
        for segment in self.segments:
            counts *= segment.cardinalities
        return counts

    def match_count(self) -> int:
        """Total flat matches represented — without expanding any of them."""
        return int(self.row_counts().sum())

    def flat_rows_avoided(self) -> int:
        """Rows the flat pipeline would have materialized for the suffix.

        The flat path expands the first suffix operator's combinations,
        re-expands those rows by the second operator's, and so on — a
        running product over the segment cascade,
        ``sum_j sum_i prod_{k<=j} cardinalities_k[i]`` rows in total, none
        of which the factorized path ever allocates.
        """
        accumulated: Optional[np.ndarray] = None
        total = 0
        for segment in self.segments:
            accumulated = (
                segment.cardinalities
                if accumulated is None
                else accumulated * segment.cardinalities
            )
            total += int(accumulated.sum())
        return total

    # ------------------------------------------------------------------
    # the bridge back to the flat representation
    # ------------------------------------------------------------------
    def flatten(self) -> MatchBatch:
        """Expand into the flat cross-product batch, in flat-path row order.

        Requires every segment to be materialized (single-leg extends); the
        combination order iterates later segments fastest, matching the flat
        pipeline's nested expansion.  This is the oracle bridge used by the
        differential tests — production sinks never call it, which is the
        point of the representation.
        """
        for segment in self.segments:
            if not segment.is_materialized:
                raise ExecutionError(
                    "cannot flatten a count-only (intersection) segment; "
                    "use the flat pipeline for row-producing sinks"
                )
        counts = self.row_counts()
        if len(self.segments) == 1:
            segment = self.segments[0]
            new_columns: Dict[str, np.ndarray] = {
                segment.target_vars[0]: segment.nbr_ids
            }
            if segment.edge_var is not None:
                new_columns[segment.edge_var] = segment.edge_ids
            return self.prefix.repeat(segment.cardinalities).with_columns(new_columns)
        positions, _ = combo_positions(
            [segment.offsets() for segment in self.segments],
            [segment.cardinalities for segment in self.segments],
            counts,
        )
        new_columns = {}
        for segment, pos in zip(self.segments, positions):
            new_columns[segment.target_vars[0]] = np.asarray(
                segment.nbr_ids, dtype=np.int64
            )[pos]
            if segment.edge_var is not None:
                new_columns[segment.edge_var] = np.asarray(
                    segment.edge_ids, dtype=np.int64
                )[pos]
        return self.prefix.repeat(counts).with_columns(new_columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FactorizedBatch(prefix_rows={len(self.prefix)}, "
            f"segments={len(self.segments)}, matches={self.match_count()})"
        )
