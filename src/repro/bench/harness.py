"""Shared helpers for the experiment harness in ``benchmarks/``.

Each ``benchmarks/bench_*.py`` file regenerates one table (or figure) of the
paper.  The helpers here build the index configurations used by the paper's
experiment sections so that benchmark scripts and tests construct them the
same way:

* Table II:  primary-index configurations ``D``, ``Ds`` and ``Dp``;
* Table III: ``D`` and ``D+VPt`` (time-sorted secondary vertex index);
* Table IV:  ``D``, ``D+VPc`` and ``D+VPc+EPc``;
* Section V-F: the five maintenance configurations.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..graph.graph import PropertyGraph
from ..graph.types import Direction
from ..index.config import IndexConfig
from ..index.views import OneHopView
from ..query.engine import Database
from ..storage.partition_keys import PartitionKey
from ..storage.sort_keys import SortKey
from ..workloads import fraud


def available_cpus() -> int:
    """Number of CPU cores this process may actually use.

    Prefers the scheduler affinity mask (respects container/cgroup CPU
    pinning) over the raw core count.  The parallel-execution benchmark
    records this next to its measured speedup so the regression gate can
    tell "the dispatcher regressed" apart from "the machine cannot run four
    workers at once" (``requires_cpus`` in the baseline file).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass
class ConfiguredDatabase:
    """A database plus bookkeeping about how it was configured."""

    name: str
    database: Database
    setup_seconds: float
    indexed_edges: int = 0

    @property
    def memory_bytes(self) -> int:
        return self.database.memory_report().total


# ----------------------------------------------------------------------
# Table II configurations
# ----------------------------------------------------------------------
def config_d() -> IndexConfig:
    """``D``: partition by edge label, sort by neighbour ID (system default)."""
    return IndexConfig.default()


def config_ds() -> IndexConfig:
    """``Ds``: D's partitioning, sorted by neighbour label then neighbour ID."""
    return IndexConfig.sorted_by_nbr_label()


def config_dp() -> IndexConfig:
    """``Dp``: partition by edge label and neighbour label, sort by nbr ID."""
    return IndexConfig.partitioned_by_nbr_label()


def database_with_primary_config(
    graph: PropertyGraph, name: str, config: IndexConfig
) -> ConfiguredDatabase:
    """Build a database and (re)configure its primary index, timing the step.

    Building directly under ``config`` and reconfiguring from ``D`` produce
    the same physical index; the reconfiguration time reported is the rebuild
    time, matching the paper's ``IR`` column.
    """
    started = time.perf_counter()
    database = Database(graph, primary_config=config)
    elapsed = time.perf_counter() - started
    return ConfiguredDatabase(name=name, database=database, setup_seconds=elapsed)


# ----------------------------------------------------------------------
# Table III configurations
# ----------------------------------------------------------------------
def vpt_view_and_config() -> Tuple[OneHopView, IndexConfig]:
    """``VPt``: global 1-hop view, primary partitioning, sorted on edge time."""
    view = OneHopView(name="VPt")
    config = IndexConfig(
        partition_keys=(PartitionKey.edge_label(),),
        sort_keys=(SortKey.edge_property("time"), SortKey.neighbour_id()),
    )
    return view, config


def magicrecs_configs(graph: PropertyGraph) -> Dict[str, ConfiguredDatabase]:
    """The ``D`` and ``D+VPt`` configurations of Table III."""
    configs: Dict[str, ConfiguredDatabase] = {}
    configs["D"] = database_with_primary_config(graph, "D", config_d())

    started = time.perf_counter()
    database = Database(graph, primary_config=config_d())
    view, vpt_config = vpt_view_and_config()
    creation = database.create_vertex_index(
        view, directions=(Direction.FORWARD,), config=vpt_config, name="VPt"
    )
    configs["D+VPt"] = ConfiguredDatabase(
        name="D+VPt",
        database=database,
        setup_seconds=time.perf_counter() - started,
        indexed_edges=creation.indexed_edges,
    )
    return configs


# ----------------------------------------------------------------------
# Table IV configurations
# ----------------------------------------------------------------------
def fraud_configs(
    graph: PropertyGraph, selectivity: float = 0.05
) -> Dict[str, ConfiguredDatabase]:
    """The ``D``, ``D+VPc`` and ``D+VPc+EPc`` configurations of Table IV."""
    alpha = fraud.amount_alpha(graph, selectivity)
    configs: Dict[str, ConfiguredDatabase] = {}
    configs["D"] = database_with_primary_config(graph, "D", config_d())

    vpc_view, vpc_config = fraud.vpc_view_and_config()

    started = time.perf_counter()
    db_vpc = Database(graph, primary_config=config_d())
    vpc_creation = db_vpc.create_vertex_index(
        vpc_view,
        directions=(Direction.FORWARD, Direction.BACKWARD),
        config=vpc_config,
        name="VPc",
    )
    configs["D+VPc"] = ConfiguredDatabase(
        name="D+VPc",
        database=db_vpc,
        setup_seconds=time.perf_counter() - started,
        indexed_edges=graph.num_edges + vpc_creation.indexed_edges,
    )

    started = time.perf_counter()
    db_epc = Database(graph, primary_config=config_d())
    vpc_creation = db_epc.create_vertex_index(
        vpc_view,
        directions=(Direction.FORWARD, Direction.BACKWARD),
        config=vpc_config,
        name="VPc",
    )
    epc_view, epc_config = fraud.epc_view_and_config(alpha)
    epc_creation = db_epc.create_edge_index(epc_view, config=epc_config, name="EPc")
    configs["D+VPc+EPc"] = ConfiguredDatabase(
        name="D+VPc+EPc",
        database=db_epc,
        setup_seconds=time.perf_counter() - started,
        indexed_edges=graph.num_edges
        + vpc_creation.indexed_edges
        + epc_creation.indexed_edges,
    )
    return configs


# ----------------------------------------------------------------------
# Section V-F maintenance configurations
# ----------------------------------------------------------------------
def maintenance_configs() -> Dict[str, Dict]:
    """Descriptors of the five maintenance configurations of Section V-F.

    Returns a mapping from configuration name to keyword descriptors consumed
    by ``benchmarks/bench_maintenance.py``: the primary configuration, and
    whether a time-sorted vertex-partitioned index (``VPt``) and/or a
    time-predicate edge-partitioned index (``EPt``) is maintained as well.
    """
    flat_unsorted = IndexConfig(partition_keys=(), sort_keys=(SortKey.neighbour_id(),))
    dp = IndexConfig(
        partition_keys=(PartitionKey.edge_label(),), sort_keys=(SortKey.edge_id(),)
    )
    dps = IndexConfig.default()
    return {
        "Ds": {"primary": flat_unsorted, "vpt": False, "ept": False},
        "Dp": {"primary": dp, "vpt": False, "ept": False},
        "Dps": {"primary": dps, "vpt": False, "ept": False},
        "Dps+VPt": {"primary": dps, "vpt": True, "ept": False},
        "Dps+EPt": {"primary": dps, "vpt": True, "ept": True},
    }
