"""Table formatting for the benchmark harness.

Every benchmark prints a plain-text table that pairs the paper's reported
numbers with the values measured by this reproduction, so the *shape* of each
result (who wins, by roughly what factor, where the crossovers are) can be
checked at a glance.  EXPERIMENTS.md snapshots this output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Table:
    """A simple fixed-width text table."""

    title: str
    columns: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        rendered_rows = [[format_cell(cell) for cell in row] for row in self.rows]
        widths = [len(str(column)) for column in self.columns]
        for row in rendered_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = [self.title, "=" * max(len(self.title), 8)]
        lines.append(render_line([str(c) for c in self.columns]))
        lines.append(render_line(["-" * w for w in widths]))
        for row in rendered_rows:
            lines.append(render_line(row))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def speedup(baseline_seconds: float, seconds: float) -> Optional[float]:
    """Baseline / measured runtime ratio (None when either is missing)."""
    if baseline_seconds is None or seconds is None or seconds <= 0:
        return None
    return baseline_seconds / seconds


def ratio_string(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value:.2f}x"
