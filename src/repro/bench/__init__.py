"""Benchmark harness helpers: paper configurations and table rendering."""

from .harness import (
    ConfiguredDatabase,
    config_d,
    config_dp,
    config_ds,
    database_with_primary_config,
    fraud_configs,
    magicrecs_configs,
    maintenance_configs,
    vpt_view_and_config,
)
from .reporting import Table, format_cell, ratio_string, speedup

__all__ = [
    "ConfiguredDatabase",
    "Table",
    "config_d",
    "config_dp",
    "config_ds",
    "database_with_primary_config",
    "format_cell",
    "fraud_configs",
    "magicrecs_configs",
    "maintenance_configs",
    "ratio_string",
    "speedup",
    "vpt_view_and_config",
]
