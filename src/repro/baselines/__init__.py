"""Fixed-adjacency-list baseline engines used in the Table V comparison."""

from .fixed_config import FixedConfigEngine
from .neo4j_like import Neo4jLikeEngine
from .tigergraph_like import TigerGraphLikeEngine

__all__ = ["FixedConfigEngine", "Neo4jLikeEngine", "TigerGraphLikeEngine"]
