"""Neo4j-like baseline engine.

Neo4j partitions each vertex's edges by edge label and stores them in a
doubly-linked list of edge records (Section II of the paper), so adjacency
lists are reachable per (vertex, edge label) but are not kept in any
query-relevant sort order and cannot be re-partitioned or sorted by the user.
The baseline therefore uses:

* vertex-ID + edge-label partitioning (like the A+ default ``D``), and
* insertion-order (edge-ID) "sorting", so any plan that wants to intersect
  lists must sort them per access,

and refuses reconfiguration and secondary indexes.  Absolute constants of the
real system (JVM, page cache, record layout) are out of scope; the modelled
difference is the index structure available to the planner.
"""

from __future__ import annotations

from ..index.config import IndexConfig
from ..storage.partition_keys import PartitionKey
from ..storage.sort_keys import SortKey
from .fixed_config import FixedConfigEngine


class Neo4jLikeEngine(FixedConfigEngine):
    """Fixed engine with label-partitioned, unsorted adjacency lists."""

    name = "neo4j-like"

    @classmethod
    def fixed_config(cls) -> IndexConfig:
        return IndexConfig(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.edge_id(),),
        )
