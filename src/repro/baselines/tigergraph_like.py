"""TigerGraph-like baseline engine.

TigerGraph is, per the paper, "to the best of our knowledge, the most
performant [commercial GDBMS] in terms of read performance"; its adjacency
lists are partitioned by vertex and edge type and support fast expansion, but
— like Neo4j — the structure is fixed: no user-tunable nested partitioning
(e.g. by neighbour label or an edge property), no tunable sort orders, and no
secondary adjacency-list indexes.

The baseline therefore uses the same layout as GraphflowDB's default ``D``
(edge-label partitioning, neighbour-ID sorting, which keeps it competitive on
join-heavy queries) but refuses every tuning mechanism, so it cannot be
adapted to a workload the way A+ indexes allow.
"""

from __future__ import annotations

from ..index.config import IndexConfig
from .fixed_config import FixedConfigEngine


class TigerGraphLikeEngine(FixedConfigEngine):
    """Fixed engine with label-partitioned, neighbour-ID-sorted lists."""

    name = "tigergraph-like"

    @classmethod
    def fixed_config(cls) -> IndexConfig:
        return IndexConfig.default()
