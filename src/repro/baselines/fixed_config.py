"""Base class for fixed-adjacency-list comparison engines.

The paper compares GraphflowDB + A+ indexes against Neo4j and TigerGraph
(Section V-E) to show that the reported benefits come on top of a system that
is already competitive, and that fixed-index systems have no mechanism to
close the gap on join-heavy queries.  The closed-source systems obviously
cannot be rebuilt here; instead, the baselines model the *index structure*
each system exposes to its query processor:

* a fixed, non-reconfigurable primary adjacency-list layout,
* no secondary A+ indexes, and
* no tunable sorting, so multiway intersections pay a per-access sort.

Everything else — the graph, the operators, the optimizer, the executor — is
shared with the A+ engine, so measured differences isolate the index
structure, which is exactly the comparison the paper is making.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..index.config import IndexConfig
from ..query.engine import Database
from ..query.executor import QueryResult
from ..query.pattern import QueryGraph
from ..query.plan import QueryPlan


class FixedConfigEngine:
    """A GDBMS with a fixed adjacency-list structure.

    Subclasses pin the primary index configuration via :meth:`fixed_config`.
    Reconfiguration and secondary index creation raise
    :class:`IndexConfigError`, modelling the absence of those mechanisms.
    """

    #: Human-readable engine name used in benchmark tables.
    name = "fixed"

    def __init__(self, graph: PropertyGraph, batch_size: int = 1024) -> None:
        self._db = Database(graph, primary_config=self.fixed_config(), batch_size=batch_size)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @classmethod
    def fixed_config(cls) -> IndexConfig:
        """The engine's built-in adjacency-list layout."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # blocked tuning operations
    # ------------------------------------------------------------------
    def reconfigure_primary(self, config: IndexConfig):
        raise IndexConfigError(
            f"{self.name} has a fixed adjacency-list structure; "
            "primary index reconfiguration is not supported"
        )

    def create_vertex_index(self, *args, **kwargs):
        raise IndexConfigError(
            f"{self.name} does not support secondary adjacency-list indexes"
        )

    def create_edge_index(self, *args, **kwargs):
        raise IndexConfigError(
            f"{self.name} does not support secondary adjacency-list indexes"
        )

    # ------------------------------------------------------------------
    # querying (delegated)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        return self._db.graph

    def plan(self, query: QueryGraph) -> QueryPlan:
        return self._db.plan(query)

    def run(self, query: Union[QueryGraph, QueryPlan], materialize: bool = False) -> QueryResult:
        return self._db.run(query, materialize=materialize)

    def count(self, query: Union[QueryGraph, QueryPlan]) -> int:
        return self._db.count(query)

    def memory_report(self):
        return self._db.memory_report()

    def describe(self) -> str:
        return f"{self.name}: {self.fixed_config().describe()}"
