"""INDEX STORE: the catalog of A+ indexes and the access-path matcher.

"INDEX STORE maintains the metadata of each A+ index in the system such as
their type, partitioning structure, and sorting criterion, as well as
additional predicates for secondary indexes" (Section IV-A).  The DP optimizer
queries it when considering an extension of a partial match: the store returns
every index whose lists (i) can produce the candidate edges of the extension
and (ii) whose materialized predicate is subsumed by the extension's
predicate, together with the partition-key values to address the most
granular usable sub-list, the predicate guaranteed by that sub-list, and the
residual predicate the plan must still evaluate.

Extension predicates handed to the store use canonical variable names:

* ``bound`` — the already-matched vertex being extended from,
* ``nbr`` — the new vertex the extension produces,
* ``edge`` — the new query edge being matched,
* ``bound_edge`` — for edge-partitioned lookups, the already-matched edge,
* ``bound_src`` / ``bound_dst`` — the endpoints of ``bound_edge``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.statistics import GraphStatistics
from ..graph.types import Direction, EdgeAdjacencyType
from ..predicates import (
    Comparison,
    Constant,
    Predicate,
    PropertyRef,
    cmp,
    predicate_subsumes,
    residual_conjuncts,
)
from ..storage.sort_keys import SortKey
from .config import IndexConfig
from .edge_partitioned import EdgePartitionedIndex
from .primary import AdjacencyIndex, PrimaryIndex
from .vertex_partitioned import VertexPartitionedIndex

#: Variable renamings from 1-hop view variables to extension variables.
_VIEW_RENAME_FW = {"vs": "bound", "vd": "nbr", "eadj": "edge"}
_VIEW_RENAME_BW = {"vd": "bound", "vs": "nbr", "eadj": "edge"}
#: Variable renaming from 2-hop view variables to extension variables.
_TWO_HOP_RENAME = {
    "eb": "bound_edge",
    "eadj": "edge",
    "vnbr": "nbr",
    "vs": "bound_src",
    "vd": "bound_dst",
}


@dataclass
class AccessPath:
    """One way of reading the candidate edges of an extension from an index.

    Attributes:
        index: the index object (`AdjacencyIndex`, `VertexPartitionedIndex`,
            or `EdgePartitionedIndex`); all expose ``list(bound, key_values)``.
        kind: ``"primary"``, ``"vertex_secondary"`` or ``"edge_secondary"``.
        direction: direction of the adjacency relative to the bound vertex.
        key_values: partition-key values addressing the most granular usable
            sub-list (a prefix of the index's partitioning levels).
        sort_keys: sort order of the addressed sub-list.
        guaranteed: predicate (in extension variables) that every edge in the
            addressed sub-list is known to satisfy.
        residual: extension-predicate conjuncts not guaranteed by the sub-list
            and therefore still to be evaluated by the plan.
        estimated_list_size: expected number of edges in one addressed list,
            used by the i-cost model.
        uses_bound_edge: True for edge-partitioned paths (bound is an edge).
        covers_all_levels: True when the key values address a *most granular*
            group of the index.  Only then is the addressed list actually
            ordered by the index's sort keys — a coarser prefix unions several
            granular groups and is only sorted within each of them.
    """

    index: object
    kind: str
    direction: Direction
    key_values: Tuple = ()
    sort_keys: Tuple[SortKey, ...] = (SortKey.neighbour_id(),)
    guaranteed: Predicate = field(default_factory=Predicate.true)
    residual: Tuple[Comparison, ...] = ()
    estimated_list_size: float = 0.0
    uses_bound_edge: bool = False
    covers_all_levels: bool = True

    @property
    def name(self) -> str:
        return getattr(self.index, "name", type(self.index).__name__)

    @property
    def sorted_by_neighbour_id(self) -> bool:
        return self.sorted_by(SortKey.neighbour_id())

    def sorted_by(self, key: SortKey) -> bool:
        """True if the addressed sub-list is sorted by ``key`` (major key).

        Delegated to the index's ``segments_sorted_by`` flag (the batched
        index contract: the same guarantee covers every segment returned by
        ``list_many``, which is what lets the segment intersection kernel
        skip re-sorting); falls back to the path's own metadata for index
        objects that do not expose the flag.
        """
        probe = getattr(self.index, "segments_sorted_by", None)
        if probe is not None:
            return bool(probe(key, self.key_values))
        if not self.covers_all_levels:
            return False
        return bool(self.sort_keys) and self.sort_keys[0] == key

    def tuned_for(self, key: SortKey) -> bool:
        """True if the index keeps its most granular lists sorted by ``key``.

        Unlike :meth:`sorted_by` this ignores whether the addressed prefix
        covers every partitioning level: a coarser list is then a union of a
        few ``key``-sorted runs (one per deeper partition), which MULTI-EXTEND
        merges at access time.
        """
        return bool(self.sort_keys) and self.sort_keys[0] == key

    def describe(self) -> str:
        keys = ",".join(str(v) for v in self.key_values) or "-"
        return (
            f"{self.name}[{self.direction.value}] keys=({keys}) "
            f"sort={self.sort_keys[0].describe() if self.sort_keys else '-'}"
        )


@dataclass(frozen=True)
class StoreState:
    """One immutable, internally consistent generation of a store's contents.

    The graph, the primary index, the statistics, and the secondary-index
    catalogs of one generation always describe the *same* edge set.  The
    store swaps generations with a single attribute assignment (atomic under
    CPython), so a reader that captures ``state`` (via
    :meth:`IndexStore.snapshot`) can never observe a graph from one flush
    paired with indexes from another.

    ``generation`` numbers the states a store has installed (0 for the
    construction state, +1 per :meth:`IndexStore._replace`/\
    :meth:`IndexStore.install_state`).  Plans pin the generation they were
    planned against (``QueryPlan.pinned_generation``), and the
    process-backend morsel dispatcher stamps it into every task spec so a
    worker rehydrated from one generation loudly rejects tasks belonging to
    another (see :mod:`repro.query.backends`).

    States are **picklable as one self-contained unit**: graphs and index
    objects are immutable after construction and hold no locks or open
    resources, so ``pickle.dumps(state)`` is the worker-rehydration payload
    — shared references (indexes onto their graph) are preserved inside the
    one pickle, and the worker's copy stays internally consistent.
    """

    graph: PropertyGraph
    primary: PrimaryIndex
    statistics: GraphStatistics
    vertex_indexes: Dict[str, VertexPartitionedIndex]
    edge_indexes: Dict[str, EdgePartitionedIndex]
    generation: int = 0


class IndexStore:
    """Catalog of the primary index and all secondary A+ indexes.

    Snapshot / flush contract
    -------------------------

    All mutable content lives in one immutable :class:`StoreState` held in
    ``self._state``.  Writers (index registration, DDL, and most importantly
    :meth:`~repro.index.maintenance.IndexMaintainer.flush`) build a complete
    replacement state off to the side and install it with
    :meth:`install_state` — a single reference assignment.  Readers that need
    a coherent multi-attribute view (plan + execute a query while another
    thread may flush) call :meth:`snapshot`, which returns a read-only
    ``IndexStore`` view pinned to the captured state.  Consequences:

    * a query planned and executed against one snapshot sees either the
      entirely pre-flush or the entirely post-flush store, never a partially
      merged index or a graph/index generation mix;
    * index objects and graphs are immutable after construction, so pinned
      snapshots stay valid (and correct) for as long as a caller holds them.
      (``Database.reconfigure_primary`` honours this by installing a *new*
      ``PrimaryIndex`` through :meth:`install_state`; calling the in-place
      ``PrimaryIndex.reconfigure`` directly on a shared store forfeits the
      pinned-snapshot guarantee for that primary.)

    The guarantee is **readers versus one writer**.  Writers — index
    registration/drop, ``Database.reconfigure_primary``, and maintenance
    flushes — each perform an unsynchronized read-modify-write of the state,
    so two *concurrent* writers can lose one of the two updates (e.g. an
    index registered during a flush vanishes when the flush installs its
    replacement state).  Serialize all DDL and maintenance on one thread;
    queries may run concurrently with that single writer without restriction.
    """

    def __init__(self, graph: PropertyGraph, primary: PrimaryIndex) -> None:
        self._state = StoreState(
            graph=graph,
            primary=primary,
            statistics=GraphStatistics(graph),
            vertex_indexes={},
            edge_indexes={},
        )

    # ------------------------------------------------------------------
    # state access and atomic replacement
    # ------------------------------------------------------------------
    @property
    def state(self) -> StoreState:
        """The current generation (one coherent read)."""
        return self._state

    @property
    def generation(self) -> int:
        """Generation number of the current state (0 = construction state)."""
        return self._state.generation

    @property
    def graph(self) -> PropertyGraph:
        return self._state.graph

    @property
    def primary(self) -> PrimaryIndex:
        return self._state.primary

    @property
    def statistics(self) -> GraphStatistics:
        return self._state.statistics

    @property
    def _vertex_indexes(self) -> Dict[str, VertexPartitionedIndex]:
        return self._state.vertex_indexes

    @property
    def _edge_indexes(self) -> Dict[str, EdgePartitionedIndex]:
        return self._state.edge_indexes

    def install_state(
        self,
        graph: PropertyGraph,
        primary: PrimaryIndex,
        statistics: GraphStatistics,
        vertex_indexes: Dict[str, VertexPartitionedIndex],
        edge_indexes: Dict[str, EdgePartitionedIndex],
    ) -> None:
        """Atomically replace the whole store state (the flush swap)."""
        self._replace(
            graph=graph,
            primary=primary,
            statistics=statistics,
            vertex_indexes=vertex_indexes,
            edge_indexes=edge_indexes,
        )

    def snapshot(self) -> "IndexStore":
        """A read view of the store pinned to the current generation.

        The view exposes the full read API (access-path matching, memory
        reporting, ...) but never follows later :meth:`install_state` swaps.
        """
        view = IndexStore.__new__(IndexStore)
        view._state = self._state
        return view

    def export_snapshot(self) -> StoreState:
        """The current generation as a self-contained, picklable payload.

        This is what crosses the process boundary when a morsel backend
        rehydrates workers: one :class:`StoreState` whose graph, primary,
        and secondary indexes are internally consistent and immutable.
        Pickle it *together with* any plan pinned to it (in one
        ``pickle.dumps`` call) so the plan's index references resolve to the
        same deserialized objects on the worker side.
        """
        return self._state

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _replace(self, **changes) -> None:
        """Install a state derived from the current one (one atomic swap).

        Every installed state gets the next generation number, so any two
        states a store has ever held are distinguishable — the pinning
        handle for plans and process-pool worker payloads.
        """
        for catalog in ("vertex_indexes", "edge_indexes"):
            if catalog in changes:
                changes[catalog] = dict(changes[catalog])
        changes["generation"] = self._state.generation + 1
        self._state = dataclasses.replace(self._state, **changes)

    def register_vertex_index(self, index: VertexPartitionedIndex) -> None:
        if index.name in self._vertex_indexes:
            raise IndexConfigError(f"duplicate vertex-partitioned index {index.name!r}")
        self._replace(vertex_indexes={**self._vertex_indexes, index.name: index})

    def register_edge_index(self, index: EdgePartitionedIndex) -> None:
        if index.name in self._edge_indexes:
            raise IndexConfigError(f"duplicate edge-partitioned index {index.name!r}")
        self._replace(edge_indexes={**self._edge_indexes, index.name: index})

    def drop_index(self, name: str) -> None:
        if name in self._vertex_indexes:
            catalog = dict(self._vertex_indexes)
            del catalog[name]
            self._replace(vertex_indexes=catalog)
            return
        if name in self._edge_indexes:
            catalog = dict(self._edge_indexes)
            del catalog[name]
            self._replace(edge_indexes=catalog)
            return
        raise IndexConfigError(f"no secondary index named {name!r}")

    @property
    def vertex_indexes(self) -> List[VertexPartitionedIndex]:
        return list(self._vertex_indexes.values())

    @property
    def edge_indexes(self) -> List[EdgePartitionedIndex]:
        return list(self._edge_indexes.values())

    def secondary_index_names(self) -> List[str]:
        return list(self._vertex_indexes) + list(self._edge_indexes)

    # ------------------------------------------------------------------
    # access-path matching: vertex-bound extensions
    # ------------------------------------------------------------------
    def _partition_values_from_predicate(
        self,
        config: IndexConfig,
        predicate: Predicate,
    ) -> Tuple[List, List[Comparison]]:
        """Match equality conjuncts to the index's partition keys, in order.

        Returns the usable prefix of partition-key values and the list of
        conjuncts those values guarantee.
        """
        conjuncts = [c.normalized() for c in predicate.conjuncts()]
        values: List = []
        covered: List[Comparison] = []
        for key in config.partition_keys:
            target_var = "edge" if key.target == "edge" else "nbr"
            found = None
            for conjunct in conjuncts:
                if conjunct in covered:
                    continue
                if (
                    conjunct.op.value == "="
                    and isinstance(conjunct.left, PropertyRef)
                    and isinstance(conjunct.right, Constant)
                    and conjunct.left.var == target_var
                    and conjunct.left.prop == key.prop
                ):
                    found = conjunct
                    break
            if found is None:
                break
            values.append(found.right.value)
            covered.append(found)
        return values, covered

    def _estimate_vertex_list_size(
        self,
        index: Union[AdjacencyIndex, VertexPartitionedIndex],
        direction: Direction,
        key_values: Sequence,
        guaranteed: Predicate,
    ) -> float:
        """Rough expected size of one addressed list (for i-cost)."""
        num_vertices = max(self.graph.num_vertices, 1)
        if isinstance(index, AdjacencyIndex):
            total_entries = self.graph.num_edges
        else:
            total_entries = index.num_indexed_edges
        base = total_entries / num_vertices
        # Discount for each addressed partition level beyond the view itself.
        config = index.config
        fraction = 1.0
        for key, value in zip(config.partition_keys, key_values):
            if key.target == "edge" and key.prop == "label":
                code = self.graph.schema.edge_label_code(value) if isinstance(value, str) else value
                fraction *= max(self.statistics.edge_label_selectivity(code), 1e-9)
            elif key.target == "nbr" and key.prop == "label":
                code = (
                    self.graph.schema.vertex_label_code(value)
                    if isinstance(value, str)
                    else value
                )
                fraction *= max(self.statistics.vertex_label_selectivity(code), 1e-9)
            else:
                fraction *= 1.0 / max(key.effective_domain_size(self.graph), 1)
        return base * fraction

    def find_vertex_access_paths(
        self,
        direction: Direction,
        extension_predicate: Predicate,
    ) -> List[AccessPath]:
        """Access paths for extending a matched vertex to a new neighbour.

        Args:
            direction: FORWARD to follow out-edges of the bound vertex,
                BACKWARD to follow in-edges.
            extension_predicate: conjunction over the canonical variables
                ``bound``, ``edge`` and ``nbr`` that the matched edge/neighbour
                must satisfy (label equalities included as conjuncts).

        Returns:
            all usable access paths, primary index included.
        """
        rename = _VIEW_RENAME_FW if direction is Direction.FORWARD else _VIEW_RENAME_BW
        paths: List[AccessPath] = []

        candidates: List[Tuple[Union[AdjacencyIndex, VertexPartitionedIndex], Predicate, str]] = []
        primary_adj = self.primary.for_direction(direction)
        candidates.append((primary_adj, Predicate.true(), "primary"))
        for index in self._vertex_indexes.values():
            if index.direction is not direction:
                continue
            view_pred = index.view.predicate.renamed(rename)
            if index.view.edge_label is not None:
                view_pred = view_pred.and_also(
                    Predicate.of(cmp(PropertyRef("edge", "label"), "=", index.view.edge_label))
                )
            candidates.append((index, view_pred, "vertex_secondary"))

        for index, view_pred, kind in candidates:
            if not predicate_subsumes(view_pred, extension_predicate):
                continue
            key_values, covered = self._partition_values_from_predicate(
                index.config, extension_predicate
            )
            guaranteed = view_pred.and_also(Predicate(covered))
            residual = tuple(residual_conjuncts(guaranteed, extension_predicate))
            estimated = self._estimate_vertex_list_size(
                index, direction, key_values, guaranteed
            )
            paths.append(
                AccessPath(
                    index=index,
                    kind=kind,
                    direction=direction,
                    key_values=tuple(key_values),
                    sort_keys=tuple(index.config.sort_keys),
                    guaranteed=guaranteed,
                    residual=residual,
                    estimated_list_size=estimated,
                    covers_all_levels=len(key_values) == len(index.config.partition_keys),
                )
            )
        return paths

    # ------------------------------------------------------------------
    # access-path matching: edge-bound extensions
    # ------------------------------------------------------------------
    def find_edge_access_paths(
        self,
        adjacency: EdgeAdjacencyType,
        extension_predicate: Predicate,
    ) -> List[AccessPath]:
        """Access paths for extending a matched *edge* to an adjacent edge.

        Args:
            adjacency: the 2-path shape relating the bound edge and the new
                edge (which endpoint is shared, and the new edge's direction).
            extension_predicate: conjunction over ``bound_edge``, ``edge``,
                ``nbr`` (and optionally ``bound_src``/``bound_dst``).
        """
        paths: List[AccessPath] = []
        for index in self._edge_indexes.values():
            if index.adjacency is not adjacency:
                continue
            view_pred = index.view.predicate.renamed(_TWO_HOP_RENAME)
            if not predicate_subsumes(view_pred, extension_predicate):
                continue
            key_values, covered = self._partition_values_from_predicate(
                index.config, extension_predicate
            )
            guaranteed = view_pred.and_also(Predicate(covered))
            residual = tuple(residual_conjuncts(guaranteed, extension_predicate))
            estimated = index.average_list_size
            for key, value in zip(index.config.partition_keys, key_values):
                estimated /= max(key.effective_domain_size(self.graph), 1)
            paths.append(
                AccessPath(
                    index=index,
                    kind="edge_secondary",
                    direction=adjacency.adjacency_direction,
                    key_values=tuple(key_values),
                    sort_keys=tuple(index.config.sort_keys),
                    guaranteed=guaranteed,
                    residual=residual,
                    estimated_list_size=estimated,
                    uses_bound_edge=True,
                    covers_all_levels=len(key_values) == len(index.config.partition_keys),
                )
            )
        return paths

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def memory_breakdowns(self):
        breakdowns = self.primary.memory_breakdowns()
        for index in self._vertex_indexes.values():
            breakdowns.append(index.memory_breakdown())
        for index in self._edge_indexes.values():
            breakdowns.append(index.memory_breakdown())
        return breakdowns

    def nbytes(self) -> int:
        return sum(b.total for b in self.memory_breakdowns())

    def describe(self) -> str:
        lines = ["IndexStore:"]
        lines.append(f"  {self.primary.describe()}")
        for index in self._vertex_indexes.values():
            lines.append(f"  {index.describe()}")
        for index in self._edge_indexes.values():
            lines.append(f"  {index.describe()}")
        return "\n".join(lines)
