"""Secondary edge-partitioned A+ indexes (2-hop views).

An edge-partitioned index extends the notion of adjacency from vertices to
edges: for every *bound* edge ``eb`` it stores the adjacent edges ``eadj``
(one of the four 2-path shapes of Section III-B2) that satisfy the view's
predicate, partitioned by ``eb``'s edge ID and then by the index's nested
partitioning levels, sorted by its sort keys.

Every list bound to ``eb = (vs, vd)`` is a subset of the primary ID list of
the vertex shared between ``eb`` and its adjacent edges, so entries are stored
as offsets into that primary list, exactly like vertex-partitioned indexes
(Section III-B3).  Unlike vertex-partitioned indexes, an edge may appear in
many lists (once per bound edge whose predicate it satisfies), which is why
2-hop views must carry predicates relating both edges.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction, EDGE_ID_DTYPE, EdgeAdjacencyType
from ..storage.csr import NestedCSR
from ..storage.memory import MemoryBreakdown
from ..storage.offset_lists import OffsetLists
from ..storage.sort_keys import SortKey, sort_values_matrix
from .config import IndexConfig
from .primary import AdjacencyIndex, PrimaryIndex
from .views import TwoHopView

#: Number of bound edges processed per vectorized chunk during construction.
_BUILD_CHUNK = 8192


class EdgePartitionedIndex:
    """A secondary edge-partitioned A+ index over a 2-hop view.

    Args:
        graph: the property graph.
        view: the 2-hop view; its adjacency type fixes which endpoint of the
            bound edge is shared and the direction of the adjacent edges.
        config: nested partitioning and sorting configuration applied to the
            adjacent edges.
        primary: the system's primary index pair; the adjacency lists of the
            shared vertices are read from it during construction and the
            offset lists point into it.
        name: optional index name.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        view: TwoHopView,
        config: IndexConfig,
        primary: PrimaryIndex,
        name: Optional[str] = None,
    ) -> None:
        config.validate(graph)
        self.graph = graph
        self.view = view
        self.config = config
        self.adjacency = view.adjacency
        self.name = name or view.name
        self.adjacent_primary: AdjacencyIndex = primary.for_direction(
            view.adjacency_direction
        )

        started = time.perf_counter()
        bound_ids, offsets, eadj_ids, vnbr_ids = self._build_entries()

        level_codes = [
            key.effective_codes(graph, eadj_ids, vnbr_ids)
            for key in config.partition_keys
        ]
        level_domains = [
            key.effective_domain_size(graph) for key in config.partition_keys
        ]
        sort_values = sort_values_matrix(config.sort_keys, graph, eadj_ids, vnbr_ids)

        self.csr = NestedCSR(
            num_bound=graph.num_edges,
            bound_ids=bound_ids,
            level_codes=level_codes,
            level_domains=level_domains,
            sort_values=sort_values,
        )
        order = self.csr.order
        self.offset_lists = OffsetLists(offsets[order], bound_ids[order])
        self.creation_seconds = time.perf_counter() - started

    @classmethod
    def from_sorted(
        cls,
        graph: PropertyGraph,
        view: TwoHopView,
        config: IndexConfig,
        primary: PrimaryIndex,
        csr: NestedCSR,
        offsets: np.ndarray,
        bound_ids: np.ndarray,
        name: Optional[str] = None,
    ) -> "EdgePartitionedIndex":
        """Build an index from pre-merged state, skipping the 2-hop join.

        ``offsets``/``bound_ids`` must already be in index position order
        (surviving pairs spliced with the sorted delta pairs) with offsets
        recomputed against the new primary index, and ``csr`` built over the
        matching group IDs.  Used by incremental maintenance merges.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.view = view
        self.config = config
        self.adjacency = view.adjacency
        self.name = name or view.name
        self.adjacent_primary = primary.for_direction(view.adjacency_direction)
        self.csr = csr
        self.offset_lists = OffsetLists(offsets, bound_ids)
        self.creation_seconds = 0.0
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _shared_vertices(self, bound_edges: np.ndarray) -> np.ndarray:
        """The vertex shared between each bound edge and its adjacent edges."""
        if self.adjacency.bound_endpoint_is_destination:
            return self.graph.edge_dst[bound_edges]
        return self.graph.edge_src[bound_edges]

    def _build_entries(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Enumerate all qualifying (bound edge, adjacent edge) pairs.

        The enumeration is equivalent to running the 2-hop view as a join of
        the edge table with itself on the shared vertex; it is processed in
        chunks of bound edges to bound peak memory.
        """
        graph = self.graph
        adj = self.adjacent_primary
        all_edges = np.arange(graph.num_edges, dtype=EDGE_ID_DTYPE)

        chunks_bound = []
        chunks_offsets = []
        chunks_eadj = []
        chunks_vnbr = []

        for chunk_start in range(0, graph.num_edges, _BUILD_CHUNK):
            bound_chunk = all_edges[chunk_start : chunk_start + _BUILD_CHUNK]
            shared = self._shared_vertices(bound_chunk)
            starts = adj.csr.bound_starts(shared)
            ends = adj.csr.bound_ends(shared)
            lengths = (ends - starts).astype(np.int64)
            total = int(lengths.sum())
            if total == 0:
                continue

            repeated_bound = np.repeat(bound_chunk, lengths)
            repeated_starts = np.repeat(starts, lengths)
            # Positions of the adjacent edges inside the primary ID lists.
            cumulative = np.concatenate([[0], np.cumsum(lengths)[:-1]])
            within = np.arange(total, dtype=np.int64) - np.repeat(cumulative, lengths)
            positions = repeated_starts + within

            eadj_ids = adj.id_lists.edge_ids[positions]
            vnbr_ids = adj.id_lists.nbr_ids[positions].astype(np.int64)

            arrays = {
                "eb": ("edge", repeated_bound),
                "eadj": ("edge", eadj_ids),
                "vnbr": ("vertex", vnbr_ids),
                "vs": ("vertex", graph.edge_src[repeated_bound]),
                "vd": ("vertex", graph.edge_dst[repeated_bound]),
            }
            mask = self.view.predicate.evaluate_bulk(graph, {}, arrays)
            # A bound edge never lists itself (a 2-path uses two distinct edges).
            mask &= eadj_ids != repeated_bound
            if not mask.any():
                continue

            chunks_bound.append(repeated_bound[mask])
            chunks_offsets.append(within[mask])
            chunks_eadj.append(eadj_ids[mask])
            chunks_vnbr.append(vnbr_ids[mask])

        if not chunks_bound:
            empty_edge = np.empty(0, dtype=EDGE_ID_DTYPE)
            empty = np.empty(0, dtype=np.int64)
            return empty_edge, empty, empty_edge.copy(), empty

        return (
            np.concatenate(chunks_bound),
            np.concatenate(chunks_offsets),
            np.concatenate(chunks_eadj),
            np.concatenate(chunks_vnbr),
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def key_codes(self, key_values: Sequence) -> list:
        codes = []
        for key, value in zip(self.config.partition_keys, key_values):
            codes.append(key.code_for_value(self.graph, value))
        return codes

    def shared_vertex(self, bound_edge_id: int) -> int:
        """The vertex whose primary list the bound edge's offsets point into."""
        if self.adjacency.bound_endpoint_is_destination:
            return int(self.graph.edge_dst[bound_edge_id])
        return int(self.graph.edge_src[bound_edge_id])

    def list_range(self, bound_edge_id: int, key_values: Sequence = ()) -> Tuple[int, int]:
        return self.csr.group_range(bound_edge_id, self.key_codes(key_values))

    def list(
        self, bound_edge_id: int, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ids, nbr_ids)`` of the adjacency list of one edge."""
        start, end = self.list_range(bound_edge_id, key_values)
        primary_start = self.adjacent_primary.vertex_list_start(
            self.shared_vertex(bound_edge_id)
        )
        return self.offset_lists.resolve(
            start,
            end,
            primary_start,
            self.adjacent_primary.id_lists.edge_ids,
            self.adjacent_primary.id_lists.nbr_ids,
        )

    def list_many(
        self, bound_edge_ids: np.ndarray, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`list`: adjacency lists of many bound edges at once.

        Returns ``(edge_ids, nbr_ids, counts)``, the concatenation of the
        per-bound-edge lists plus their lengths.  Shared vertices and primary
        list starts are computed for the whole batch with array indexing.
        """
        bound_edge_ids = np.asarray(bound_edge_ids, dtype=np.int64)
        positions, counts = self.csr.gather(
            bound_edge_ids, self.key_codes(key_values)
        )
        shared = self._shared_vertices(bound_edge_ids)
        primary_starts = self.adjacent_primary.csr.bound_starts(shared)
        edge_ids, nbr_ids = self.offset_lists.resolve_many(
            positions,
            primary_starts,
            counts,
            self.adjacent_primary.id_lists.edge_ids,
            self.adjacent_primary.id_lists.nbr_ids,
        )
        return edge_ids, nbr_ids, counts

    def segments_sorted_by(self, key: SortKey, key_values: Sequence = ()) -> bool:
        """True when every list returned under this key-value prefix is
        internally sorted on ``key`` (batched index contract; lets the
        segment intersection kernel skip re-sorting ``list_many`` output).
        """
        return self.config.granular_segments_sorted_by(key, key_values)

    def degree(self, bound_edge_id: int, key_values: Sequence = ()) -> int:
        start, end = self.list_range(bound_edge_id, key_values)
        return end - start

    @property
    def num_indexed_edges(self) -> int:
        """Total number of (bound edge, adjacent edge) entries stored."""
        return len(self.offset_lists)

    @property
    def average_list_size(self) -> float:
        if self.graph.num_edges == 0:
            return 0.0
        return self.num_indexed_edges / self.graph.num_edges

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> MemoryBreakdown:
        return MemoryBreakdown(
            name=self.name,
            offset_list_bytes=self.offset_lists.nbytes(),
            partition_level_bytes=self.csr.nbytes_levels(),
        )

    def nbytes(self) -> int:
        return self.memory_breakdown().total

    def describe(self) -> str:
        return (
            f"EdgePartitionedIndex({self.name}, {self.adjacency.value}, "
            f"{self.config.describe()}, {self.num_indexed_edges:,} entries)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
