"""Bitmap-based secondary index: the alternative design of Section III-B3.

Instead of storing one offset per indexed edge, a bitmap marks, for every edge
in the primary A+ index's lists, whether it belongs to the secondary index.
The paper discusses this as a reasonable design point *only* when the
secondary index keeps the primary's sort order, and notes the trade-off this
module makes measurable:

* storage is one bit per *primary* edge, independent of the view's
  selectivity — more compact than offset lists when the view is unselective,
  less compact when it is selective;
* reading a list requires as many bit tests as there are edges in the primary
  list, irrespective of how many edges the view actually contains, so access
  cost does not shrink with selectivity.

This class exists for the ablation benchmark comparing bitmaps against offset
lists; the system's secondary indexes proper use offset lists.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction, EDGE_ID_DTYPE
from ..storage.csr import segment_mask_counts
from ..storage.memory import MemoryBreakdown
from .primary import AdjacencyIndex
from .views import OneHopView


class BitmapSecondaryIndex:
    """A 1-hop view stored as a bitmap over the primary index's positions.

    The index necessarily shares the primary's partitioning levels and sort
    order: it cannot re-sort edges, which is exactly the limitation the paper
    points out for this design.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        view: OneHopView,
        direction: Direction,
        primary: AdjacencyIndex,
        name: Optional[str] = None,
    ) -> None:
        if primary.direction is not direction:
            raise IndexConfigError(
                "bitmap index direction must match its primary index"
            )
        self.graph = graph
        self.view = view
        self.direction = direction
        self.primary = primary
        self.name = name or f"{view.name}-bitmap-{direction.value}"

        started = time.perf_counter()
        selected = self._select_edges()
        positions = primary.positions_of_edges(selected)
        self._bits = np.zeros(graph.num_edges, dtype=bool)
        self._bits[positions] = True
        self._num_selected = len(selected)
        self.creation_seconds = time.perf_counter() - started

    def _select_edges(self) -> np.ndarray:
        graph = self.graph
        all_edges = np.arange(graph.num_edges, dtype=EDGE_ID_DTYPE)
        mask = np.ones(graph.num_edges, dtype=bool)
        if self.view.edge_label is not None:
            label_code = graph.schema.edge_label_code(self.view.edge_label)
            mask &= graph.edge_labels == label_code
        if not self.view.predicate.is_true:
            arrays = {
                "eadj": ("edge", all_edges),
                "vs": ("vertex", graph.edge_src),
                "vd": ("vertex", graph.edge_dst),
            }
            mask &= self.view.predicate.evaluate_bulk(graph, {}, arrays)
        return all_edges[mask]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def list(
        self, vertex_id: int, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ids, nbr_ids)`` of the view's edges for one vertex.

        The partition key values address sub-lists of the *primary* index,
        since the bitmap shares its structure.
        """
        start, end = self.primary.list_range(vertex_id, key_values)
        bits = self._bits[start:end]
        edge_ids = self.primary.id_lists.edge_ids[start:end][bits]
        nbr_ids = self.primary.id_lists.nbr_ids[start:end][bits]
        return edge_ids, nbr_ids

    def list_many(
        self, vertex_ids: np.ndarray, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`list`: bit-test many primary lists in one gather.

        Returns ``(edge_ids, nbr_ids, counts)``, the concatenation of the
        per-vertex view lists plus their lengths, matching the batched
        contract of the other index classes.
        """
        positions, counts = self.primary.csr.gather(
            vertex_ids, self.primary.key_codes(key_values)
        )
        bits = self._bits[positions]
        new_counts = segment_mask_counts(counts, bits)
        selected = positions[bits]
        return (
            self.primary.id_lists.edge_ids[selected],
            self.primary.id_lists.nbr_ids[selected],
            new_counts,
        )

    def segments_sorted_by(self, key, key_values: Sequence = ()) -> bool:
        """True when every list returned under this key-value prefix is
        internally sorted on ``key``.

        A bitmap index necessarily inherits the primary's partitioning and
        sort order (it only masks entries out, which preserves sortedness),
        so the question is delegated to the primary index.
        """
        return self.primary.segments_sorted_by(key, key_values)

    def access_cost(self, vertex_id: int, key_values: Sequence = ()) -> int:
        """Number of bit tests needed to read one list.

        Equal to the primary list length regardless of selectivity; contrast
        with an offset list, which touches only the qualifying edges.
        """
        start, end = self.primary.list_range(vertex_id, key_values)
        return end - start

    @property
    def num_indexed_edges(self) -> int:
        return self._num_selected

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """One bit per primary edge, rounded up to whole bytes."""
        return (self.graph.num_edges + 7) // 8

    def memory_breakdown(self) -> MemoryBreakdown:
        return MemoryBreakdown(name=self.name, other_bytes=self.nbytes())

    def describe(self) -> str:
        return (
            f"BitmapSecondaryIndex({self.name}, {self.direction.value}, "
            f"{self.num_indexed_edges:,}/{self.graph.num_edges:,} edges set)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
