"""Index configurations: nested partitioning criteria plus a sort order.

An :class:`IndexConfig` captures everything tunable about the *structure* of
one A+ index beyond its level-0 partitioning (which is fixed: vertex IDs for
primary and vertex-partitioned indexes, edge IDs for edge-partitioned
indexes): the nested categorical partitioning levels and the sort order of the
most granular ID/offset lists (Sections III-A1 and III-A2).

The GraphflowDB default configuration ``D`` partitions by adjacent-edge label
and sorts by neighbour ID; the paper's experiments additionally use ``Ds``
(sort by neighbour label, then neighbour ID) and ``Dp`` (partition by edge
label and neighbour label, sort by neighbour ID), which are provided as
constructors here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..storage.partition_keys import PartitionKey
from ..storage.sort_keys import SortKey


@dataclass(frozen=True)
class IndexConfig:
    """Partitioning levels and sorting criterion of one A+ index.

    Attributes:
        partition_keys: nested partitioning criteria, outermost first.
        sort_keys: sort order of the most granular lists, major key first.
    """

    partition_keys: Tuple[PartitionKey, ...] = ()
    sort_keys: Tuple[SortKey, ...] = (SortKey.neighbour_id(),)

    def __post_init__(self) -> None:
        if not self.sort_keys:
            object.__setattr__(self, "sort_keys", (SortKey.neighbour_id(),))

    # ------------------------------------------------------------------
    # common configurations used in the paper's evaluation
    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "IndexConfig":
        """GraphflowDB's default ``D``: partition by edge label, sort by nbr ID."""
        return cls(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.neighbour_id(),),
        )

    @classmethod
    def sorted_by_nbr_label(cls) -> "IndexConfig":
        """``Ds``: keep edge-label partitioning, sort by nbr label then nbr ID."""
        return cls(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.nbr_property("label"), SortKey.neighbour_id()),
        )

    @classmethod
    def partitioned_by_nbr_label(cls) -> "IndexConfig":
        """``Dp``: partition by edge label and nbr label, sort by nbr ID."""
        return cls(
            partition_keys=(PartitionKey.edge_label(), PartitionKey.nbr_label()),
            sort_keys=(SortKey.neighbour_id(),),
        )

    @classmethod
    def flat(cls) -> "IndexConfig":
        """No nested partitioning; sort by neighbour ID only."""
        return cls(partition_keys=(), sort_keys=(SortKey.neighbour_id(),))

    def with_sort(self, *sort_keys: SortKey) -> "IndexConfig":
        """Return a copy with a different sort order."""
        return IndexConfig(partition_keys=self.partition_keys, sort_keys=tuple(sort_keys))

    def with_partitioning(self, *partition_keys: PartitionKey) -> "IndexConfig":
        """Return a copy with a different nested partitioning."""
        return IndexConfig(partition_keys=tuple(partition_keys), sort_keys=self.sort_keys)

    # ------------------------------------------------------------------
    # validation and introspection
    # ------------------------------------------------------------------
    def validate(self, graph: PropertyGraph) -> None:
        """Check that all keys exist and partition keys are categorical.

        ``nbr.label`` sort keys are allowed even though labels are not
        declared properties; property-based keys must exist in the schema.
        """
        for key in self.partition_keys:
            key.domain_size(graph)  # raises IndexConfigError if not categorical
        for key in self.sort_keys:
            if key.is_neighbour_id:
                continue
            if key.prop == "label":
                continue
            if key.target == "edge" and not graph.schema.has_edge_property(key.prop):
                raise IndexConfigError(f"unknown edge property {key.prop!r} in sort key")
            if key.target == "nbr" and not graph.schema.has_vertex_property(key.prop):
                raise IndexConfigError(
                    f"unknown vertex property {key.prop!r} in sort key"
                )

    @property
    def primary_sort_key(self) -> SortKey:
        """The major sort key of the most granular lists."""
        return self.sort_keys[0]

    @property
    def sorted_by_neighbour_id(self) -> bool:
        """True when the innermost lists are ordered by neighbour ID first."""
        return self.sort_keys[0].is_neighbour_id

    def same_partitioning_as(self, other: "IndexConfig") -> bool:
        return self.partition_keys == other.partition_keys

    def granular_segments_sorted_by(self, key: SortKey, key_values: Sequence) -> bool:
        """True when every list addressed by this key-value prefix is
        internally sorted on ``key``.

        The batched index contract behind ``segments_sorted_by`` on the index
        classes: only a prefix addressing the most granular groups is
        actually ordered by the sort keys — a coarser prefix unions several
        granular groups, each sorted individually.  The segment intersection
        kernel uses this to skip re-sorting ``list_many`` output.
        """
        if len(key_values) != len(self.partition_keys):
            return False
        return bool(self.sort_keys) and self.sort_keys[0] == key

    def describe(self) -> str:
        partition = ", ".join(k.describe() for k in self.partition_keys) or "(none)"
        sort = ", ".join(k.describe() for k in self.sort_keys)
        return f"PARTITION BY {partition} SORT BY {sort}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
