"""Parser for the A+ index DDL commands used in the paper.

Three commands are supported, mirroring Sections III-A and III-B:

* ``RECONFIGURE PRIMARY INDEXES PARTITION BY ... SORT BY ...``
* ``CREATE 1-HOP VIEW <name> MATCH vs-[eadj(:L)]->vd WHERE ...
  INDEX AS FW|BW|FW-BW PARTITION BY ... SORT BY ...``
* ``CREATE 2-HOP VIEW <name> MATCH <2-path with eb and eadj> WHERE ...
  INDEX AS PARTITION BY ... SORT BY ...``

The WHERE clause is a comma-separated conjunction of comparisons between
``var.prop`` references and constants or other references.  The position of
``eb`` in the 2-hop MATCH pattern determines the adjacency type
(Destination-FW/BW, Source-FW/BW), exactly as in the paper's examples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import DDLParseError
from ..graph.types import Direction, EdgeAdjacencyType
from ..predicates import Comparison, Constant, Predicate, PropertyRef, cmp
from ..storage.partition_keys import PartitionKey
from ..storage.sort_keys import SortKey
from .config import IndexConfig
from .views import OneHopView, TwoHopView


@dataclass
class ReconfigurePrimaryCommand:
    """Parsed ``RECONFIGURE PRIMARY INDEXES`` command."""

    config: IndexConfig


@dataclass
class CreateOneHopCommand:
    """Parsed ``CREATE 1-HOP VIEW`` command."""

    view: OneHopView
    directions: Tuple[Direction, ...]
    config: IndexConfig


@dataclass
class CreateTwoHopCommand:
    """Parsed ``CREATE 2-HOP VIEW`` command."""

    view: TwoHopView
    config: IndexConfig


DDLCommand = Union[ReconfigurePrimaryCommand, CreateOneHopCommand, CreateTwoHopCommand]

_COMPARISON_RE = re.compile(
    r"^\s*(?P<left>[A-Za-z_][\w]*\.[A-Za-z_][\w]*)\s*"
    r"(?P<op><=|>=|<>|!=|=|<|>)\s*"
    r"(?P<right>.+?)\s*$"
)
_REF_RE = re.compile(r"^[A-Za-z_][\w]*\.[A-Za-z_][\w]*$")


def _parse_operand(text: str):
    text = text.strip()
    if _REF_RE.match(text):
        var, prop = text.split(".", 1)
        return PropertyRef(var, prop)
    if text.startswith("'") and text.endswith("'") or text.startswith('"') and text.endswith('"'):
        return Constant(text[1:-1])
    try:
        return Constant(int(text))
    except ValueError:
        pass
    try:
        return Constant(float(text))
    except ValueError:
        pass
    return Constant(text)


def parse_comparison(text: str) -> Comparison:
    """Parse one comparison of a WHERE clause."""
    match = _COMPARISON_RE.match(text)
    if not match:
        raise DDLParseError(f"cannot parse comparison {text!r}")
    var, prop = match.group("left").split(".", 1)
    left = PropertyRef(var, prop)
    right = _parse_operand(match.group("right"))
    return cmp(left, match.group("op").replace("!=", "<>"), right)


def parse_where(text: str) -> Predicate:
    """Parse a comma- or AND-separated conjunction of comparisons."""
    text = text.strip()
    if not text:
        return Predicate.true()
    parts = re.split(r",|\bAND\b|&", text, flags=re.IGNORECASE)
    return Predicate(parse_comparison(part) for part in parts if part.strip())


def _parse_partition_by(text: Optional[str]) -> Tuple[PartitionKey, ...]:
    if not text:
        return ()
    return tuple(PartitionKey.parse(part) for part in text.split(",") if part.strip())


def _parse_sort_by(text: Optional[str]) -> Tuple[SortKey, ...]:
    if not text:
        return (SortKey.neighbour_id(),)
    return tuple(SortKey.parse(part) for part in text.split(",") if part.strip())


def _extract_clause(command: str, keyword: str, terminators: List[str]) -> Optional[str]:
    """Extract the text following ``keyword`` up to the next terminator keyword."""
    pattern = re.compile(rf"\b{keyword}\b(.*?)(?={'|'.join(terminators)}|$)", re.IGNORECASE | re.DOTALL)
    match = pattern.search(command)
    if not match:
        return None
    return match.group(1).strip()


_TERMINATORS = [r"\bPARTITION\s+BY\b", r"\bSORT\s+BY\b", r"\bINDEX\s+AS\b", r"\bWHERE\b", r"\bMATCH\b"]


def _parse_config(command: str) -> IndexConfig:
    partition_text = _extract_clause(command, r"PARTITION\s+BY", _TERMINATORS)
    sort_text = _extract_clause(command, r"SORT\s+BY", _TERMINATORS)
    return IndexConfig(
        partition_keys=_parse_partition_by(partition_text),
        sort_keys=_parse_sort_by(sort_text),
    )


# ----------------------------------------------------------------------
# MATCH-pattern parsing for view definitions
# ----------------------------------------------------------------------
_ONE_HOP_MATCH_RE = re.compile(
    r"vs\s*-\s*\[\s*eadj\s*(?::\s*(?P<label>\w+))?\s*\]\s*->\s*vd",
    re.IGNORECASE,
)

#: 2-hop MATCH patterns and the adjacency type each implies (Section III-B2).
_TWO_HOP_PATTERNS = [
    # Destination-FW: vs-[eb]->vd-[eadj]->vnbr
    (
        re.compile(
            r"vs\s*-\s*\[\s*eb\s*\]\s*->\s*vd\s*-\s*\[\s*eadj\s*\]\s*->\s*vnbr",
            re.IGNORECASE,
        ),
        EdgeAdjacencyType.DST_FW,
    ),
    # Destination-BW: vs-[eb]->vd<-[eadj]-vnbr
    (
        re.compile(
            r"vs\s*-\s*\[\s*eb\s*\]\s*->\s*vd\s*<-\s*\[\s*eadj\s*\]\s*-\s*vnbr",
            re.IGNORECASE,
        ),
        EdgeAdjacencyType.DST_BW,
    ),
    # Source-FW: vnbr-[eadj]->vs-[eb]->vd
    (
        re.compile(
            r"vnbr\s*-\s*\[\s*eadj\s*\]\s*->\s*vs\s*-\s*\[\s*eb\s*\]\s*->\s*vd",
            re.IGNORECASE,
        ),
        EdgeAdjacencyType.SRC_FW,
    ),
    # Source-BW: vnbr<-[eadj]-vs-[eb]->vd
    (
        re.compile(
            r"vnbr\s*<-\s*\[\s*eadj\s*\]\s*-\s*vs\s*-\s*\[\s*eb\s*\]\s*->\s*vd",
            re.IGNORECASE,
        ),
        EdgeAdjacencyType.SRC_BW,
    ),
]


def _parse_directions(command: str) -> Tuple[Direction, ...]:
    index_as = _extract_clause(command, r"INDEX\s+AS", _TERMINATORS)
    if not index_as:
        return (Direction.FORWARD,)
    text = index_as.strip().upper().replace(" ", "")
    if text in ("FW-BW", "FW−BW", "BW-FW", "FWBW"):
        return (Direction.FORWARD, Direction.BACKWARD)
    if text == "FW":
        return (Direction.FORWARD,)
    if text == "BW":
        return (Direction.BACKWARD,)
    if not text:
        return (Direction.FORWARD,)
    raise DDLParseError(f"cannot parse INDEX AS directions {index_as!r}")


def parse_ddl(command: str) -> DDLCommand:
    """Parse one DDL command string into a command object."""
    stripped = command.strip()
    upper = stripped.upper()

    if upper.startswith("RECONFIGURE"):
        config = _parse_config(stripped)
        return ReconfigurePrimaryCommand(config=config)

    one_hop = re.match(r"CREATE\s+1\s*-\s*HOP\s+VIEW\s+(\w+)", stripped, re.IGNORECASE)
    if one_hop:
        name = one_hop.group(1)
        match_text = _extract_clause(stripped, r"MATCH", _TERMINATORS) or ""
        label = None
        label_match = _ONE_HOP_MATCH_RE.search(match_text)
        if label_match:
            label = label_match.group("label")
        where_text = _extract_clause(stripped, r"WHERE", _TERMINATORS) or ""
        predicate = parse_where(where_text)
        view = OneHopView(name=name, predicate=predicate, edge_label=label)
        return CreateOneHopCommand(
            view=view,
            directions=_parse_directions(stripped),
            config=_parse_config(stripped),
        )

    two_hop = re.match(r"CREATE\s+2\s*-\s*HOP\s+VIEW\s+(\w+)", stripped, re.IGNORECASE)
    if two_hop:
        name = two_hop.group(1)
        match_text = _extract_clause(stripped, r"MATCH", _TERMINATORS) or ""
        adjacency = None
        for pattern, adjacency_type in _TWO_HOP_PATTERNS:
            if pattern.search(match_text):
                adjacency = adjacency_type
                break
        if adjacency is None:
            raise DDLParseError(
                f"cannot determine adjacency type from MATCH pattern {match_text!r}"
            )
        where_text = _extract_clause(stripped, r"WHERE", _TERMINATORS) or ""
        predicate = parse_where(where_text)
        view = TwoHopView(name=name, adjacency=adjacency, predicate=predicate)
        return CreateTwoHopCommand(view=view, config=_parse_config(stripped))

    raise DDLParseError(f"unrecognized DDL command: {stripped[:80]!r}")
