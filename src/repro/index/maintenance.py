"""Index maintenance: buffered edge insertions and deletions (Section IV-C).

GraphflowDB is read-optimized; updates are supported non-transactionally via
per-page *update buffers*:

* every vertex-partitioned data page (a group of 64 vertices) has an update
  buffer; an edge insertion ``e = (u, v)`` is first appended to the buffers of
  ``u``'s and ``v``'s pages in the two primary indexes;
* for every secondary vertex-partitioned index, the view predicate is
  evaluated on ``e`` and, if it passes, the insertion is appended to the
  corresponding offset-list page buffers;
* for every secondary edge-partitioned index, two delta queries run: (1) the
  new edge is tested against the existing adjacent edges ``eb`` whose lists it
  may need to join, and (2) a new list is created for ``e`` by scanning the
  adjacency of its shared vertex and testing the view predicate;
* deletions add a tombstone for the deleted position;
* buffers are merged into the actual data pages when full (here: when the
  total number of buffered operations reaches ``merge_threshold``), by
  rebuilding the affected indexes over the base + delta edges.

The :class:`IndexMaintainer` guarantees that after :meth:`flush` the indexes
are identical to indexes rebuilt from scratch over the updated graph; between
flushes the buffered work faithfully models the per-insert cost that the
paper's maintenance micro-benchmark (Section V-F) measures.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import MaintenanceError
from ..graph.graph import PropertyGraph
from ..graph.property_store import PropertyStore
from ..graph.types import Direction, PAGE_SIZE
from ..predicates import Predicate
from .edge_partitioned import EdgePartitionedIndex
from .index_store import IndexStore
from .primary import PrimaryIndex
from .vertex_partitioned import VertexPartitionedIndex


@dataclass
class PendingEdge:
    """One buffered edge insertion."""

    src: int
    dst: int
    label: str
    properties: Dict[str, object] = field(default_factory=dict)


@dataclass
class MaintenanceStats:
    """Counters accumulated while applying updates."""

    inserted_edges: int = 0
    deleted_edges: int = 0
    buffered_operations: int = 0
    secondary_predicate_evaluations: int = 0
    edge_partitioned_probes: int = 0
    merges: int = 0
    merge_seconds: float = 0.0


class IndexMaintainer:
    """Applies edge insertions/deletions to a graph and its A+ indexes.

    Args:
        store: the :class:`IndexStore` whose indexes are being maintained.
        merge_threshold: number of buffered operations that triggers a merge
            (rebuild of graph arrays and indexes).
    """

    def __init__(self, store: IndexStore, merge_threshold: int = 4096) -> None:
        self.store = store
        self.merge_threshold = merge_threshold
        self.stats = MaintenanceStats()
        self._pending_edges: List[PendingEdge] = []
        self._tombstones: Set[int] = set()
        # Per-page buffers of the primary indexes: page id -> pending positions.
        self._page_buffers: Dict[Tuple[str, int], List[int]] = defaultdict(list)

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        return self.store.graph

    def insert_edge(self, src: int, dst: int, label: str, **properties) -> None:
        """Buffer one edge insertion and apply the per-index delta work."""
        graph = self.graph
        if not (0 <= src < graph.num_vertices) or not (0 <= dst < graph.num_vertices):
            raise MaintenanceError(
                f"edge endpoints ({src}, {dst}) out of range "
                f"[0, {graph.num_vertices})"
            )
        if label not in graph.schema.edge_labels:
            raise MaintenanceError(f"unknown edge label {label!r}")
        pending = PendingEdge(src=src, dst=dst, label=label, properties=dict(properties))
        pending_index = len(self._pending_edges)
        self._pending_edges.append(pending)

        # (1) primary indexes: buffer the insertion in the pages of u and v.
        self._page_buffers[("primary-fw", src // PAGE_SIZE)].append(pending_index)
        self._page_buffers[("primary-bw", dst // PAGE_SIZE)].append(pending_index)
        self.stats.buffered_operations += 2

        # (2) secondary vertex-partitioned indexes: run the view predicate on
        #     the new edge; if it passes, buffer the offset-list update.
        for index in self.store.vertex_indexes:
            self.stats.secondary_predicate_evaluations += 1
            if self._edge_passes_one_hop_view(pending, index):
                bound = src if index.direction is Direction.FORWARD else dst
                self._page_buffers[(index.name, bound // PAGE_SIZE)].append(
                    pending_index
                )
                self.stats.buffered_operations += 1

        # (3) secondary edge-partitioned indexes: delta queries against the
        #     existing adjacency (Section IV-C's "more involved" path).
        for index in self.store.edge_indexes:
            probes = self._edge_partitioned_delta_probes(pending, index)
            self.stats.edge_partitioned_probes += probes
            self.stats.buffered_operations += 1

        self.stats.inserted_edges += 1
        if self.stats.buffered_operations >= self.merge_threshold:
            self.flush()

    def delete_edge(self, edge_id: int) -> None:
        """Add a tombstone for an existing edge; removed at the next merge."""
        if edge_id < 0 or edge_id >= self.graph.num_edges:
            raise MaintenanceError(f"edge id {edge_id} out of range")
        self._tombstones.add(int(edge_id))
        self.stats.deleted_edges += 1
        self.stats.buffered_operations += 1
        if self.stats.buffered_operations >= self.merge_threshold:
            self.flush()

    # ------------------------------------------------------------------
    # delta-query helpers
    # ------------------------------------------------------------------
    def _edge_passes_one_hop_view(
        self, pending: PendingEdge, index: VertexPartitionedIndex
    ) -> bool:
        view = index.view
        if view.edge_label is not None and view.edge_label != pending.label:
            return False
        if view.predicate.is_true:
            return True
        return self._evaluate_on_pending(view.predicate, pending)

    def _evaluate_on_pending(self, predicate: Predicate, pending: PendingEdge) -> bool:
        """Evaluate a view predicate on a not-yet-materialized edge."""
        graph = self.graph
        schema = graph.schema

        def value_of(var: str, prop: str):
            if var == "eadj":
                if prop == "label":
                    return schema.edge_label_code(pending.label)
                value = pending.properties.get(prop)
                if isinstance(value, str) and schema.has_edge_property(prop):
                    prop_def = schema.edge_property(prop)
                    if prop_def.is_categorical:
                        return prop_def.code_of(value)
                return value
            vertex = pending.src if var == "vs" else pending.dst
            if prop == "label":
                return int(graph.vertex_labels[vertex])
            if prop == "ID":
                return vertex
            return graph.vertex_props.raw_value(vertex, prop)

        from ..predicates import Constant, PropertyRef, encode_constant

        for comparison in predicate.conjuncts():
            comparison = comparison.normalized()
            left = comparison.left
            right = comparison.right
            left_value = (
                value_of(left.var, left.prop)
                if isinstance(left, PropertyRef)
                else left.value
            )
            if isinstance(right, PropertyRef):
                right_value = value_of(right.var, right.prop)
            else:
                right_value = right.value
                if isinstance(right_value, str) and isinstance(left, PropertyRef):
                    kind = "edge" if left.var == "eadj" else "vertex"
                    try:
                        right_value = encode_constant(self.graph, left, kind, right_value)
                    except Exception:
                        pass
            if left_value is None or right_value is None:
                return False
            if not comparison.op.apply(left_value, right_value):
                return False
        return True

    def _edge_partitioned_delta_probes(
        self, pending: PendingEdge, index: EdgePartitionedIndex
    ) -> int:
        """Run the two delta queries of an edge-partitioned index insertion.

        Returns the number of candidate adjacent edges probed, which is the
        dominant maintenance cost of edge-partitioned indexes and the reason
        their update rates are an order of magnitude lower in Section V-F.
        """
        graph = self.graph
        adjacency = index.adjacency
        # Delta query 1: existing bound edges whose lists may gain the new edge.
        # For Destination-FW, those are edges whose destination equals the new
        # edge's source, i.e. the backward adjacency of ``src`` (and so on for
        # the other adjacency types).
        if adjacency.bound_endpoint_is_destination:
            shared_for_existing = pending.src if adjacency.adjacency_direction is Direction.FORWARD else pending.dst
            candidate_bounds, _ = self.store.primary.backward.list(shared_for_existing)
        else:
            shared_for_existing = pending.src if adjacency.adjacency_direction is Direction.FORWARD else pending.dst
            candidate_bounds, _ = self.store.primary.forward.list(shared_for_existing)
        probes = len(candidate_bounds)

        # Delta query 2: build the new edge's own adjacency list by scanning
        # the adjacency of the shared vertex.
        shared_vertex = pending.dst if adjacency.bound_endpoint_is_destination else pending.src
        adjacent_primary = self.store.primary.for_direction(adjacency.adjacency_direction)
        adjacent_edges, _ = adjacent_primary.list(shared_vertex)
        probes += len(adjacent_edges)
        return probes

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Merge all buffered updates: rebuild the graph and every index."""
        if not self._pending_edges and not self._tombstones:
            self._page_buffers.clear()
            self.stats.buffered_operations = 0
            return
        started = time.perf_counter()
        new_graph = self._materialize_graph()
        self._rebuild_indexes(new_graph)
        self._pending_edges.clear()
        self._tombstones.clear()
        self._page_buffers.clear()
        self.stats.buffered_operations = 0
        self.stats.merges += 1
        self.stats.merge_seconds += time.perf_counter() - started

    def _materialize_graph(self) -> PropertyGraph:
        graph = self.graph
        schema = graph.schema
        keep = np.ones(graph.num_edges, dtype=bool)
        for edge_id in self._tombstones:
            keep[edge_id] = False

        new_src = [int(s) for s in graph.edge_src[keep]]
        new_dst = [int(d) for d in graph.edge_dst[keep]]
        new_labels = [int(l) for l in graph.edge_labels[keep]]
        kept_old = np.nonzero(keep)[0]

        for pending in self._pending_edges:
            new_src.append(pending.src)
            new_dst.append(pending.dst)
            new_labels.append(schema.edge_label_code(pending.label))

        edge_store = PropertyStore(schema, "edge")
        edge_store.set_count(len(new_src))
        for name in schema.edge_property_names:
            prop_def = schema.edge_property(name)
            old_column = graph.edge_props.column(name)
            if isinstance(old_column, list):
                values = [old_column[int(i)] for i in kept_old]
            else:
                values = list(old_column[kept_old])
            for pending in self._pending_edges:
                raw = pending.properties.get(name)
                if raw is not None and isinstance(raw, str) and prop_def.is_categorical:
                    raw = prop_def.code_of(raw)
                values.append(raw if raw is not None else None)
            # Re-coded values are already integers; nulls handled by set_column.
            decoded = [None if _is_null(v, prop_def) else v for v in values]
            edge_store.set_column(name, decoded)

        return PropertyGraph(
            schema=schema,
            vertex_labels=graph.vertex_labels.copy(),
            edge_src=np.asarray(new_src, dtype=np.int32),
            edge_dst=np.asarray(new_dst, dtype=np.int32),
            edge_labels=np.asarray(new_labels, dtype=np.int32),
            vertex_props=graph.vertex_props,
            edge_props=edge_store,
        )

    def _rebuild_indexes(self, new_graph: PropertyGraph) -> None:
        store = self.store
        primary_config = store.primary.config
        new_primary = PrimaryIndex(new_graph, config=primary_config)

        new_store = IndexStore(new_graph, new_primary)
        for index in store.vertex_indexes:
            new_store.register_vertex_index(
                VertexPartitionedIndex(
                    new_graph,
                    index.view,
                    index.direction,
                    index.config,
                    new_primary.for_direction(index.direction),
                    name=index.name,
                )
            )
        for index in store.edge_indexes:
            new_store.register_edge_index(
                EdgePartitionedIndex(
                    new_graph, index.view, index.config, new_primary, name=index.name
                )
            )

        # Swap the rebuilt state into the existing store object so callers
        # holding a reference observe the merged data.
        store.graph = new_graph
        store.primary = new_primary
        store.statistics = new_store.statistics
        store._vertex_indexes = new_store._vertex_indexes
        store._edge_indexes = new_store._edge_indexes


def _is_null(value, prop_def) -> bool:
    """True if a raw column value represents null for the given property."""
    from ..graph.types import NULL_CATEGORY, NULL_INT

    if value is None:
        return True
    if isinstance(value, float):
        return value != value  # NaN
    if prop_def.is_categorical and value == NULL_CATEGORY:
        return True
    if not prop_def.is_categorical and value == NULL_INT:
        return True
    return False
