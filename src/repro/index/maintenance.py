"""Index maintenance: columnar update buffers and incremental merges.

GraphflowDB is read-optimized; updates are supported non-transactionally via
buffered insertions/deletions merged into the indexes when the buffers fill
(Section IV-C).  This module implements that design columnar-first:

* **Columnar delta store** — pending edge insertions are buffered as numpy
  arrays (src / dst / label code plus one raw-coded column per edge property,
  :class:`ColumnarEdgeDelta`), the same representation the batch read path
  consumes.  The bulk :meth:`IndexMaintainer.insert_edges` /
  :meth:`IndexMaintainer.delete_edges` APIs append whole batches; the scalar
  :meth:`insert_edge` / :meth:`delete_edge` methods are thin wrappers.
* **Batched per-index delta work** — for every secondary vertex-partitioned
  index the 1-hop view predicate is evaluated once per pending batch
  (``Predicate.evaluate_bulk`` with a column-override provider serving the
  buffered columns); for every secondary edge-partitioned index the delta
  probes run as vectorized range arithmetic over the primary CSRs instead of
  per-edge adjacency scans, and at merge time the candidate (bound edge,
  pending edge) pairs are grouped through the batch segment-intersection
  kernel (:func:`repro.storage.intersect.intersect_segments`, single-leg
  shape).
* **Tombstones** — deletions set bits in one boolean mask applied to every
  edge array with a single fancy-index at merge time.
* **Incremental merge** — :meth:`flush` splices the sorted pending delta into
  every index's existing sorted entries (``merge_sorted_runs``: one
  ``searchsorted`` per index on packed lexicographic keys, falling back to a
  stable lexsort when the key domain cannot pack into an int64), then rebuilds
  the CSR offsets with one ``bincount`` per level
  (:meth:`NestedCSR.from_sorted_groups`) and recomputes secondary offset
  lists against the merged primary with pure gathers.  The resulting indexes
  are byte-identical (offsets, ID lists, offset lists) to indexes rebuilt
  from scratch over the updated graph.
* **Equivalence oracles** — ``flush(incremental=False)`` keeps the
  rebuild-from-scratch path; ``IndexMaintainer(..., columnar=False)`` keeps
  the seed's tuple-at-a-time buffering (:class:`PendingEdge` rows, per-edge
  predicate evaluation and delta probes).  Both serve as the baselines the
  maintenance-throughput benchmark and the churn equivalence tests compare
  against.

Between flushes the buffered work faithfully models the per-insert cost that
the paper's maintenance micro-benchmark (Section V-F) measures: primary page
buffer updates, one secondary-view predicate evaluation per (edge, index),
and the two delta queries of each edge-partitioned index.

Concurrency: the snapshot/flush contract
----------------------------------------

Both merge strategies build the *entire* replacement state — graph, primary
index, statistics, and every secondary index — off to the side and install
it into the :class:`~repro.index.index_store.IndexStore` with one atomic
:meth:`~repro.index.index_store.IndexStore.install_state` swap.  Queries
capture a :meth:`~repro.index.index_store.IndexStore.snapshot` when they are
planned (``Database.run`` does this automatically), so a query racing a
flush sees either the complete pre-flush store or the complete post-flush
store — never a partially merged index, and never a graph of one generation
paired with indexes of another.  The maintainer itself is single-writer: do
not call ``insert_edges``/``flush`` from several threads concurrently.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MaintenanceError
from ..graph.graph import PropertyGraph
from ..graph.property_store import (
    PropertyStore,
    encode_raw_column,
    raw_dtype_of,
    raw_null_of,
)
from ..graph.schema import GraphSchema
from ..graph.statistics import GraphStatistics
from ..graph.types import (
    Direction,
    NULL_INT,
    PAGE_SIZE,
    VERTEX_ID_DTYPE,
    PropertyType,
)
from ..predicates import Predicate
from ..storage.csr import NestedCSR, fold_group_ids, merge_sorted_runs
from ..storage.intersect import intersect_segments
from ..storage.sort_keys import sort_values_matrix
from .config import IndexConfig
from .edge_partitioned import EdgePartitionedIndex
from .index_store import IndexStore
from .primary import AdjacencyIndex, PrimaryIndex
from .vertex_partitioned import VertexPartitionedIndex
from .views import OneHopView


@dataclass
class PendingEdge:
    """One buffered edge insertion (legacy tuple-at-a-time buffer)."""

    src: int
    dst: int
    label: str
    properties: Dict[str, object] = field(default_factory=dict)


class ColumnarEdgeDelta:
    """Columnar buffer of pending edge insertions.

    Each :meth:`append` adds one batch chunk: src / dst / label-code arrays
    plus raw-coded property columns (missing properties materialize as
    all-null chunks on read).  Reading a full column concatenates the chunks
    — the merge path reads each column exactly once.
    """

    def __init__(self, schema: GraphSchema) -> None:
        self._schema = schema
        self._sizes: List[int] = []
        self._src: List[np.ndarray] = []
        self._dst: List[np.ndarray] = []
        self._labels: List[np.ndarray] = []
        self._props: List[Dict[str, object]] = []
        self._total = 0

    def __len__(self) -> int:
        return self._total

    def append(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        label_codes: np.ndarray,
        prop_columns: Dict[str, object],
    ) -> None:
        self._sizes.append(len(src))
        self._src.append(np.asarray(src, dtype=np.int64))
        self._dst.append(np.asarray(dst, dtype=np.int64))
        self._labels.append(np.asarray(label_codes, dtype=np.int32))
        self._props.append(dict(prop_columns))
        self._total += len(src)

    def _concat(self, chunks: List[np.ndarray], dtype) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=dtype)
        return np.concatenate(chunks)

    @property
    def src(self) -> np.ndarray:
        return self._concat(self._src, np.int64)

    @property
    def dst(self) -> np.ndarray:
        return self._concat(self._dst, np.int64)

    @property
    def label_codes(self) -> np.ndarray:
        return self._concat(self._labels, np.int32)

    def column(self, name: str):
        """Full raw-coded column for one edge property (chunks + null fill)."""
        prop = self._schema.edge_property(name)
        if prop.ptype is PropertyType.STRING:
            out: List[object] = []
            for size, chunk in zip(self._sizes, self._props):
                values = chunk.get(name)
                out.extend(values if values is not None else [None] * size)
            return out
        dtype = raw_dtype_of(prop)
        null = raw_null_of(prop)
        chunks = []
        for size, chunk in zip(self._sizes, self._props):
            values = chunk.get(name)
            if values is None:
                chunks.append(np.full(size, null, dtype=dtype))
            else:
                chunks.append(np.asarray(values, dtype=dtype))
        return self._concat(chunks, dtype)


@dataclass
class MaintenanceStats:
    """Counters accumulated while applying updates."""

    inserted_edges: int = 0
    deleted_edges: int = 0
    buffered_operations: int = 0
    secondary_predicate_evaluations: int = 0
    edge_partitioned_probes: int = 0
    merges: int = 0
    merge_seconds: float = 0.0


class IndexMaintainer:
    """Applies edge insertions/deletions to a graph and its A+ indexes.

    Args:
        store: the :class:`IndexStore` whose indexes are being maintained.
        merge_threshold: number of buffered operations that triggers a merge.
        columnar: buffer pending insertions columnar-ly (numpy delta arrays,
            batched per-index delta work).  ``False`` keeps the seed's
            tuple-at-a-time :class:`PendingEdge` buffering as a cost baseline;
            the bulk APIs then raise.
        incremental: merge buffered updates into the existing indexes with
            the vectorized splice instead of rebuilding from scratch.  Only
            meaningful with ``columnar=True``; ``flush(incremental=False)``
            forces the scratch rebuild (the equivalence oracle) per call.
    """

    def __init__(
        self,
        store: IndexStore,
        merge_threshold: int = 4096,
        columnar: bool = True,
        incremental: bool = True,
    ) -> None:
        self.store = store
        self.merge_threshold = merge_threshold
        self.columnar = bool(columnar)
        self.incremental = bool(incremental) and self.columnar
        self.stats = MaintenanceStats()
        self._pending_edges: List[PendingEdge] = []
        self._delta: Optional[ColumnarEdgeDelta] = (
            ColumnarEdgeDelta(store.graph.schema) if self.columnar else None
        )
        self._tombstone_mask: Optional[np.ndarray] = None
        # Per-page update-buffer occupancy of the primary and secondary
        # vertex-partitioned indexes: (index name, page id) -> buffered count.
        self._page_buffers: Dict[Tuple[str, int], int] = defaultdict(int)

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PropertyGraph:
        return self.store.graph

    def insert_edge(self, src: int, dst: int, label: str, **properties) -> None:
        """Buffer one edge insertion and apply the per-index delta work."""
        if not self.columnar:
            self._insert_edge_rowwise(src, dst, label, properties)
            return
        self.insert_edges(
            np.asarray([src], dtype=np.int64),
            np.asarray([dst], dtype=np.int64),
            label,
            properties={name: [value] for name, value in properties.items()},
        )

    def insert_edges(
        self,
        src,
        dst,
        labels,
        properties: Optional[Dict[str, Sequence]] = None,
    ) -> None:
        """Buffer a batch of edge insertions with one pass per index.

        Args:
            src / dst: endpoint vertex-ID arrays of equal length.
            labels: one edge-label name for the whole batch, or a sequence of
                label names / codes aligned with ``src``.
            properties: mapping from edge-property name to an aligned value
                sequence (``None`` entries are nulls); names not declared in
                the schema are dropped, mirroring the scalar path.
        """
        if not self.columnar:
            raise MaintenanceError(
                "insert_edges requires a columnar maintainer (columnar=True)"
            )
        graph = self.graph
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise MaintenanceError("src and dst must be 1-D arrays of equal length")
        count = len(src)
        if count == 0:
            return
        if (
            int(src.min()) < 0
            or int(src.max()) >= graph.num_vertices
            or int(dst.min()) < 0
            or int(dst.max()) >= graph.num_vertices
        ):
            raise MaintenanceError(
                f"edge endpoints out of range [0, {graph.num_vertices})"
            )
        label_codes = self._encode_labels(labels, count)
        prop_columns: Dict[str, object] = {}
        if properties:
            for name, values in properties.items():
                if not graph.schema.has_edge_property(name):
                    continue  # unknown properties are dropped, as in the scalar path
                prop = graph.schema.edge_property(name)
                prop_columns[name] = encode_raw_column(prop, values, count)
        self._delta.append(src, dst, label_codes, prop_columns)

        # (1) primary indexes: buffer the insertions in the pages of u and v.
        self._count_page_updates("primary-fw", src)
        self._count_page_updates("primary-bw", dst)
        self.stats.buffered_operations += 2 * count

        # (2) secondary vertex-partitioned indexes: evaluate each view
        #     predicate once over the whole pending batch.
        provider = self._pending_column_provider(label_codes, prop_columns, count)
        for index in self.store.vertex_indexes:
            self.stats.secondary_predicate_evaluations += count
            mask = self._pending_view_mask(index.view, src, dst, label_codes, provider)
            if mask.any():
                bound = src if index.direction is Direction.FORWARD else dst
                self._count_page_updates(index.name, bound[mask])
                self.stats.buffered_operations += int(mask.sum())

        # (3) secondary edge-partitioned indexes: batch-wide delta probes
        #     (range arithmetic on the primary CSRs; the candidate pairs are
        #     materialized through the segment kernel at merge time).
        for index in self.store.edge_indexes:
            self.stats.edge_partitioned_probes += self._bulk_edge_probes(
                src, dst, index
            )
            self.stats.buffered_operations += count

        self.stats.inserted_edges += count
        if self.stats.buffered_operations >= self.merge_threshold:
            self.flush()

    def delete_edge(self, edge_id: int) -> None:
        """Add a tombstone for an existing edge; removed at the next merge."""
        self.delete_edges(np.asarray([edge_id], dtype=np.int64))

    def delete_edges(self, edge_ids) -> None:
        """Add tombstones for a batch of edges (one boolean-mask update)."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise MaintenanceError("edge_ids must be a 1-D array")
        if len(ids) == 0:
            return
        if int(ids.min()) < 0 or int(ids.max()) >= self.graph.num_edges:
            raise MaintenanceError(
                f"edge id out of range [0, {self.graph.num_edges})"
            )
        if self._tombstone_mask is None:
            self._tombstone_mask = np.zeros(self.graph.num_edges, dtype=bool)
        self._tombstone_mask[ids] = True
        self.stats.deleted_edges += len(ids)
        self.stats.buffered_operations += len(ids)
        if self.stats.buffered_operations >= self.merge_threshold:
            self.flush()

    # ------------------------------------------------------------------
    # columnar buffering helpers
    # ------------------------------------------------------------------
    def _encode_labels(self, labels, count: int) -> np.ndarray:
        schema = self.graph.schema
        if isinstance(labels, str):
            if labels not in schema.edge_labels:
                raise MaintenanceError(f"unknown edge label {labels!r}")
            return np.full(count, schema.edge_label_code(labels), dtype=np.int32)
        arr = np.asarray(labels)
        if len(arr) != count:
            raise MaintenanceError(
                f"labels has {len(arr)} entries, expected {count}"
            )
        if arr.dtype.kind in "iu":
            if len(arr) and (
                int(arr.min()) < 0 or int(arr.max()) >= schema.num_edge_labels
            ):
                raise MaintenanceError("edge label code out of range")
            return arr.astype(np.int32)
        codes = np.empty(count, dtype=np.int32)
        cache: Dict[str, int] = {}
        for position, name in enumerate(arr.tolist()):
            code = cache.get(name)
            if code is None:
                if name not in schema.edge_labels:
                    raise MaintenanceError(f"unknown edge label {name!r}")
                code = cache[name] = schema.edge_label_code(name)
            codes[position] = code
        return codes

    def _count_page_updates(self, index_name: str, bounds: np.ndarray) -> None:
        pages, counts = np.unique(
            np.asarray(bounds, dtype=np.int64) // PAGE_SIZE, return_counts=True
        )
        for page, count in zip(pages.tolist(), counts.tolist()):
            self._page_buffers[(index_name, page)] += count

    def _pending_column_provider(
        self, label_codes: np.ndarray, prop_columns: Dict[str, object], count: int
    ):
        """Raw-column provider for the pending batch's ``eadj`` variable."""
        schema = self.graph.schema

        def provider(prop_name: str) -> Optional[np.ndarray]:
            if prop_name == "label":
                return label_codes.astype(np.int64)
            if schema.has_edge_property(prop_name):
                column = prop_columns.get(prop_name)
                if column is None:
                    prop = schema.edge_property(prop_name)
                    return encode_raw_column(prop, None, count)
                if isinstance(column, list):
                    return np.asarray(column, dtype=object)
                return column
            # Pending edges have no IDs (or unknown properties) yet: a null
            # column never satisfies a comparison, matching the scalar path.
            return np.full(count, NULL_INT, dtype=np.int64)

        return provider

    def _pending_view_mask(
        self,
        view: OneHopView,
        src: np.ndarray,
        dst: np.ndarray,
        label_codes: np.ndarray,
        provider,
    ) -> np.ndarray:
        """Which pending edges of one batch fall into a 1-hop view."""
        count = len(src)
        return view.membership_mask(
            self.graph,
            label_codes,
            np.arange(count, dtype=np.int64),
            src,
            dst,
            overrides={"eadj": provider},
        )

    def _bulk_edge_probes(
        self, src: np.ndarray, dst: np.ndarray, index: EdgePartitionedIndex
    ) -> int:
        """Batched probe accounting of an edge-partitioned index insertion.

        Counts the candidate adjacent edges of both delta queries for the
        whole pending batch with pure CSR range arithmetic (no per-edge
        adjacency scans).  The count is the dominant maintenance cost of
        edge-partitioned indexes (Section V-F); the candidates themselves are
        materialized and joined at merge time.
        """
        adjacency = index.adjacency
        primary = self.store.primary
        # Delta query 1: existing bound edges whose lists may gain a pending
        # edge — the adjacency of the pending edge's anchored endpoint.
        anchor = (
            src if adjacency.adjacency_direction is Direction.FORWARD else dst
        )
        bound_side = (
            primary.backward
            if adjacency.bound_endpoint_is_destination
            else primary.forward
        )
        probes = int(
            (bound_side.csr.bound_ends(anchor) - bound_side.csr.bound_starts(anchor)).sum()
        )
        # Delta query 2: each pending edge's own list — the adjacency of its
        # shared vertex.
        shared = dst if adjacency.bound_endpoint_is_destination else src
        adjacent = primary.for_direction(adjacency.adjacency_direction)
        probes += int(
            (adjacent.csr.bound_ends(shared) - adjacent.csr.bound_starts(shared)).sum()
        )
        return probes

    # ------------------------------------------------------------------
    # legacy tuple-at-a-time buffering (columnar=False cost baseline)
    # ------------------------------------------------------------------
    def _insert_edge_rowwise(
        self, src: int, dst: int, label: str, properties: Dict[str, object]
    ) -> None:
        graph = self.graph
        if not (0 <= src < graph.num_vertices) or not (0 <= dst < graph.num_vertices):
            raise MaintenanceError(
                f"edge endpoints ({src}, {dst}) out of range "
                f"[0, {graph.num_vertices})"
            )
        if label not in graph.schema.edge_labels:
            raise MaintenanceError(f"unknown edge label {label!r}")
        pending = PendingEdge(src=src, dst=dst, label=label, properties=dict(properties))
        self._pending_edges.append(pending)

        # (1) primary indexes: buffer the insertion in the pages of u and v.
        self._page_buffers[("primary-fw", src // PAGE_SIZE)] += 1
        self._page_buffers[("primary-bw", dst // PAGE_SIZE)] += 1
        self.stats.buffered_operations += 2

        # (2) secondary vertex-partitioned indexes: run the view predicate on
        #     the new edge; if it passes, buffer the offset-list update.
        for index in self.store.vertex_indexes:
            self.stats.secondary_predicate_evaluations += 1
            if self._edge_passes_one_hop_view(pending, index):
                bound = src if index.direction is Direction.FORWARD else dst
                self._page_buffers[(index.name, bound // PAGE_SIZE)] += 1
                self.stats.buffered_operations += 1

        # (3) secondary edge-partitioned indexes: delta queries against the
        #     existing adjacency (Section IV-C's "more involved" path).
        for index in self.store.edge_indexes:
            probes = self._edge_partitioned_delta_probes(pending, index)
            self.stats.edge_partitioned_probes += probes
            self.stats.buffered_operations += 1

        self.stats.inserted_edges += 1
        if self.stats.buffered_operations >= self.merge_threshold:
            self.flush()

    def _edge_passes_one_hop_view(
        self, pending: PendingEdge, index: VertexPartitionedIndex
    ) -> bool:
        view = index.view
        if view.edge_label is not None and view.edge_label != pending.label:
            return False
        if view.predicate.is_true:
            return True
        return self._evaluate_on_pending(view.predicate, pending)

    def _evaluate_on_pending(self, predicate: Predicate, pending: PendingEdge) -> bool:
        """Evaluate a view predicate on a not-yet-materialized edge."""
        graph = self.graph
        schema = graph.schema

        def value_of(var: str, prop: str):
            if var == "eadj":
                if prop == "label":
                    return schema.edge_label_code(pending.label)
                value = pending.properties.get(prop)
                if isinstance(value, str) and schema.has_edge_property(prop):
                    prop_def = schema.edge_property(prop)
                    if prop_def.is_categorical:
                        return prop_def.code_of(value)
                return value
            vertex = pending.src if var == "vs" else pending.dst
            if prop == "label":
                return int(graph.vertex_labels[vertex])
            if prop == "ID":
                return vertex
            return graph.vertex_props.raw_value(vertex, prop)

        from ..predicates import Constant, PropertyRef, encode_constant

        for comparison in predicate.conjuncts():
            comparison = comparison.normalized()
            left = comparison.left
            right = comparison.right
            left_value = (
                value_of(left.var, left.prop)
                if isinstance(left, PropertyRef)
                else left.value
            )
            if isinstance(right, PropertyRef):
                right_value = value_of(right.var, right.prop)
            else:
                right_value = right.value
                if isinstance(right_value, str) and isinstance(left, PropertyRef):
                    kind = "edge" if left.var == "eadj" else "vertex"
                    try:
                        right_value = encode_constant(self.graph, left, kind, right_value)
                    except Exception:
                        pass
            if left_value is None or right_value is None:
                return False
            if not comparison.op.apply(left_value, right_value):
                return False
        return True

    def _edge_partitioned_delta_probes(
        self, pending: PendingEdge, index: EdgePartitionedIndex
    ) -> int:
        """Run the two delta queries of an edge-partitioned index insertion.

        Returns the number of candidate adjacent edges probed, which is the
        dominant maintenance cost of edge-partitioned indexes and the reason
        their update rates are an order of magnitude lower in Section V-F.
        """
        graph = self.graph
        adjacency = index.adjacency
        # Delta query 1: existing bound edges whose lists may gain the new edge.
        # For Destination-FW, those are edges whose destination equals the new
        # edge's source, i.e. the backward adjacency of ``src`` (and so on for
        # the other adjacency types).
        if adjacency.bound_endpoint_is_destination:
            shared_for_existing = pending.src if adjacency.adjacency_direction is Direction.FORWARD else pending.dst
            candidate_bounds, _ = self.store.primary.backward.list(shared_for_existing)
        else:
            shared_for_existing = pending.src if adjacency.adjacency_direction is Direction.FORWARD else pending.dst
            candidate_bounds, _ = self.store.primary.forward.list(shared_for_existing)
        probes = len(candidate_bounds)

        # Delta query 2: build the new edge's own adjacency list by scanning
        # the adjacency of its shared vertex.
        shared_vertex = pending.dst if adjacency.bound_endpoint_is_destination else pending.src
        adjacent_primary = self.store.primary.for_direction(adjacency.adjacency_direction)
        adjacent_edges, _ = adjacent_primary.list(shared_vertex)
        probes += len(adjacent_edges)
        return probes

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def flush(self, incremental: Optional[bool] = None) -> None:
        """Merge all buffered updates into the graph and every index.

        Args:
            incremental: override the maintainer's merge strategy for this
                flush.  ``True`` splices the sorted delta into every index's
                existing entries; ``False`` rebuilds the graph arrays and all
                indexes from scratch (the equivalence oracle).  Defaults to
                the maintainer's ``incremental`` setting.
        """
        if incremental is None:
            incremental = self.incremental
        pending_count = len(self._delta) if self.columnar else len(self._pending_edges)
        has_tombstones = self._tombstone_mask is not None and bool(
            self._tombstone_mask.any()
        )
        if not pending_count and not has_tombstones:
            self._reset_buffers()
            return
        started = time.perf_counter()
        if self.columnar:
            new_graph, keep, new_id_of_old, num_kept = self._materialize_columnar()
            if incremental:
                self._merge_indexes(new_graph, keep, new_id_of_old, num_kept)
            else:
                self._rebuild_indexes(new_graph)
        else:
            new_graph = self._materialize_graph()
            self._rebuild_indexes(new_graph)
        self._reset_buffers()
        self.stats.merges += 1
        self.stats.merge_seconds += time.perf_counter() - started

    def _reset_buffers(self) -> None:
        self._pending_edges.clear()
        if self.columnar:
            self._delta = ColumnarEdgeDelta(self.store.graph.schema)
        self._tombstone_mask = None
        self._page_buffers.clear()
        self.stats.buffered_operations = 0

    def _keep_mask(self) -> np.ndarray:
        if self._tombstone_mask is None:
            return np.ones(self.graph.num_edges, dtype=bool)
        return ~self._tombstone_mask

    # -- columnar materialization ---------------------------------------
    def _materialize_columnar(
        self,
    ) -> Tuple[PropertyGraph, np.ndarray, np.ndarray, int]:
        """Vectorized graph rebuild: one mask + one concatenate per column.

        Returns ``(new_graph, keep, new_id_of_old, num_kept)`` where ``keep``
        masks the surviving old edges and ``new_id_of_old`` maps surviving
        old edge IDs to their new (post-compaction) IDs.
        """
        graph = self.graph
        schema = graph.schema
        delta = self._delta
        keep = self._keep_mask()
        num_kept = int(keep.sum())

        new_src = np.concatenate(
            [graph.edge_src[keep], delta.src.astype(VERTEX_ID_DTYPE)]
        )
        new_dst = np.concatenate(
            [graph.edge_dst[keep], delta.dst.astype(VERTEX_ID_DTYPE)]
        )
        new_labels = np.concatenate([graph.edge_labels[keep], delta.label_codes])

        edge_store = PropertyStore(schema, "edge")
        edge_store.set_count(len(new_src))
        kept_old = None
        for name in schema.edge_property_names:
            old_column = graph.edge_props.column(name)
            if isinstance(old_column, list):
                if kept_old is None:
                    kept_old = np.nonzero(keep)[0]
                values = [old_column[int(i)] for i in kept_old]
                values.extend(delta.column(name))
                edge_store.set_raw_column(name, values)
            else:
                edge_store.set_raw_column(
                    name, np.concatenate([old_column[keep], delta.column(name)])
                )

        new_graph = PropertyGraph(
            schema=schema,
            vertex_labels=graph.vertex_labels.copy(),
            edge_src=new_src,
            edge_dst=new_dst,
            edge_labels=new_labels,
            vertex_props=graph.vertex_props,
            edge_props=edge_store,
        )
        new_id_of_old = np.cumsum(keep) - 1
        return new_graph, keep, new_id_of_old, num_kept

    # -- incremental index merges ---------------------------------------
    def _merge_indexes(
        self,
        new_graph: PropertyGraph,
        keep: np.ndarray,
        new_id_of_old: np.ndarray,
        num_kept: int,
    ) -> None:
        store = self.store
        old_graph = store.graph
        old_primary = store.primary
        new_forward = self._merge_adjacency_index(
            old_primary.forward, new_graph, keep, new_id_of_old, num_kept
        )
        new_backward = self._merge_adjacency_index(
            old_primary.backward, new_graph, keep, new_id_of_old, num_kept
        )
        new_primary = PrimaryIndex.from_directions(new_graph, new_forward, new_backward)
        new_vertex = {
            name: self._merge_vertex_index(
                index, new_graph, keep, new_id_of_old, num_kept, new_primary
            )
            for name, index in store._vertex_indexes.items()
        }
        new_edge = {
            name: self._merge_edge_index(
                index,
                old_graph,
                old_primary,
                new_graph,
                keep,
                new_id_of_old,
                num_kept,
                new_primary,
            )
            for name, index in store._edge_indexes.items()
        }
        # One atomic swap: concurrent readers holding a store snapshot keep
        # the complete pre-merge generation; new snapshots see the complete
        # post-merge generation (see IndexStore's snapshot/flush contract).
        store.install_state(
            graph=new_graph,
            primary=new_primary,
            statistics=GraphStatistics(new_graph),
            vertex_indexes=new_vertex,
            edge_indexes=new_edge,
        )

    def _sorted_run_keys(
        self,
        graph: PropertyGraph,
        config: IndexConfig,
        bound_ids: np.ndarray,
        edge_ids: np.ndarray,
        nbr_ids: np.ndarray,
        extra_minor: Optional[np.ndarray] = None,
    ) -> Tuple[List[np.ndarray], List[int]]:
        """Lexicographic key columns (major first) of one index entry run."""
        level_domains = [
            key.effective_domain_size(graph) for key in config.partition_keys
        ]
        level_codes = [
            key.effective_codes(graph, edge_ids, nbr_ids)
            for key in config.partition_keys
        ]
        group_ids = fold_group_ids(bound_ids, level_codes, level_domains)
        keys: List[np.ndarray] = [group_ids]
        keys.extend(
            np.asarray(values)
            for values in sort_values_matrix(config.sort_keys, graph, edge_ids, nbr_ids)
        )
        if extra_minor is not None:
            keys.append(np.asarray(extra_minor, dtype=np.int64))
        return keys, level_domains

    @staticmethod
    def _sort_delta_run(keys: List[np.ndarray], arrays: List[np.ndarray]):
        """Stable-lexsort a delta run in place of construction order."""
        if len(keys[0]) == 0:
            return keys, arrays
        order = np.lexsort(tuple(reversed(keys)))
        return [k[order] for k in keys], [a[order] for a in arrays]

    @staticmethod
    def _splice(base_keys, delta_keys, base_arrays, delta_arrays):
        """Merge two sorted runs; returns the merged payload arrays + groups."""
        base_pos, delta_pos = merge_sorted_runs(
            base_keys, delta_keys, base_first_on_ties=True
        )
        total = len(base_pos) + len(delta_pos)
        merged = []
        for base, delta in zip(base_arrays, delta_arrays):
            out = np.empty(total, dtype=np.int64)
            out[base_pos] = base
            out[delta_pos] = delta
            merged.append(out)
        groups = np.empty(total, dtype=np.int64)
        groups[base_pos] = base_keys[0]
        groups[delta_pos] = delta_keys[0]
        return merged, groups

    def _merge_adjacency_index(
        self,
        old_index: AdjacencyIndex,
        new_graph: PropertyGraph,
        keep: np.ndarray,
        new_id_of_old: np.ndarray,
        num_kept: int,
    ) -> AdjacencyIndex:
        """Splice the pending edges into one primary adjacency index."""
        config = old_index.config
        direction = old_index.direction
        forward = direction is Direction.FORWARD

        old_edge_ids = old_index.id_lists.edge_ids
        entry_keep = keep[old_edge_ids]
        base_edges = new_id_of_old[old_edge_ids[entry_keep]]
        base_nbrs = old_index.id_lists.nbr_ids[entry_keep].astype(np.int64)
        base_bounds = (
            new_graph.edge_src[base_edges] if forward else new_graph.edge_dst[base_edges]
        ).astype(np.int64)

        delta_edges = np.arange(num_kept, new_graph.num_edges, dtype=np.int64)
        delta_bounds = (
            new_graph.edge_src[delta_edges] if forward else new_graph.edge_dst[delta_edges]
        ).astype(np.int64)
        delta_nbrs = (
            new_graph.edge_dst[delta_edges] if forward else new_graph.edge_src[delta_edges]
        ).astype(np.int64)

        base_keys, level_domains = self._sorted_run_keys(
            new_graph, config, base_bounds, base_edges, base_nbrs
        )
        delta_keys, _ = self._sorted_run_keys(
            new_graph, config, delta_bounds, delta_edges, delta_nbrs
        )
        delta_keys, (delta_edges, delta_nbrs) = self._sort_delta_run(
            delta_keys, [delta_edges, delta_nbrs]
        )
        (merged_edges, merged_nbrs), merged_groups = self._splice(
            base_keys, delta_keys, [base_edges, base_nbrs], [delta_edges, delta_nbrs]
        )
        csr = NestedCSR.from_sorted_groups(
            new_graph.num_vertices, level_domains, merged_groups
        )
        return AdjacencyIndex.from_sorted(
            new_graph,
            direction,
            config,
            csr,
            merged_edges,
            merged_nbrs,
            name=old_index.name,
        )

    def _pending_in_view(
        self, new_graph: PropertyGraph, view: OneHopView, num_kept: int
    ) -> np.ndarray:
        """Pending edges (post-materialization IDs) that fall into a view."""
        pending = np.arange(num_kept, new_graph.num_edges, dtype=np.int64)
        if len(pending) == 0:
            return pending
        mask = view.membership_mask(
            new_graph,
            new_graph.edge_labels[pending],
            pending,
            new_graph.edge_src[pending].astype(np.int64),
            new_graph.edge_dst[pending].astype(np.int64),
        )
        return pending[mask]

    def _merge_vertex_index(
        self,
        old_index: VertexPartitionedIndex,
        new_graph: PropertyGraph,
        keep: np.ndarray,
        new_id_of_old: np.ndarray,
        num_kept: int,
        new_primary: PrimaryIndex,
    ) -> VertexPartitionedIndex:
        """Splice the qualifying pending edges into one 1-hop view index."""
        config = old_index.config
        direction = old_index.direction
        forward = direction is Direction.FORWARD
        old_primary_adj = old_index.primary

        # Resolve the surviving entries against the *old* primary before the
        # swap: offsets are relative to the old list starts.
        bounds_all = old_index.offset_lists.bound_of_entry
        old_positions = old_primary_adj.csr.bound_starts(bounds_all).astype(
            np.int64
        ) + old_index.offset_lists.offsets.astype(np.int64)
        old_edges = old_primary_adj.id_lists.edge_ids[old_positions]
        entry_keep = keep[old_edges]
        base_edges = new_id_of_old[old_edges[entry_keep]]
        base_bounds = bounds_all[entry_keep]
        base_nbrs = (
            new_graph.edge_dst[base_edges] if forward else new_graph.edge_src[base_edges]
        ).astype(np.int64)

        delta_edges = self._pending_in_view(new_graph, old_index.view, num_kept)
        delta_bounds = (
            new_graph.edge_src[delta_edges] if forward else new_graph.edge_dst[delta_edges]
        ).astype(np.int64)
        delta_nbrs = (
            new_graph.edge_dst[delta_edges] if forward else new_graph.edge_src[delta_edges]
        ).astype(np.int64)

        base_keys, level_domains = self._sorted_run_keys(
            new_graph, config, base_bounds, base_edges, base_nbrs
        )
        delta_keys, _ = self._sorted_run_keys(
            new_graph, config, delta_bounds, delta_edges, delta_nbrs
        )
        delta_keys, (delta_edges, delta_bounds) = self._sort_delta_run(
            delta_keys, [delta_edges, delta_bounds]
        )
        (merged_edges, merged_bounds), merged_groups = self._splice(
            base_keys, delta_keys, [base_edges, base_bounds], [delta_edges, delta_bounds]
        )
        new_primary_adj = new_primary.for_direction(direction)
        merged_offsets = new_primary_adj.positions_of_edges(
            merged_edges
        ) - new_primary_adj.csr.bound_starts(merged_bounds).astype(np.int64)
        csr = NestedCSR.from_sorted_groups(
            new_graph.num_vertices, level_domains, merged_groups
        )
        return VertexPartitionedIndex.from_sorted(
            new_graph,
            old_index.view,
            direction,
            config,
            new_primary_adj,
            csr,
            merged_offsets,
            merged_bounds,
            name=old_index.name,
        )

    def _merge_edge_index(
        self,
        old_index: EdgePartitionedIndex,
        old_graph: PropertyGraph,
        old_primary: PrimaryIndex,
        new_graph: PropertyGraph,
        keep: np.ndarray,
        new_id_of_old: np.ndarray,
        num_kept: int,
        new_primary: PrimaryIndex,
    ) -> EdgePartitionedIndex:
        """Splice the delta 2-hop pairs into one edge-partitioned index.

        New pairs come from the two delta queries of Section IV-C, both run
        batch-wide: (1) pending edges joining the lists of *existing* bound
        edges — the candidate segments are grouped per (pending edge, bound
        edge) through the segment-intersection kernel; (2) the pending edges'
        own lists, read from the merged primary (which already contains the
        other pending edges).
        """
        view = old_index.view
        config = old_index.config
        adjacency = old_index.adjacency
        anchored_on_dst = adjacency.bound_endpoint_is_destination
        adjacent_fw = adjacency.adjacency_direction is Direction.FORWARD
        old_adj = old_index.adjacent_primary
        new_adj = new_primary.for_direction(adjacency.adjacency_direction)

        # Surviving old pairs: resolve adjacent-edge IDs via the old primary,
        # drop pairs touching a tombstoned edge, renumber.
        bounds_all = old_index.offset_lists.bound_of_entry
        shared_all = (
            old_graph.edge_dst[bounds_all] if anchored_on_dst else old_graph.edge_src[bounds_all]
        )
        old_positions = old_adj.csr.bound_starts(shared_all).astype(
            np.int64
        ) + old_index.offset_lists.offsets.astype(np.int64)
        old_eadj = old_adj.id_lists.edge_ids[old_positions]
        entry_keep = keep[bounds_all] & keep[old_eadj]
        base_bounds = new_id_of_old[bounds_all[entry_keep]]
        base_eadj = new_id_of_old[old_eadj[entry_keep]]
        base_vnbr = old_adj.id_lists.nbr_ids[old_positions[entry_keep]].astype(np.int64)

        # Delta pairs.
        pending = np.arange(num_kept, new_graph.num_edges, dtype=np.int64)
        # Query 1: pending edges as the adjacent edge of existing bound edges.
        # Candidate segments (per pending edge, the adjacency of its anchored
        # endpoint in the old graph) are grouped into distinct (row, bound
        # edge) pairs by the batch intersection kernel (single-leg shape).
        anchor = (
            new_graph.edge_src[pending] if adjacent_fw else new_graph.edge_dst[pending]
        ).astype(np.int64)
        old_bound_side = old_primary.backward if anchored_on_dst else old_primary.forward
        cand_eb, _, cand_counts = old_bound_side.list_many(anchor)
        grouped = intersect_segments(
            [cand_eb.astype(np.int64, copy=False)],
            [cand_counts],
            len(pending),
            presorted=[False],
            need_positions=False,
        )
        q1_keep = keep[grouped.group_keys]
        bound1 = new_id_of_old[grouped.group_keys[q1_keep]]
        eadj1 = pending[grouped.group_rows[q1_keep]]
        vnbr1 = (
            new_graph.edge_dst[eadj1] if adjacent_fw else new_graph.edge_src[eadj1]
        ).astype(np.int64)
        # Query 2: pending edges as the bound edge; their lists are the
        # adjacency of their shared vertex in the *merged* primary, which
        # already includes the other pending edges.
        shared_q2 = (
            new_graph.edge_dst[pending] if anchored_on_dst else new_graph.edge_src[pending]
        ).astype(np.int64)
        eadj2, vnbr2, counts2 = new_adj.list_many(shared_q2)
        bound2 = np.repeat(pending, counts2)

        cand_bound = np.concatenate([bound1, bound2.astype(np.int64)])
        cand_eadj = np.concatenate([eadj1, eadj2.astype(np.int64)])
        cand_vnbr = np.concatenate([vnbr1, vnbr2.astype(np.int64)])
        if len(cand_bound):
            arrays = {
                "eb": ("edge", cand_bound),
                "eadj": ("edge", cand_eadj),
                "vnbr": ("vertex", cand_vnbr),
                "vs": ("vertex", new_graph.edge_src[cand_bound].astype(np.int64)),
                "vd": ("vertex", new_graph.edge_dst[cand_bound].astype(np.int64)),
            }
            mask = view.predicate.evaluate_bulk(new_graph, {}, arrays)
            # A bound edge never lists itself (a 2-path uses two distinct edges).
            mask &= cand_eadj != cand_bound
            delta_bounds = cand_bound[mask]
            delta_eadj = cand_eadj[mask]
            delta_vnbr = cand_vnbr[mask]
        else:
            delta_bounds = cand_bound
            delta_eadj = cand_eadj
            delta_vnbr = cand_vnbr

        def offsets_of(bounds: np.ndarray, eadjs: np.ndarray) -> np.ndarray:
            shared = (
                new_graph.edge_dst[bounds] if anchored_on_dst else new_graph.edge_src[bounds]
            ).astype(np.int64)
            return new_adj.positions_of_edges(eadjs) - new_adj.csr.bound_starts(
                shared
            ).astype(np.int64)

        base_offsets = offsets_of(base_bounds, base_eadj)
        delta_offsets = offsets_of(delta_bounds, delta_eadj)

        # The within-list position is the scratch builder's tie-break, so it
        # closes the composite key: entries are totally ordered and the merge
        # is unambiguous.
        base_keys, level_domains = self._sorted_run_keys(
            new_graph, config, base_bounds, base_eadj, base_vnbr, extra_minor=base_offsets
        )
        delta_keys, _ = self._sorted_run_keys(
            new_graph, config, delta_bounds, delta_eadj, delta_vnbr, extra_minor=delta_offsets
        )
        delta_keys, (delta_bounds, delta_offsets) = self._sort_delta_run(
            delta_keys, [delta_bounds, delta_offsets]
        )
        (merged_bounds, merged_offsets), merged_groups = self._splice(
            base_keys, delta_keys, [base_bounds, base_offsets], [delta_bounds, delta_offsets]
        )
        csr = NestedCSR.from_sorted_groups(
            new_graph.num_edges, level_domains, merged_groups
        )
        return EdgePartitionedIndex.from_sorted(
            new_graph,
            view,
            config,
            new_primary,
            csr,
            merged_offsets,
            merged_bounds,
            name=old_index.name,
        )

    # -- scratch rebuild (legacy materialization + oracle) ---------------
    def _materialize_graph(self) -> PropertyGraph:
        graph = self.graph
        schema = graph.schema
        keep = self._keep_mask()

        new_src = [int(s) for s in graph.edge_src[keep]]
        new_dst = [int(d) for d in graph.edge_dst[keep]]
        new_labels = [int(l) for l in graph.edge_labels[keep]]
        kept_old = np.nonzero(keep)[0]

        for pending in self._pending_edges:
            new_src.append(pending.src)
            new_dst.append(pending.dst)
            new_labels.append(schema.edge_label_code(pending.label))

        edge_store = PropertyStore(schema, "edge")
        edge_store.set_count(len(new_src))
        for name in schema.edge_property_names:
            prop_def = schema.edge_property(name)
            old_column = graph.edge_props.column(name)
            if isinstance(old_column, list):
                values = [old_column[int(i)] for i in kept_old]
            else:
                values = list(old_column[kept_old])
            for pending in self._pending_edges:
                raw = pending.properties.get(name)
                if raw is not None and isinstance(raw, str) and prop_def.is_categorical:
                    raw = prop_def.code_of(raw)
                values.append(raw if raw is not None else None)
            # Re-coded values are already integers; nulls handled by set_column.
            decoded = [None if _is_null(v, prop_def) else v for v in values]
            edge_store.set_column(name, decoded)

        return PropertyGraph(
            schema=schema,
            vertex_labels=graph.vertex_labels.copy(),
            edge_src=np.asarray(new_src, dtype=np.int32),
            edge_dst=np.asarray(new_dst, dtype=np.int32),
            edge_labels=np.asarray(new_labels, dtype=np.int32),
            vertex_props=graph.vertex_props,
            edge_props=edge_store,
        )

    def _rebuild_indexes(self, new_graph: PropertyGraph) -> None:
        store = self.store
        new_primary = PrimaryIndex(
            new_graph,
            forward_config=store.primary.forward.config,
            backward_config=store.primary.backward.config,
        )

        new_store = IndexStore(new_graph, new_primary)
        for index in store.vertex_indexes:
            new_store.register_vertex_index(
                VertexPartitionedIndex(
                    new_graph,
                    index.view,
                    index.direction,
                    index.config,
                    new_primary.for_direction(index.direction),
                    name=index.name,
                )
            )
        for index in store.edge_indexes:
            new_store.register_edge_index(
                EdgePartitionedIndex(
                    new_graph, index.view, index.config, new_primary, name=index.name
                )
            )

        # Swap the rebuilt state into the existing store object so callers
        # holding a reference observe the merged data — atomically, so a
        # concurrent reader's snapshot is always one complete generation.
        store.install_state(
            graph=new_graph,
            primary=new_primary,
            statistics=new_store.statistics,
            vertex_indexes=new_store._vertex_indexes,
            edge_indexes=new_store._edge_indexes,
        )


def _is_null(value, prop_def) -> bool:
    """True if a raw column value represents null for the given property."""
    from ..graph.types import NULL_CATEGORY, NULL_INT

    if value is None:
        return True
    if isinstance(value, float):
        return value != value  # NaN
    if prop_def.is_categorical and value == NULL_CATEGORY:
        return True
    if not prop_def.is_categorical and value == NULL_INT:
        return True
    return False
