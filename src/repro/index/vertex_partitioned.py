"""Secondary vertex-partitioned A+ indexes (1-hop views).

A secondary vertex-partitioned index materializes a 1-hop view — an arbitrary
predicate-filtered subset of the edges — partitioned first by source or
destination vertex ID and then by the index's own nested partitioning levels,
with its innermost lists sorted by its own sort keys (Section III-B1).

Because every list of a vertex-partitioned index is a subset of the bound
vertex's ID list in the primary index, indexed edges are stored as *offsets*
into that primary list (Section III-B3).  When the view has no predicate and
the index's partitioning structure matches the primary's, the primary's
partitioning levels are shared and only the offset lists are stored.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction, EDGE_ID_DTYPE
from ..storage.csr import NestedCSR
from ..storage.memory import MemoryBreakdown
from ..storage.offset_lists import OffsetLists
from ..storage.sort_keys import SortKey, sort_values_matrix
from .config import IndexConfig
from .primary import AdjacencyIndex
from .views import OneHopView


class VertexPartitionedIndex:
    """One direction of a secondary vertex-partitioned A+ index.

    Args:
        graph: the property graph.
        view: the 1-hop view this index materializes.
        direction: FORWARD (partition by edge source) or BACKWARD (by
            destination).
        config: nested partitioning and sorting configuration.
        primary: the primary :class:`AdjacencyIndex` of the same direction;
            offset lists point into it.
        name: optional index name (defaults to ``<view.name>-<direction>``).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        view: OneHopView,
        direction: Direction,
        config: IndexConfig,
        primary: AdjacencyIndex,
        name: Optional[str] = None,
    ) -> None:
        if primary.direction is not direction:
            raise IndexConfigError(
                "vertex-partitioned index direction must match its primary index"
            )
        config.validate(graph)
        self.graph = graph
        self.view = view
        self.direction = direction
        self.config = config
        self.primary = primary
        self.name = name or f"{view.name}-{direction.value}"

        started = time.perf_counter()
        selected = self._select_edges()
        if direction is Direction.FORWARD:
            bound_ids = graph.edge_src[selected]
            nbr_ids = graph.edge_dst[selected]
        else:
            bound_ids = graph.edge_dst[selected]
            nbr_ids = graph.edge_src[selected]

        level_codes = [
            key.effective_codes(graph, selected, nbr_ids)
            for key in config.partition_keys
        ]
        level_domains = [
            key.effective_domain_size(graph) for key in config.partition_keys
        ]
        sort_values = sort_values_matrix(config.sort_keys, graph, selected, nbr_ids)

        self.csr = NestedCSR(
            num_bound=graph.num_vertices,
            bound_ids=bound_ids,
            level_codes=level_codes,
            level_domains=level_domains,
            sort_values=sort_values,
        )
        order = self.csr.order
        sorted_edges = selected[order]
        sorted_bounds = np.asarray(bound_ids)[order]

        positions = primary.positions_of_edges(sorted_edges)
        list_starts = primary.csr.bound_starts(sorted_bounds)
        offsets = positions - list_starts
        self.offset_lists = OffsetLists(offsets, sorted_bounds)

        # Partition-level sharing (Section III-B3): possible only when the
        # view has no predicates and the partitioning structure matches the
        # primary index's, in which case both indexes have identical CSR
        # offsets and we need not store new partitioning levels.
        self.shares_partition_levels = bool(
            view.is_global and config.same_partitioning_as(primary.config)
        )
        self.creation_seconds = time.perf_counter() - started

    @classmethod
    def from_sorted(
        cls,
        graph: PropertyGraph,
        view: OneHopView,
        direction: Direction,
        config: IndexConfig,
        primary: AdjacencyIndex,
        csr: NestedCSR,
        offsets: np.ndarray,
        bound_ids: np.ndarray,
        name: Optional[str] = None,
    ) -> "VertexPartitionedIndex":
        """Build an index from pre-merged state, skipping view scan and sort.

        ``offsets``/``bound_ids`` must already be in index position order
        (surviving entries spliced with the sorted delta) with offsets
        recomputed against ``primary``, and ``csr`` built over the matching
        group IDs.  Used by incremental maintenance merges.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.view = view
        self.direction = direction
        self.config = config
        self.primary = primary
        self.name = name or f"{view.name}-{direction.value}"
        self.csr = csr
        self.offset_lists = OffsetLists(offsets, bound_ids)
        self.shares_partition_levels = bool(
            view.is_global and config.same_partitioning_as(primary.config)
        )
        self.creation_seconds = 0.0
        return self

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _select_edges(self) -> np.ndarray:
        """Edge IDs that belong to the 1-hop view."""
        graph = self.graph
        all_edges = np.arange(graph.num_edges, dtype=EDGE_ID_DTYPE)
        mask = self.view.membership_mask(
            graph, graph.edge_labels, all_edges, graph.edge_src, graph.edge_dst
        )
        return all_edges[mask]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def key_codes(self, key_values: Sequence) -> list:
        codes = []
        for key, value in zip(self.config.partition_keys, key_values):
            codes.append(key.code_for_value(self.graph, value))
        return codes

    def list_range(self, vertex_id: int, key_values: Sequence = ()) -> Tuple[int, int]:
        return self.csr.group_range(vertex_id, self.key_codes(key_values))

    def list(
        self, vertex_id: int, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ids, nbr_ids)`` of one list, resolved via the primary.

        Reading goes through one level of indirection (the offsets), which is
        the access cost the paper trades for the smaller footprint; the
        indirection targets one primary ID list, which is small for real
        graphs and therefore cache-friendly.
        """
        start, end = self.list_range(vertex_id, key_values)
        primary_start = self.primary.vertex_list_start(vertex_id)
        return self.offset_lists.resolve(
            start,
            end,
            primary_start,
            self.primary.id_lists.edge_ids,
            self.primary.id_lists.nbr_ids,
        )

    def list_many(
        self, vertex_ids: np.ndarray, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`list`: resolve many lists through the primary at once.

        Returns ``(edge_ids, nbr_ids, counts)``, the concatenation of the
        per-vertex lists plus their lengths.  The offset indirection is
        applied to the whole batch with one gather and one vectorized add.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        positions, counts = self.csr.gather(vertex_ids, self.key_codes(key_values))
        primary_starts = self.primary.csr.bound_starts(vertex_ids)
        edge_ids, nbr_ids = self.offset_lists.resolve_many(
            positions,
            primary_starts,
            counts,
            self.primary.id_lists.edge_ids,
            self.primary.id_lists.nbr_ids,
        )
        return edge_ids, nbr_ids, counts

    def segments_sorted_by(self, key: SortKey, key_values: Sequence = ()) -> bool:
        """True when every list returned under this key-value prefix is
        internally sorted on ``key`` (batched index contract; lets the
        segment intersection kernel skip re-sorting ``list_many`` output).
        """
        return self.config.granular_segments_sorted_by(key, key_values)

    def degree(self, vertex_id: int, key_values: Sequence = ()) -> int:
        start, end = self.list_range(vertex_id, key_values)
        return end - start

    @property
    def num_indexed_edges(self) -> int:
        return len(self.offset_lists)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> MemoryBreakdown:
        level_bytes = 0 if self.shares_partition_levels else self.csr.nbytes_levels()
        return MemoryBreakdown(
            name=self.name,
            offset_list_bytes=self.offset_lists.nbytes(),
            partition_level_bytes=level_bytes,
        )

    def nbytes(self) -> int:
        return self.memory_breakdown().total

    def describe(self) -> str:
        sharing = "shared levels" if self.shares_partition_levels else "own levels"
        return (
            f"VertexPartitionedIndex({self.name}, {self.direction.value}, "
            f"{self.config.describe()}, {sharing}, "
            f"{self.num_indexed_edges:,} edges)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
