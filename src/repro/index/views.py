"""Logical view definitions for secondary A+ indexes.

Secondary A+ indexes materialize one of two restricted classes of global
views (Section III-B):

* **1-hop views** (:class:`OneHopView`): ``MATCH vs-[eadj]->vd WHERE ...``
  with arbitrary selection predicates over the edge and/or its endpoint
  vertices.  The output is a subset of the edges; no projections, group-bys or
  aggregations are allowed.  Stored in secondary *vertex-partitioned* indexes.
* **2-hop views** (:class:`TwoHopView`): 2-paths whose predicate must relate
  *both* edges (otherwise the view is redundant with a 1-hop view — the
  ``Redundant`` example of Section III-B2).  Stored in secondary
  *edge-partitioned* indexes, bound by one of the two edge IDs; the position
  of the bound edge determines one of the four adjacency types.

View predicates use the reserved variable names of the paper's DDL:
``vs``/``vd`` (source/destination of the adjacent edge), ``eadj`` (the
adjacent edge), ``eb`` (the bound edge of a 2-hop view), and ``vnbr`` (the
neighbour vertex, i.e. the endpoint not shared with ``eb``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

import numpy as np

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction, EdgeAdjacencyType
from ..predicates import ColumnProvider, Predicate

#: Variables a 1-hop view predicate may reference.
ONE_HOP_VARIABLES: FrozenSet[str] = frozenset({"vs", "vd", "eadj"})
#: Variables a 2-hop view predicate may reference.
TWO_HOP_VARIABLES: FrozenSet[str] = frozenset({"vs", "vd", "eb", "eadj", "vnbr"})


@dataclass(frozen=True)
class OneHopView:
    """A 1-hop view: a predicate-filtered subset of the edge table.

    Attributes:
        name: view name (used as the index name prefix).
        predicate: selection predicate over ``vs``, ``vd`` and ``eadj``; the
            trivial predicate gives the global view ``E`` (all edges).
        edge_label: optional edge-label restriction, kept separate from the
            predicate because label equality is what existing systems already
            partition by.
    """

    name: str
    predicate: Predicate = field(default_factory=Predicate.true)
    edge_label: Optional[str] = None

    def __post_init__(self) -> None:
        extra = self.predicate.variables() - ONE_HOP_VARIABLES
        if extra:
            raise IndexConfigError(
                f"1-hop view {self.name!r} references unknown variables {sorted(extra)}; "
                f"allowed: {sorted(ONE_HOP_VARIABLES)}"
            )

    @property
    def is_global(self) -> bool:
        """True when the view contains every edge (no predicate, no label)."""
        return self.predicate.is_true and self.edge_label is None

    def membership_mask(
        self,
        graph: PropertyGraph,
        label_codes: np.ndarray,
        eadj_ids: np.ndarray,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        overrides: Optional[Mapping[str, ColumnProvider]] = None,
    ) -> np.ndarray:
        """Boolean mask of which candidate edges belong to this view.

        The single definition of 1-hop membership shared by index
        construction (all edges of the graph) and maintenance (pending
        edges, possibly not yet materialized — ``overrides`` then serves the
        buffered ``eadj`` columns; see ``Predicate.evaluate_bulk``).

        Args:
            graph: the property graph the non-overridden variables read from.
            label_codes: edge-label code of each candidate edge.
            eadj_ids: candidate edge IDs (dummy row indices when ``eadj`` is
                fully overridden).
            src_ids / dst_ids: endpoint vertex IDs of each candidate edge.
        """
        mask = np.ones(len(eadj_ids), dtype=bool)
        if self.edge_label is not None:
            code = graph.schema.edge_label_code(self.edge_label)
            mask &= np.asarray(label_codes) == code
        if not self.predicate.is_true:
            arrays = {
                "eadj": ("edge", np.asarray(eadj_ids)),
                "vs": ("vertex", np.asarray(src_ids)),
                "vd": ("vertex", np.asarray(dst_ids)),
            }
            mask &= self.predicate.evaluate_bulk(graph, {}, arrays, overrides=overrides)
        return mask

    def describe(self) -> str:
        label = f":{self.edge_label}" if self.edge_label else ""
        return (
            f"1-HOP VIEW {self.name}: MATCH vs-[eadj{label}]->vd "
            f"WHERE {self.predicate.describe()}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class TwoHopView:
    """A 2-hop view: predicate-filtered 2-paths, bound by one edge.

    Attributes:
        name: view name.
        adjacency: which of the four 2-path shapes is indexed
            (:class:`EdgeAdjacencyType`), determined in the DDL by where the
            ``eb`` variable appears.
        predicate: predicate over ``eb``, ``eadj``, ``vnbr`` (and optionally
            ``vs``/``vd`` of the bound edge).  It must reference properties of
            *both* edges.
    """

    name: str
    adjacency: EdgeAdjacencyType
    predicate: Predicate

    def __post_init__(self) -> None:
        variables = self.predicate.variables()
        extra = variables - TWO_HOP_VARIABLES
        if extra:
            raise IndexConfigError(
                f"2-hop view {self.name!r} references unknown variables {sorted(extra)}; "
                f"allowed: {sorted(TWO_HOP_VARIABLES)}"
            )
        references_both = any(
            comparison.variables() >= {"eb", "eadj"}
            for comparison in self.predicate.conjuncts()
        )
        if not references_both:
            raise IndexConfigError(
                f"2-hop view {self.name!r} must have a predicate relating eb and eadj; "
                "a single-edge predicate makes the index redundant with a "
                "vertex-partitioned index (Section III-B2)"
            )

    @property
    def adjacency_direction(self) -> Direction:
        """Direction of the adjacent edges relative to the shared vertex."""
        return self.adjacency.adjacency_direction

    def describe(self) -> str:
        return (
            f"2-HOP VIEW {self.name} [{self.adjacency.value}]: "
            f"WHERE {self.predicate.describe()}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
