"""Primary A+ indexes.

The primary A+ indexes are the default, required indexes of the system: one
forward and one backward index containing *every* edge of the graph, stored in
a nested CSR partitioned first by source (forward) or destination (backward)
vertex ID, then by the user-tunable nested partitioning criteria, with the
most granular ID lists sorted by the user-tunable sort keys (Section III-A).

Unlike existing GDBMSs, the partitioning and sorting criteria can be
*reconfigured* at runtime (``RECONFIGURE PRIMARY INDEXES ...``), which rebuilds
the two nested CSRs without touching the underlying graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexLookupError
from ..graph.graph import PropertyGraph
from ..graph.types import Direction, EDGE_ID_DTYPE
from ..storage.csr import NestedCSR
from ..storage.id_lists import IdLists
from ..storage.memory import MemoryBreakdown
from ..storage.sort_keys import SortKey, sort_values_matrix
from .config import IndexConfig


class AdjacencyIndex:
    """One direction (forward or backward) of the primary A+ index.

    Attributes:
        graph: the indexed property graph.
        direction: FORWARD (lists hold out-edges) or BACKWARD (in-edges).
        config: nested partitioning and sorting configuration.
        csr: the nested CSR skeleton.
        id_lists: the flat, sorted ID lists (edge IDs + neighbour IDs).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        direction: Direction,
        config: IndexConfig,
        name: Optional[str] = None,
    ) -> None:
        config.validate(graph)
        self.graph = graph
        self.direction = direction
        self.config = config
        self.name = name or f"primary-{direction.value}"

        if direction is Direction.FORWARD:
            bound_ids = graph.edge_src
            nbr_ids = graph.edge_dst
        else:
            bound_ids = graph.edge_dst
            nbr_ids = graph.edge_src
        edge_ids = np.arange(graph.num_edges, dtype=EDGE_ID_DTYPE)

        level_codes = [
            key.effective_codes(graph, edge_ids, nbr_ids)
            for key in config.partition_keys
        ]
        level_domains = [
            key.effective_domain_size(graph) for key in config.partition_keys
        ]
        sort_values = sort_values_matrix(config.sort_keys, graph, edge_ids, nbr_ids)

        self.csr = NestedCSR(
            num_bound=graph.num_vertices,
            bound_ids=bound_ids,
            level_codes=level_codes,
            level_domains=level_domains,
            sort_values=sort_values,
        )
        order = self.csr.order
        self.id_lists = IdLists(edge_ids[order], np.asarray(nbr_ids)[order])

        # Position of every edge inside this index (used by offset lists).
        self._position_of_edge = np.empty(graph.num_edges, dtype=np.int64)
        self._position_of_edge[self.id_lists.edge_ids] = np.arange(
            graph.num_edges, dtype=np.int64
        )

    @classmethod
    def from_sorted(
        cls,
        graph: PropertyGraph,
        direction: Direction,
        config: IndexConfig,
        csr: NestedCSR,
        edge_ids: np.ndarray,
        nbr_ids: np.ndarray,
        name: Optional[str] = None,
    ) -> "AdjacencyIndex":
        """Build an index from pre-merged state, skipping the global sort.

        The incremental maintenance path computes the merged entry order and
        offsets outside the constructor (surviving entries spliced with the
        sorted delta); ``edge_ids``/``nbr_ids`` must already be in index
        position order and ``csr`` built over the matching group IDs.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.direction = direction
        self.config = config
        self.name = name or f"primary-{direction.value}"
        self.csr = csr
        self.id_lists = IdLists(edge_ids, nbr_ids)
        self._position_of_edge = np.empty(graph.num_edges, dtype=np.int64)
        self._position_of_edge[self.id_lists.edge_ids] = np.arange(
            graph.num_edges, dtype=np.int64
        )
        return self

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def key_codes(self, key_values: Sequence) -> List[int]:
        """Map query-level partition key values to effective codes.

        ``key_values`` is a prefix of values aligned with the configured
        partition keys; each value may be a label/category name, an integer
        code, or ``None`` (the null partition).
        """
        if len(key_values) > len(self.config.partition_keys):
            raise IndexLookupError(
                f"{len(key_values)} partition values supplied but index has "
                f"{len(self.config.partition_keys)} levels"
            )
        codes = []
        for key, value in zip(self.config.partition_keys, key_values):
            codes.append(key.code_for_value(self.graph, value))
        return codes

    def list_range(self, vertex_id: int, key_values: Sequence = ()) -> Tuple[int, int]:
        """Return the ``[start, end)`` position range of one adjacency list."""
        return self.csr.group_range(vertex_id, self.key_codes(key_values))

    def list(self, vertex_id: int, key_values: Sequence = ()) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ids, nbr_ids)`` of one adjacency (sub-)list."""
        start, end = self.list_range(vertex_id, key_values)
        return self.id_lists.slice(start, end)

    def list_many(
        self, vertex_ids: np.ndarray, key_values: Sequence = ()
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`list`: fetch many adjacency lists in one gather.

        Returns ``(edge_ids, nbr_ids, counts)`` where the ID arrays are the
        concatenation of the per-vertex lists (in ``vertex_ids`` order, each
        list in index sort order) and ``counts`` holds each list's length.
        Equivalent to looping :meth:`list`, without the per-list interpreter
        round trip.
        """
        positions, counts = self.csr.gather(vertex_ids, self.key_codes(key_values))
        return (
            self.id_lists.edge_ids[positions],
            self.id_lists.nbr_ids[positions],
            counts,
        )

    def segments_sorted_by(self, key: "SortKey", key_values: Sequence = ()) -> bool:
        """True when every list returned under this key-value prefix is
        internally sorted on ``key`` (batched index contract; lets the
        segment intersection kernel skip re-sorting ``list_many`` output).
        """
        return self.config.granular_segments_sorted_by(key, key_values)

    def vertex_list_start(self, vertex_id: int) -> int:
        """Start position of the vertex's full (level-0) ID list."""
        return self.csr.bound_range(vertex_id)[0]

    def degree(self, vertex_id: int, key_values: Sequence = ()) -> int:
        start, end = self.list_range(vertex_id, key_values)
        return end - start

    def vertex_degrees(self, start: int, stop: int) -> np.ndarray:
        """Full adjacency-list lengths of vertices ``[start, stop)``.

        One vectorized diff of the CSR bound offsets — the work estimate the
        degree-weighted morsel splitter prefix-sums to cut the scan domain
        into equal-adjacency-work ranges
        (:func:`repro.query.morsels.degree_weighted_ranges`).
        """
        vertex_ids = np.arange(start, stop, dtype=np.int64)
        return (
            self.csr.bound_ends(vertex_ids) - self.csr.bound_starts(vertex_ids)
        ).astype(np.int64, copy=False)

    def positions_of_edges(self, edge_ids: np.ndarray) -> np.ndarray:
        """Positions of the given edges inside this index's ID lists."""
        return self._position_of_edge[np.asarray(edge_ids, dtype=np.int64)]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> MemoryBreakdown:
        return MemoryBreakdown(
            name=self.name,
            id_list_bytes=self.id_lists.nbytes(),
            partition_level_bytes=self.csr.nbytes_levels(),
        )

    def nbytes(self) -> int:
        return self.memory_breakdown().total

    def describe(self) -> str:
        return f"AdjacencyIndex({self.name}, {self.direction.value}, {self.config.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass
class ReconfigurationResult:
    """Outcome of a primary index reconfiguration."""

    old_config: IndexConfig
    new_config: IndexConfig
    seconds: float


class PrimaryIndex:
    """The pair of forward and backward primary A+ indexes.

    By default both directions use :meth:`IndexConfig.default` (partition by
    edge label, sort by neighbour ID), which is GraphflowDB's configuration
    ``D``.  :meth:`reconfigure` rebuilds both directions under a new
    configuration and reports the rebuild time (the ``IR`` column of
    Table II).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        config: Optional[IndexConfig] = None,
        forward_config: Optional[IndexConfig] = None,
        backward_config: Optional[IndexConfig] = None,
    ) -> None:
        self.graph = graph
        base = config or IndexConfig.default()
        self.forward = AdjacencyIndex(
            graph, Direction.FORWARD, forward_config or base, name="primary-fw"
        )
        self.backward = AdjacencyIndex(
            graph, Direction.BACKWARD, backward_config or base, name="primary-bw"
        )

    @classmethod
    def from_directions(
        cls,
        graph: PropertyGraph,
        forward: AdjacencyIndex,
        backward: AdjacencyIndex,
    ) -> "PrimaryIndex":
        """Wrap two already-built directional indexes (incremental merges)."""
        self = cls.__new__(cls)
        self.graph = graph
        self.forward = forward
        self.backward = backward
        return self

    def for_direction(self, direction: Direction) -> AdjacencyIndex:
        return self.forward if direction is Direction.FORWARD else self.backward

    @property
    def config(self) -> IndexConfig:
        """Configuration of the forward index (both share it by default)."""
        return self.forward.config

    def reconfigure(
        self,
        config: IndexConfig,
        forward_config: Optional[IndexConfig] = None,
        backward_config: Optional[IndexConfig] = None,
    ) -> ReconfigurationResult:
        """Rebuild both primary indexes under a new configuration."""
        old_config = self.config
        started = time.perf_counter()
        self.forward = AdjacencyIndex(
            self.graph,
            Direction.FORWARD,
            forward_config or config,
            name="primary-fw",
        )
        self.backward = AdjacencyIndex(
            self.graph,
            Direction.BACKWARD,
            backward_config or config,
            name="primary-bw",
        )
        elapsed = time.perf_counter() - started
        return ReconfigurationResult(old_config, config, elapsed)

    def memory_breakdowns(self) -> List[MemoryBreakdown]:
        return [self.forward.memory_breakdown(), self.backward.memory_breakdown()]

    def nbytes(self) -> int:
        return sum(b.total for b in self.memory_breakdowns())

    def describe(self) -> str:
        return (
            f"PrimaryIndex(fw: {self.forward.config.describe()}; "
            f"bw: {self.backward.config.describe()})"
        )
