"""A+ index subsystem: primary, vertex-partitioned, and edge-partitioned indexes."""

from .bitmap import BitmapSecondaryIndex
from .config import IndexConfig
from .ddl import (
    CreateOneHopCommand,
    CreateTwoHopCommand,
    DDLCommand,
    ReconfigurePrimaryCommand,
    parse_ddl,
    parse_where,
)
from .edge_partitioned import EdgePartitionedIndex
from .index_store import AccessPath, IndexStore
from .maintenance import ColumnarEdgeDelta, IndexMaintainer, MaintenanceStats, PendingEdge
from .primary import AdjacencyIndex, PrimaryIndex, ReconfigurationResult
from .vertex_partitioned import VertexPartitionedIndex
from .views import OneHopView, TwoHopView

__all__ = [
    "AccessPath",
    "AdjacencyIndex",
    "BitmapSecondaryIndex",
    "CreateOneHopCommand",
    "CreateTwoHopCommand",
    "DDLCommand",
    "EdgePartitionedIndex",
    "IndexConfig",
    "ColumnarEdgeDelta",
    "IndexMaintainer",
    "IndexStore",
    "MaintenanceStats",
    "OneHopView",
    "PendingEdge",
    "PrimaryIndex",
    "ReconfigurationResult",
    "ReconfigurePrimaryCommand",
    "TwoHopView",
    "VertexPartitionedIndex",
    "parse_ddl",
    "parse_where",
]
