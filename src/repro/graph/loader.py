"""Loading property graphs from on-disk files.

Two text formats are supported:

* **edge list** (``load_edge_list``): one edge per line, ``src dst [label]``,
  whitespace- or comma-separated, with optional ``#`` comment lines.  This is
  the format of the SNAP datasets the paper uses (Orkut, LiveJournal,
  Wiki-topcats, BerkStan); labels can be attached randomly afterwards with
  :func:`assign_random_labels` to mimic the ``G_{i,j}`` methodology.
* **CSV pair** (``load_csv``): a vertex CSV (``id,label,prop1,...``) and an
  edge CSV (``src,dst,label,prop1,...``) with typed columns.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import GraphBuildError
from .builder import GraphBuilder
from .graph import PropertyGraph
from .property_store import PropertyStore
from .schema import GraphSchema
from .types import PropertyType

PathLike = Union[str, Path]


def load_edge_list(
    path: PathLike,
    vertex_label: str = "V",
    edge_label: str = "E",
    comment: str = "#",
) -> PropertyGraph:
    """Load a graph from a plain edge-list file.

    Vertex IDs in the file may be arbitrary non-negative integers; they are
    remapped to dense IDs in order of first appearance.

    Args:
        path: path to the edge-list file.
        vertex_label: label assigned to every vertex.
        edge_label: label assigned to edges that do not carry one in the file.
        comment: lines starting with this prefix are skipped.
    """
    src_raw: List[int] = []
    dst_raw: List[int] = []
    labels_raw: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 2:
                raise GraphBuildError(f"malformed edge-list line: {line!r}")
            src_raw.append(int(parts[0]))
            dst_raw.append(int(parts[1]))
            labels_raw.append(parts[2] if len(parts) > 2 else edge_label)

    remap: Dict[int, int] = {}
    for raw in src_raw + dst_raw:
        if raw not in remap:
            remap[raw] = len(remap)

    schema = GraphSchema()
    schema.add_vertex_label(vertex_label)
    label_codes = [schema.add_edge_label(name) for name in labels_raw]

    num_vertices = len(remap)
    num_edges = len(src_raw)
    vertex_store = PropertyStore(schema, "vertex")
    vertex_store.set_count(num_vertices)
    edge_store = PropertyStore(schema, "edge")
    edge_store.set_count(num_edges)

    return PropertyGraph(
        schema=schema,
        vertex_labels=np.zeros(num_vertices, dtype=np.int32),
        edge_src=np.asarray([remap[s] for s in src_raw], dtype=np.int32),
        edge_dst=np.asarray([remap[d] for d in dst_raw], dtype=np.int32),
        edge_labels=np.asarray(label_codes, dtype=np.int32),
        vertex_props=vertex_store,
        edge_props=edge_store,
    )


def assign_random_labels(
    graph: PropertyGraph,
    num_vertex_labels: int,
    num_edge_labels: int,
    seed: int = 0,
) -> PropertyGraph:
    """Return a copy of ``graph`` with uniformly random labels assigned.

    This reproduces the paper's ``G_{i,j}`` construction: a dataset ``G``
    denoted ``G_{i,j}`` has ``i`` randomly generated vertex labels and ``j``
    randomly generated edge labels.
    """
    rng = np.random.default_rng(seed)
    schema = GraphSchema()
    for i in range(num_vertex_labels):
        schema.add_vertex_label(f"VL{i}")
    for j in range(num_edge_labels):
        schema.add_edge_label(f"EL{j}")

    vertex_store = PropertyStore(schema, "vertex")
    vertex_store.set_count(graph.num_vertices)
    edge_store = PropertyStore(schema, "edge")
    edge_store.set_count(graph.num_edges)

    return PropertyGraph(
        schema=schema,
        vertex_labels=rng.integers(
            0, num_vertex_labels, size=graph.num_vertices, dtype=np.int32
        ),
        edge_src=graph.edge_src.copy(),
        edge_dst=graph.edge_dst.copy(),
        edge_labels=rng.integers(
            0, num_edge_labels, size=graph.num_edges, dtype=np.int32
        ),
        vertex_props=vertex_store,
        edge_props=edge_store,
    )


def load_csv(
    vertex_path: PathLike,
    edge_path: PathLike,
    vertex_property_types: Optional[Dict[str, PropertyType]] = None,
    edge_property_types: Optional[Dict[str, PropertyType]] = None,
) -> PropertyGraph:
    """Load a graph from a vertex CSV and an edge CSV.

    The vertex CSV must have columns ``id`` and ``label``; the edge CSV must
    have ``src``, ``dst`` and ``label``.  Any additional columns are loaded as
    properties; their types may be forced with the ``*_property_types``
    mappings, otherwise they are inferred per value (int, then float, then
    categorical string).
    """
    vertex_property_types = vertex_property_types or {}
    edge_property_types = edge_property_types or {}
    builder = GraphBuilder()
    for name, ptype in vertex_property_types.items():
        builder.declare_vertex_property(name, ptype)
    for name, ptype in edge_property_types.items():
        builder.declare_edge_property(name, ptype)

    def _coerce(value: str):
        if value == "":
            return None
        try:
            return int(value)
        except ValueError:
            pass
        try:
            return float(value)
        except ValueError:
            return value

    with open(vertex_path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "id" not in reader.fieldnames:
            raise GraphBuildError("vertex CSV must have an 'id' column")
        for row in reader:
            external_id = row.pop("id")
            label = row.pop("label", "V")
            props = {k: _coerce(v) for k, v in row.items()}
            builder.add_vertex(label, key=external_id, **props)

    # Edges are collected column-wise and handed to the builder's bulk
    # ``add_edges`` path in one batch, so large edge files do not pay a
    # Python call plus a property dict per edge.
    with open(edge_path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"src", "dst"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise GraphBuildError("edge CSV must have 'src' and 'dst' columns")
        src_ids: List[int] = []
        dst_ids: List[int] = []
        labels: List[str] = []
        prop_names = [
            name for name in reader.fieldnames if name not in ("src", "dst", "label")
        ]
        prop_columns: Dict[str, List] = {name: [] for name in prop_names}
        for row in reader:
            src_ids.append(builder.vertex_id(row["src"]))
            dst_ids.append(builder.vertex_id(row["dst"]))
            labels.append(row.get("label", "E"))
            for name in prop_names:
                prop_columns[name].append(_coerce(row.get(name, "")))
        if src_ids:
            builder.add_edges(src_ids, dst_ids, labels, properties=prop_columns)

    return builder.build()
