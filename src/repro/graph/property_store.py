"""Columnar property storage for vertices and edges.

Properties are stored as one numpy column per property name.  Integer,
float and categorical columns use numpy arrays (categoricals hold dictionary
codes); string columns use a Python list because they never appear in the
performance-critical paths of the reproduction (they are dictionary-coded to
categorical columns whenever they are used for partitioning or sorting).

Missing values are represented by ``NULL_INT`` for integer columns, ``nan``
for float columns, ``NULL_CATEGORY`` for categorical columns, and ``None`` for
string columns, following the paper's convention that nulls form their own
partition and sort last.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import SchemaError
from .schema import GraphSchema, PropertyDef
from .types import NULL_CATEGORY, NULL_INT, PropertyType, PropertyValue


def raw_dtype_of(prop: PropertyDef):
    """Canonical numpy dtype of a property's raw column (None for strings)."""
    if prop.ptype is PropertyType.INT:
        return np.int64
    if prop.ptype is PropertyType.FLOAT:
        return np.float64
    if prop.ptype is PropertyType.CATEGORICAL:
        return np.int32
    return None


def raw_null_of(prop: PropertyDef):
    """Raw null marker of a property column (None for strings)."""
    if prop.ptype is PropertyType.INT:
        return NULL_INT
    if prop.ptype is PropertyType.FLOAT:
        return np.nan
    if prop.ptype is PropertyType.CATEGORICAL:
        return NULL_CATEGORY
    return None


def encode_raw_column(prop: PropertyDef, values: Sequence, count: int):
    """Code a sequence of user-level values into one raw column chunk.

    Numeric numpy inputs pass through with a dtype cast only; anything else
    (lists with ``None`` holes, categorical names) is coded value-by-value
    with a per-call category cache.  ``values`` of ``None`` yields an
    all-null column of length ``count``.
    """
    dtype = raw_dtype_of(prop)
    if dtype is None:  # STRING columns stay Python lists.
        if values is None:
            return [None] * count
        out = list(values)
        if len(out) != count:
            raise SchemaError(
                f"column chunk has {len(out)} values, expected {count}"
            )
        return out
    null = raw_null_of(prop)
    if values is None:
        return np.full(count, null, dtype=dtype)
    if isinstance(values, np.ndarray) and values.dtype.kind in "iuf":
        column = values.astype(dtype, copy=False)
        if len(column) != count:
            raise SchemaError(
                f"column chunk has {len(column)} values, expected {count}"
            )
        return column
    column = np.full(count, null, dtype=dtype)
    if len(values) != count:
        raise SchemaError(f"column chunk has {len(values)} values, expected {count}")
    if prop.ptype is PropertyType.CATEGORICAL:
        codes = {}
        for position, value in enumerate(values):
            if value is None:
                continue
            if isinstance(value, str):
                code = codes.get(value)
                if code is None:
                    code = codes[value] = prop.code_of(value)
                column[position] = code
            else:
                column[position] = int(value)
        return column
    caster = float if prop.ptype is PropertyType.FLOAT else int
    for position, value in enumerate(values):
        if value is not None:
            column[position] = caster(value)
    return column


class PropertyStore:
    """Columnar store for the properties of one element kind (vertex or edge).

    Args:
        schema: the graph schema.
        kind: ``"vertex"`` or ``"edge"``; controls which half of the schema is
            consulted for property definitions.
    """

    def __init__(self, schema: GraphSchema, kind: str) -> None:
        if kind not in ("vertex", "edge"):
            raise SchemaError(f"kind must be 'vertex' or 'edge', got {kind!r}")
        self._schema = schema
        self._kind = kind
        self._columns: Dict[str, object] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # schema access
    # ------------------------------------------------------------------
    def _prop_def(self, name: str) -> PropertyDef:
        if self._kind == "vertex":
            return self._schema.vertex_property(name)
        return self._schema.edge_property(name)

    @property
    def count(self) -> int:
        """Number of elements whose properties are stored."""
        return self._count

    @property
    def property_names(self) -> List[str]:
        return list(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def set_count(self, count: int) -> None:
        """Declare the number of elements; resizes existing columns."""
        if count < self._count:
            raise SchemaError("cannot shrink a property store")
        for name in list(self._columns):
            self._columns[name] = self._grow_column(name, self._columns[name], count)
        self._count = count

    def _null_value(self, prop: PropertyDef):
        if prop.ptype is PropertyType.INT:
            return NULL_INT
        if prop.ptype is PropertyType.FLOAT:
            return np.nan
        if prop.ptype is PropertyType.CATEGORICAL:
            return NULL_CATEGORY
        return None

    def _new_column(self, prop: PropertyDef, count: int):
        if prop.ptype is PropertyType.INT:
            return np.full(count, NULL_INT, dtype=np.int64)
        if prop.ptype is PropertyType.FLOAT:
            return np.full(count, np.nan, dtype=np.float64)
        if prop.ptype is PropertyType.CATEGORICAL:
            return np.full(count, NULL_CATEGORY, dtype=np.int32)
        return [None] * count

    def _grow_column(self, name: str, column, count: int):
        prop = self._prop_def(name)
        if isinstance(column, list):
            column.extend([None] * (count - len(column)))
            return column
        if len(column) == count:
            return column
        grown = self._new_column(prop, count)
        grown[: len(column)] = column
        return grown

    def _ensure_column(self, name: str):
        prop = self._prop_def(name)
        if name not in self._columns:
            self._columns[name] = self._new_column(prop, self._count)
        return self._columns[name]

    def set_value(self, element_id: int, name: str, value: PropertyValue) -> None:
        """Set one property value for one element."""
        if element_id < 0 or element_id >= self._count:
            raise SchemaError(
                f"{self._kind} id {element_id} out of range [0, {self._count})"
            )
        prop = self._prop_def(name)
        column = self._ensure_column(name)
        if value is None:
            column[element_id] = self._null_value(prop)
            return
        if prop.ptype is PropertyType.CATEGORICAL:
            if isinstance(value, str):
                value = prop.code_of(value)
            column[element_id] = int(value)
        elif prop.ptype is PropertyType.INT:
            column[element_id] = int(value)
        elif prop.ptype is PropertyType.FLOAT:
            column[element_id] = float(value)
        else:
            column[element_id] = value

    def set_column(self, name: str, values: Sequence) -> None:
        """Set an entire property column at once.

        Categorical columns may be given either as category names (strings)
        or as pre-coded integers.
        """
        prop = self._prop_def(name)
        if len(values) != self._count:
            raise SchemaError(
                f"column {name!r} has {len(values)} values, expected {self._count}"
            )
        if prop.ptype is PropertyType.STRING:
            self._columns[name] = list(values)
            return
        if prop.ptype is PropertyType.CATEGORICAL:
            coded = np.empty(self._count, dtype=np.int32)
            values = list(values)
            if values and isinstance(values[0], str):
                for i, value in enumerate(values):
                    coded[i] = NULL_CATEGORY if value is None else prop.code_of(value)
            else:
                coded[:] = np.asarray(
                    [NULL_CATEGORY if v is None else int(v) for v in values],
                    dtype=np.int32,
                )
            self._columns[name] = coded
            return
        if prop.ptype is PropertyType.INT:
            column = np.asarray(
                [NULL_INT if v is None else int(v) for v in values], dtype=np.int64
            )
        else:
            column = np.asarray(
                [np.nan if v is None else float(v) for v in values], dtype=np.float64
            )
        self._columns[name] = column

    def set_raw_column(self, name: str, column) -> None:
        """Install an already-coded column without per-value conversion.

        The columnar counterpart of :meth:`set_column`: ``column`` must hold
        raw values (dictionary codes for categoricals, null markers for
        missing values) in the property's canonical dtype, as produced by
        :meth:`column` or :func:`encode_raw_column`.  Used by the bulk
        maintenance merge to append delta columns with one concatenation
        instead of decoding and re-coding every value.
        """
        prop = self._prop_def(name)
        dtype = raw_dtype_of(prop)
        if dtype is None:
            if not isinstance(column, list):
                column = list(column)
            if len(column) != self._count:
                raise SchemaError(
                    f"column {name!r} has {len(column)} values, expected {self._count}"
                )
            self._columns[name] = column
            return
        column = np.asarray(column)
        if column.dtype.kind not in "iuf":
            raise SchemaError(
                f"set_raw_column expects a numeric coded column for {name!r}"
            )
        if len(column) != self._count:
            raise SchemaError(
                f"column {name!r} has {len(column)} values, expected {self._count}"
            )
        self._columns[name] = column.astype(dtype, copy=False)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the raw column for ``name`` (codes for categoricals).

        The column is created lazily (filled with nulls) if it was declared in
        the schema but never populated.
        """
        self._prop_def(name)
        return self._ensure_column(name)

    def value(self, element_id: int, name: str) -> PropertyValue:
        """Return the decoded property value for one element."""
        prop = self._prop_def(name)
        column = self._ensure_column(name)
        raw = column[element_id]
        if prop.ptype is PropertyType.CATEGORICAL:
            code = int(raw)
            return None if code == NULL_CATEGORY else prop.category_of(code)
        if prop.ptype is PropertyType.INT:
            raw = int(raw)
            return None if raw == NULL_INT else raw
        if prop.ptype is PropertyType.FLOAT:
            raw = float(raw)
            return None if np.isnan(raw) else raw
        return raw

    def raw_value(self, element_id: int, name: str):
        """Return the raw (coded) value; faster than :meth:`value`."""
        return self._ensure_column(name)[element_id]

    def values_for(self, element_ids: np.ndarray, name: str) -> np.ndarray:
        """Vectorized raw lookup of a property for many elements."""
        column = self.column(name)
        if isinstance(column, list):
            return np.asarray([column[int(i)] for i in element_ids], dtype=object)
        return column[element_ids]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate memory footprint of the stored columns in bytes."""
        total = 0
        for column in self._columns.values():
            if isinstance(column, np.ndarray):
                total += column.nbytes
            else:
                total += sum(len(v) if isinstance(v, str) else 8 for v in column)
        return total
