"""Incremental construction of property graphs.

:class:`GraphBuilder` collects vertices and edges with arbitrary property
dictionaries and produces a finalized :class:`PropertyGraph`.  It is the
convenient path for examples, tests, and small hand-written graphs such as the
paper's running example (Figure 1).

Edges can be added one at a time (:meth:`GraphBuilder.add_edge`) or in
columnar batches (:meth:`GraphBuilder.add_edges`): a batch keeps its
src/dst/label/property arrays as one chunk and :meth:`GraphBuilder.build`
assembles the final columns by concatenation, so loaders and generators can
build large graphs columnar-first instead of paying a Python call and a dict
per edge.  Large synthetic datasets are built directly from arrays by
:mod:`repro.graph.generators`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GraphBuildError
from .graph import PropertyGraph
from .property_store import PropertyStore, encode_raw_column
from .schema import GraphSchema
from .types import PropertyType, PropertyValue

#: One ordered run of edges: either tuple-at-a-time rows or a columnar chunk.
_RowSegment = Tuple[str, List[int], List[int], List[int], List[Dict[str, PropertyValue]]]
_ChunkSegment = Tuple[str, np.ndarray, np.ndarray, np.ndarray, Dict[str, Sequence]]


class GraphBuilder:
    """Builds a :class:`PropertyGraph` from vertices and (batched) edges.

    Property types are inferred on first use (int -> INT, float -> FLOAT,
    str -> CATEGORICAL by default) unless declared explicitly with
    :meth:`declare_vertex_property` / :meth:`declare_edge_property`.
    String-valued properties default to categorical because that is what A+
    index partitioning needs; declare them as ``PropertyType.STRING`` to opt
    out.

    Example:
        >>> builder = GraphBuilder()
        >>> v1 = builder.add_vertex("Account", acc="SV", city="SF")
        >>> v2 = builder.add_vertex("Account", acc="CQ", city="SF")
        >>> builder.add_edge(v1, v2, "Wire", amt=50, currency="USD")
        0
        >>> graph = builder.build()
    """

    def __init__(self, schema: Optional[GraphSchema] = None) -> None:
        self.schema = schema or GraphSchema()
        self._vertex_labels: List[int] = []
        self._vertex_keys: Dict[Hashable, int] = {}
        self._vertex_props: List[Dict[str, PropertyValue]] = []
        # Edges are kept as an ordered list of segments so scalar and bulk
        # additions can interleave while edge IDs stay dense and sequential.
        self._edge_segments: List[Union[_RowSegment, _ChunkSegment]] = []
        self._num_edges = 0
        self._declared_vprops: Dict[str, PropertyType] = {}
        self._declared_eprops: Dict[str, PropertyType] = {}
        self._vprop_values: Dict[str, set] = {}
        self._eprop_values: Dict[str, set] = {}
        self._built = False

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def declare_vertex_property(self, name: str, ptype: PropertyType) -> None:
        """Declare the type of a vertex property ahead of time."""
        self._declared_vprops[name] = ptype

    def declare_edge_property(self, name: str, ptype: PropertyType) -> None:
        """Declare the type of an edge property ahead of time."""
        self._declared_eprops[name] = ptype

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        label: str,
        key: Optional[Hashable] = None,
        **properties: PropertyValue,
    ) -> int:
        """Add a vertex and return its dense vertex ID.

        Args:
            label: vertex label name.
            key: optional external identifier; if given, it can later be used
                with :meth:`vertex_id` and duplicates raise an error.
            **properties: property name/value pairs.
        """
        self._check_not_built()
        if key is not None and key in self._vertex_keys:
            raise GraphBuildError(f"duplicate vertex key {key!r}")
        vertex_id = len(self._vertex_labels)
        self._vertex_labels.append(self.schema.add_vertex_label(label))
        self._vertex_props.append(dict(properties))
        if key is not None:
            self._vertex_keys[key] = vertex_id
        for name, value in properties.items():
            self._vprop_values.setdefault(name, set())
            if isinstance(value, str):
                self._vprop_values[name].add(value)
        return vertex_id

    def vertex_id(self, key: Hashable) -> int:
        """Return the dense vertex ID previously associated with ``key``."""
        try:
            return self._vertex_keys[key]
        except KeyError as exc:
            raise GraphBuildError(f"unknown vertex key {key!r}") from exc

    def _open_row_segment(self) -> _RowSegment:
        if self._edge_segments and self._edge_segments[-1][0] == "rows":
            return self._edge_segments[-1]
        segment: _RowSegment = ("rows", [], [], [], [])
        self._edge_segments.append(segment)
        return segment

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str,
        **properties: PropertyValue,
    ) -> int:
        """Add an edge from ``src`` to ``dst`` and return its dense edge ID."""
        self._check_not_built()
        num_vertices = len(self._vertex_labels)
        if not (0 <= src < num_vertices) or not (0 <= dst < num_vertices):
            raise GraphBuildError(
                f"edge endpoints ({src}, {dst}) out of range [0, {num_vertices})"
            )
        edge_id = self._num_edges
        _, src_list, dst_list, label_list, props_list = self._open_row_segment()
        src_list.append(src)
        dst_list.append(dst)
        label_list.append(self.schema.add_edge_label(label))
        props_list.append(dict(properties))
        self._num_edges += 1
        for name, value in properties.items():
            self._eprop_values.setdefault(name, set())
            if isinstance(value, str):
                self._eprop_values[name].add(value)
        return edge_id

    def add_edges(
        self,
        src,
        dst,
        labels,
        properties: Optional[Dict[str, Sequence]] = None,
    ) -> np.ndarray:
        """Add a batch of edges columnar-ly and return their dense edge IDs.

        The batch is stored as one chunk (no per-edge Python objects);
        :meth:`build` turns chunks into property columns by concatenation.

        Args:
            src / dst: endpoint vertex-ID arrays of equal length.
            labels: one edge-label name for the whole batch, or a sequence of
                label names aligned with ``src``.
            properties: mapping from property name to an aligned value
                sequence; ``None`` entries are nulls.
        """
        self._check_not_built()
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphBuildError("src and dst must be 1-D arrays of equal length")
        count = len(src)
        first_id = self._num_edges
        edge_ids = np.arange(first_id, first_id + count, dtype=np.int64)
        if count == 0:
            return edge_ids
        num_vertices = len(self._vertex_labels)
        if (
            int(src.min()) < 0
            or int(src.max()) >= num_vertices
            or int(dst.min()) < 0
            or int(dst.max()) >= num_vertices
        ):
            raise GraphBuildError(
                f"edge endpoints out of range [0, {num_vertices})"
            )
        if isinstance(labels, str):
            codes = np.full(count, self.schema.add_edge_label(labels), dtype=np.int32)
        else:
            label_list = list(labels)
            if len(label_list) != count:
                raise GraphBuildError(
                    f"labels has {len(label_list)} entries, expected {count}"
                )
            cache: Dict[str, int] = {}
            codes = np.empty(count, dtype=np.int32)
            for position, name in enumerate(label_list):
                code = cache.get(name)
                if code is None:
                    code = cache[name] = self.schema.add_edge_label(name)
                codes[position] = code
        chunk_props: Dict[str, Sequence] = {}
        for name, values in (properties or {}).items():
            if len(values) != count:
                raise GraphBuildError(
                    f"property {name!r} has {len(values)} values, expected {count}"
                )
            chunk_props[name] = values
            bucket = self._eprop_values.setdefault(name, set())
            arr = np.asarray(values)
            if arr.dtype.kind in "US":
                bucket.update(np.unique(arr).tolist())
            elif arr.dtype.kind == "O":
                bucket.update(v for v in values if isinstance(v, str))
        self._edge_segments.append(("chunk", src, dst, codes, chunk_props))
        self._num_edges += count
        return edge_ids

    def _check_not_built(self) -> None:
        if self._built:
            raise GraphBuildError("builder has already produced a graph")

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def _infer_type(
        self,
        name: str,
        declared: Dict[str, PropertyType],
        rows: List[Dict[str, PropertyValue]],
    ) -> PropertyType:
        if name in declared:
            return declared[name]
        for row in rows:
            value = row.get(name)
            if value is None:
                continue
            if isinstance(value, bool):
                return PropertyType.INT
            if isinstance(value, int):
                return PropertyType.INT
            if isinstance(value, float):
                return PropertyType.FLOAT
            if isinstance(value, str):
                return PropertyType.CATEGORICAL
        return PropertyType.INT

    def _infer_edge_type(self, name: str) -> PropertyType:
        if name in self._declared_eprops:
            return self._declared_eprops[name]
        for segment in self._edge_segments:
            if segment[0] == "rows":
                inferred = self._infer_type(name, {}, segment[4])
                if inferred is not PropertyType.INT or any(
                    row.get(name) is not None for row in segment[4]
                ):
                    return inferred
                continue
            values = segment[4].get(name)
            if values is None:
                continue
            arr = np.asarray(values)
            if arr.dtype.kind in "iu" or arr.dtype.kind == "b":
                return PropertyType.INT
            if arr.dtype.kind == "f":
                return PropertyType.FLOAT
            if arr.dtype.kind in "US":
                return PropertyType.CATEGORICAL
            for value in values:
                if value is None:
                    continue
                if isinstance(value, bool) or isinstance(value, int):
                    return PropertyType.INT
                if isinstance(value, float):
                    return PropertyType.FLOAT
                if isinstance(value, str):
                    return PropertyType.CATEGORICAL
        return PropertyType.INT

    def _register_props(
        self,
        kind: str,
        rows: List[Dict[str, PropertyValue]],
        declared: Dict[str, PropertyType],
        string_values: Dict[str, set],
    ) -> None:
        names = sorted({name for row in rows for name in row} | set(declared))
        for name in names:
            ptype = self._infer_type(name, declared, rows)
            categories = None
            if ptype is PropertyType.CATEGORICAL:
                categories = sorted(string_values.get(name, set()))
            if kind == "vertex":
                self.schema.add_vertex_property(name, ptype, categories)
            else:
                self.schema.add_edge_property(name, ptype, categories)

    def _register_edge_props(self) -> List[str]:
        names = set(self._declared_eprops)
        for segment in self._edge_segments:
            if segment[0] == "rows":
                names.update(name for row in segment[4] for name in row)
            else:
                names.update(segment[4])
        names = sorted(names)
        for name in names:
            ptype = self._infer_edge_type(name)
            categories = None
            if ptype is PropertyType.CATEGORICAL:
                categories = sorted(self._eprop_values.get(name, set()))
            self.schema.add_edge_property(name, ptype, categories)
        return names

    def build(self) -> PropertyGraph:
        """Finalize and return the :class:`PropertyGraph`."""
        self._check_not_built()
        self._built = True
        self._register_props(
            "vertex", self._vertex_props, self._declared_vprops, self._vprop_values
        )
        edge_prop_names = self._register_edge_props()

        vertex_store = PropertyStore(self.schema, "vertex")
        vertex_store.set_count(len(self._vertex_labels))
        for vertex_id, props in enumerate(self._vertex_props):
            for name, value in props.items():
                vertex_store.set_value(vertex_id, name, value)

        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        label_parts: List[np.ndarray] = []
        for segment in self._edge_segments:
            if segment[0] == "rows":
                src_parts.append(np.asarray(segment[1], dtype=np.int32))
                dst_parts.append(np.asarray(segment[2], dtype=np.int32))
                label_parts.append(np.asarray(segment[3], dtype=np.int32))
            else:
                src_parts.append(segment[1].astype(np.int32))
                dst_parts.append(segment[2].astype(np.int32))
                label_parts.append(segment[3])

        def _concat(parts: List[np.ndarray]) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=np.int32)
            return np.concatenate(parts)

        edge_store = PropertyStore(self.schema, "edge")
        edge_store.set_count(self._num_edges)
        for name in edge_prop_names:
            prop = self.schema.edge_property(name)
            if prop.ptype is PropertyType.STRING:
                column: List[object] = []
                for segment in self._edge_segments:
                    if segment[0] == "rows":
                        column.extend(row.get(name) for row in segment[4])
                    else:
                        values = segment[4].get(name)
                        size = len(segment[1])
                        column.extend(values if values is not None else [None] * size)
                edge_store.set_raw_column(name, column)
                continue
            chunks = []
            for segment in self._edge_segments:
                size = len(segment[1])
                if segment[0] == "rows":
                    values: Sequence = [row.get(name) for row in segment[4]]
                else:
                    values = segment[4].get(name)
                chunks.append(encode_raw_column(prop, values, size))
            if chunks:
                edge_store.set_raw_column(name, np.concatenate(chunks))

        return PropertyGraph(
            schema=self.schema,
            vertex_labels=np.asarray(self._vertex_labels, dtype=np.int32),
            edge_src=_concat(src_parts),
            edge_dst=_concat(dst_parts),
            edge_labels=_concat(label_parts),
            vertex_props=vertex_store,
            edge_props=edge_store,
        )
