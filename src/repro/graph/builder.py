"""Incremental construction of property graphs.

:class:`GraphBuilder` collects vertices and edges with arbitrary property
dictionaries and produces a finalized :class:`PropertyGraph`.  It is the
convenient path for examples, tests, and small hand-written graphs such as the
paper's running example (Figure 1).  Large synthetic datasets are built
directly from arrays by :mod:`repro.graph.generators`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from ..errors import GraphBuildError
from .graph import PropertyGraph
from .property_store import PropertyStore
from .schema import GraphSchema
from .types import PropertyType, PropertyValue


class GraphBuilder:
    """Builds a :class:`PropertyGraph` one vertex/edge at a time.

    Property types are inferred on first use (int -> INT, float -> FLOAT,
    str -> CATEGORICAL by default) unless declared explicitly with
    :meth:`declare_vertex_property` / :meth:`declare_edge_property`.
    String-valued properties default to categorical because that is what A+
    index partitioning needs; declare them as ``PropertyType.STRING`` to opt
    out.

    Example:
        >>> builder = GraphBuilder()
        >>> v1 = builder.add_vertex("Account", acc="SV", city="SF")
        >>> v2 = builder.add_vertex("Account", acc="CQ", city="SF")
        >>> builder.add_edge(v1, v2, "Wire", amt=50, currency="USD")
        0
        >>> graph = builder.build()
    """

    def __init__(self, schema: Optional[GraphSchema] = None) -> None:
        self.schema = schema or GraphSchema()
        self._vertex_labels: List[int] = []
        self._vertex_keys: Dict[Hashable, int] = {}
        self._vertex_props: List[Dict[str, PropertyValue]] = []
        self._edge_src: List[int] = []
        self._edge_dst: List[int] = []
        self._edge_labels: List[int] = []
        self._edge_props: List[Dict[str, PropertyValue]] = []
        self._declared_vprops: Dict[str, PropertyType] = {}
        self._declared_eprops: Dict[str, PropertyType] = {}
        self._vprop_values: Dict[str, set] = {}
        self._eprop_values: Dict[str, set] = {}
        self._built = False

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def declare_vertex_property(self, name: str, ptype: PropertyType) -> None:
        """Declare the type of a vertex property ahead of time."""
        self._declared_vprops[name] = ptype

    def declare_edge_property(self, name: str, ptype: PropertyType) -> None:
        """Declare the type of an edge property ahead of time."""
        self._declared_eprops[name] = ptype

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        label: str,
        key: Optional[Hashable] = None,
        **properties: PropertyValue,
    ) -> int:
        """Add a vertex and return its dense vertex ID.

        Args:
            label: vertex label name.
            key: optional external identifier; if given, it can later be used
                with :meth:`vertex_id` and duplicates raise an error.
            **properties: property name/value pairs.
        """
        self._check_not_built()
        if key is not None and key in self._vertex_keys:
            raise GraphBuildError(f"duplicate vertex key {key!r}")
        vertex_id = len(self._vertex_labels)
        self._vertex_labels.append(self.schema.add_vertex_label(label))
        self._vertex_props.append(dict(properties))
        if key is not None:
            self._vertex_keys[key] = vertex_id
        for name, value in properties.items():
            self._vprop_values.setdefault(name, set())
            if isinstance(value, str):
                self._vprop_values[name].add(value)
        return vertex_id

    def vertex_id(self, key: Hashable) -> int:
        """Return the dense vertex ID previously associated with ``key``."""
        try:
            return self._vertex_keys[key]
        except KeyError as exc:
            raise GraphBuildError(f"unknown vertex key {key!r}") from exc

    def add_edge(
        self,
        src: int,
        dst: int,
        label: str,
        **properties: PropertyValue,
    ) -> int:
        """Add an edge from ``src`` to ``dst`` and return its dense edge ID."""
        self._check_not_built()
        num_vertices = len(self._vertex_labels)
        if not (0 <= src < num_vertices) or not (0 <= dst < num_vertices):
            raise GraphBuildError(
                f"edge endpoints ({src}, {dst}) out of range [0, {num_vertices})"
            )
        edge_id = len(self._edge_src)
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        self._edge_labels.append(self.schema.add_edge_label(label))
        self._edge_props.append(dict(properties))
        for name, value in properties.items():
            self._eprop_values.setdefault(name, set())
            if isinstance(value, str):
                self._eprop_values[name].add(value)
        return edge_id

    def _check_not_built(self) -> None:
        if self._built:
            raise GraphBuildError("builder has already produced a graph")

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def _infer_type(
        self,
        name: str,
        declared: Dict[str, PropertyType],
        rows: List[Dict[str, PropertyValue]],
    ) -> PropertyType:
        if name in declared:
            return declared[name]
        for row in rows:
            value = row.get(name)
            if value is None:
                continue
            if isinstance(value, bool):
                return PropertyType.INT
            if isinstance(value, int):
                return PropertyType.INT
            if isinstance(value, float):
                return PropertyType.FLOAT
            if isinstance(value, str):
                return PropertyType.CATEGORICAL
        return PropertyType.INT

    def _register_props(
        self,
        kind: str,
        rows: List[Dict[str, PropertyValue]],
        declared: Dict[str, PropertyType],
        string_values: Dict[str, set],
    ) -> None:
        names = sorted({name for row in rows for name in row} | set(declared))
        for name in names:
            ptype = self._infer_type(name, declared, rows)
            categories = None
            if ptype is PropertyType.CATEGORICAL:
                categories = sorted(string_values.get(name, set()))
            if kind == "vertex":
                self.schema.add_vertex_property(name, ptype, categories)
            else:
                self.schema.add_edge_property(name, ptype, categories)

    def build(self) -> PropertyGraph:
        """Finalize and return the :class:`PropertyGraph`."""
        self._check_not_built()
        self._built = True
        self._register_props(
            "vertex", self._vertex_props, self._declared_vprops, self._vprop_values
        )
        self._register_props(
            "edge", self._edge_props, self._declared_eprops, self._eprop_values
        )

        vertex_store = PropertyStore(self.schema, "vertex")
        vertex_store.set_count(len(self._vertex_labels))
        for vertex_id, props in enumerate(self._vertex_props):
            for name, value in props.items():
                vertex_store.set_value(vertex_id, name, value)

        edge_store = PropertyStore(self.schema, "edge")
        edge_store.set_count(len(self._edge_src))
        for edge_id, props in enumerate(self._edge_props):
            for name, value in props.items():
                edge_store.set_value(edge_id, name, value)

        return PropertyGraph(
            schema=self.schema,
            vertex_labels=np.asarray(self._vertex_labels, dtype=np.int32),
            edge_src=np.asarray(self._edge_src, dtype=np.int32),
            edge_dst=np.asarray(self._edge_dst, dtype=np.int32),
            edge_labels=np.asarray(self._edge_labels, dtype=np.int32),
            vertex_props=vertex_store,
            edge_props=edge_store,
        )
