"""The in-memory property graph.

A :class:`PropertyGraph` is the finalized, read-optimized representation of a
property graph: dense vertex and edge IDs, label code arrays, and columnar
property stores.  It is the substrate on which A+ indexes are built.

Graphs are normally created through :class:`repro.graph.builder.GraphBuilder`
or one of the generators in :mod:`repro.graph.generators`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import GraphBuildError, SchemaError
from .property_store import PropertyStore
from .schema import GraphSchema
from .types import EDGE_ID_DTYPE, VERTEX_ID_DTYPE, PropertyValue


class PropertyGraph:
    """A finalized in-memory property graph.

    Attributes:
        schema: the :class:`GraphSchema` describing labels and properties.
        vertex_labels: int32 array, label code of each vertex.
        edge_labels: int32 array, label code of each edge.
        edge_src: int32 array, source vertex ID of each edge.
        edge_dst: int32 array, destination vertex ID of each edge.
        vertex_props: columnar vertex property store.
        edge_props: columnar edge property store.
    """

    def __init__(
        self,
        schema: GraphSchema,
        vertex_labels: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_labels: np.ndarray,
        vertex_props: PropertyStore,
        edge_props: PropertyStore,
    ) -> None:
        self.schema = schema
        self.vertex_labels = np.asarray(vertex_labels, dtype=np.int32)
        self.edge_src = np.asarray(edge_src, dtype=VERTEX_ID_DTYPE)
        self.edge_dst = np.asarray(edge_dst, dtype=VERTEX_ID_DTYPE)
        self.edge_labels = np.asarray(edge_labels, dtype=np.int32)
        self.vertex_props = vertex_props
        self.edge_props = edge_props
        self._out_degree: Optional[np.ndarray] = None
        self._in_degree: Optional[np.ndarray] = None
        self._validate()

    def _validate(self) -> None:
        n = self.num_vertices
        if len(self.edge_src) != len(self.edge_dst) or len(self.edge_src) != len(
            self.edge_labels
        ):
            raise GraphBuildError("edge arrays have inconsistent lengths")
        if n == 0 and self.num_edges > 0:
            raise GraphBuildError("graph has edges but no vertices")
        if self.num_edges:
            if int(self.edge_src.min()) < 0 or int(self.edge_src.max()) >= n:
                raise GraphBuildError("edge source vertex ID out of range")
            if int(self.edge_dst.min()) < 0 or int(self.edge_dst.max()) >= n:
                raise GraphBuildError("edge destination vertex ID out of range")
        if self.vertex_props.count != n:
            raise GraphBuildError("vertex property store size mismatch")
        if self.edge_props.count != self.num_edges:
            raise GraphBuildError("edge property store size mismatch")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertex_labels)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    @property
    def average_degree(self) -> float:
        """Average out-degree (edges / vertices)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def vertex_label_name(self, vertex_id: int) -> str:
        return self.schema.vertex_labels.name(int(self.vertex_labels[vertex_id]))

    def edge_label_name(self, edge_id: int) -> str:
        return self.schema.edge_labels.name(int(self.edge_labels[edge_id]))

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """Return ``(src, dst)`` of an edge."""
        return int(self.edge_src[edge_id]), int(self.edge_dst[edge_id])

    def vertex_property(self, vertex_id: int, name: str) -> PropertyValue:
        return self.vertex_props.value(vertex_id, name)

    def edge_property(self, edge_id: int, name: str) -> PropertyValue:
        return self.edge_props.value(edge_id, name)

    # ------------------------------------------------------------------
    # vectorized helpers used by the storage and query layers
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: str) -> np.ndarray:
        """Return the IDs of all vertices carrying ``label``."""
        code = self.schema.vertex_label_code(label)
        return np.nonzero(self.vertex_labels == code)[0].astype(VERTEX_ID_DTYPE)

    def edges_with_label(self, label: str) -> np.ndarray:
        """Return the IDs of all edges carrying ``label``."""
        code = self.schema.edge_label_code(label)
        return np.nonzero(self.edge_labels == code)[0].astype(EDGE_ID_DTYPE)

    def all_vertices(self) -> np.ndarray:
        return np.arange(self.num_vertices, dtype=VERTEX_ID_DTYPE)

    def all_edges(self) -> np.ndarray:
        return np.arange(self.num_edges, dtype=EDGE_ID_DTYPE)

    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex.

        Computed once and cached (graphs are immutable after construction;
        maintenance flushes install a *new* graph).  Callers must treat the
        returned array as read-only.
        """
        if self._out_degree is None:
            self._out_degree = np.bincount(self.edge_src, minlength=self.num_vertices)
        return self._out_degree

    def in_degree(self) -> np.ndarray:
        """In-degree of every vertex (cached; treat as read-only)."""
        if self._in_degree is None:
            self._in_degree = np.bincount(self.edge_dst, minlength=self.num_vertices)
        return self._in_degree

    # ------------------------------------------------------------------
    # iteration (convenience, used by tests and examples)
    # ------------------------------------------------------------------
    def iter_edges(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(edge_id, src, dst, label_code)`` tuples."""
        for edge_id in range(self.num_edges):
            yield (
                edge_id,
                int(self.edge_src[edge_id]),
                int(self.edge_dst[edge_id]),
                int(self.edge_labels[edge_id]),
            )

    # ------------------------------------------------------------------
    # accounting & description
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Approximate memory footprint of the raw graph (without indexes)."""
        total = (
            self.vertex_labels.nbytes
            + self.edge_labels.nbytes
            + self.edge_src.nbytes
            + self.edge_dst.nbytes
        )
        total += self.vertex_props.nbytes() + self.edge_props.nbytes()
        return total

    def describe(self) -> str:
        return (
            f"PropertyGraph(|V|={self.num_vertices:,}, |E|={self.num_edges:,}, "
            f"avg_degree={self.average_degree:.2f}, "
            f"vertex_labels={self.schema.num_vertex_labels}, "
            f"edge_labels={self.schema.num_edge_labels})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
