"""Catalog statistics over a property graph.

The DP optimizer's i-cost model (Section IV-A) estimates the sizes of the
adjacency lists a plan will access.  :class:`GraphStatistics` precomputes the
degree and label-selectivity statistics the cost model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .graph import PropertyGraph
from .types import Direction


@dataclass
class DegreeSummary:
    """Summary statistics of a degree distribution."""

    mean: float
    maximum: int
    p50: float
    p90: float
    p99: float

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeSummary":
        if len(degrees) == 0:
            return cls(0.0, 0, 0.0, 0.0, 0.0)
        return cls(
            mean=float(degrees.mean()),
            maximum=int(degrees.max()),
            p50=float(np.percentile(degrees, 50)),
            p90=float(np.percentile(degrees, 90)),
            p99=float(np.percentile(degrees, 99)),
        )


class GraphStatistics:
    """Degree and label statistics used by the query optimizer.

    All quantities are computed once at construction; the class is cheap to
    keep around for the lifetime of a database instance.
    """

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self._out_degrees = graph.out_degree()
        self._in_degrees = graph.in_degree()
        self.out_summary = DegreeSummary.from_degrees(self._out_degrees)
        self.in_summary = DegreeSummary.from_degrees(self._in_degrees)

        num_edges = max(graph.num_edges, 1)
        num_vertices = max(graph.num_vertices, 1)

        self._edge_label_counts: Dict[int, int] = {}
        labels, counts = np.unique(graph.edge_labels, return_counts=True)
        for label, count in zip(labels, counts):
            self._edge_label_counts[int(label)] = int(count)

        self._vertex_label_counts: Dict[int, int] = {}
        labels, counts = np.unique(graph.vertex_labels, return_counts=True)
        for label, count in zip(labels, counts):
            self._vertex_label_counts[int(label)] = int(count)

        self._num_edges = graph.num_edges
        self._num_vertices = graph.num_vertices
        self._avg_out_degree = graph.num_edges / num_vertices
        self._avg_in_degree = graph.num_edges / num_vertices

    # ------------------------------------------------------------------
    # selectivities
    # ------------------------------------------------------------------
    def edge_label_selectivity(self, label_code: Optional[int]) -> float:
        """Fraction of edges carrying ``label_code`` (1.0 if None)."""
        if label_code is None:
            return 1.0
        if self._num_edges == 0:
            return 0.0
        return self._edge_label_counts.get(label_code, 0) / self._num_edges

    def vertex_label_selectivity(self, label_code: Optional[int]) -> float:
        """Fraction of vertices carrying ``label_code`` (1.0 if None)."""
        if label_code is None:
            return 1.0
        if self._num_vertices == 0:
            return 0.0
        return self._vertex_label_counts.get(label_code, 0) / self._num_vertices

    def vertices_with_label(self, label_code: Optional[int]) -> int:
        if label_code is None:
            return self._num_vertices
        return self._vertex_label_counts.get(label_code, 0)

    # ------------------------------------------------------------------
    # expected adjacency-list sizes
    # ------------------------------------------------------------------
    def average_degree(
        self,
        direction: Direction,
        edge_label_code: Optional[int] = None,
        extra_selectivity: float = 1.0,
    ) -> float:
        """Expected size of one adjacency list.

        Args:
            direction: FORWARD for out-lists, BACKWARD for in-lists.
            edge_label_code: restrict to this edge label (None = all labels).
            extra_selectivity: multiplicative selectivity of any further
                predicates on the list (e.g. a 5%-selective time predicate).
        """
        base = (
            self._avg_out_degree
            if direction is Direction.FORWARD
            else self._avg_in_degree
        )
        return base * self.edge_label_selectivity(edge_label_code) * extra_selectivity

    def describe(self) -> str:
        return (
            f"GraphStatistics(|V|={self._num_vertices:,}, |E|={self._num_edges:,}, "
            f"out={self.out_summary}, in={self.in_summary})"
        )
