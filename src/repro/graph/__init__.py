"""Property-graph substrate: schema, columnar storage, builders, generators."""

from .builder import GraphBuilder
from .generators import (
    FinancialGraphSpec,
    HubSkewedGraphSpec,
    LabelledGraphSpec,
    SocialGraphSpec,
    generate_financial_graph,
    generate_hub_skewed_graph,
    generate_labelled_graph,
    generate_social_graph,
    running_example_graph,
)
from .graph import PropertyGraph
from .loader import assign_random_labels, load_csv, load_edge_list
from .property_store import PropertyStore
from .schema import GraphSchema, PropertyDef
from .statistics import DegreeSummary, GraphStatistics
from .types import Direction, EdgeAdjacencyType, PropertyType

__all__ = [
    "Direction",
    "DegreeSummary",
    "EdgeAdjacencyType",
    "FinancialGraphSpec",
    "GraphBuilder",
    "GraphSchema",
    "GraphStatistics",
    "HubSkewedGraphSpec",
    "LabelledGraphSpec",
    "PropertyDef",
    "PropertyGraph",
    "PropertyStore",
    "PropertyType",
    "SocialGraphSpec",
    "assign_random_labels",
    "generate_financial_graph",
    "generate_hub_skewed_graph",
    "generate_labelled_graph",
    "generate_social_graph",
    "load_csv",
    "load_edge_list",
    "running_example_graph",
]
