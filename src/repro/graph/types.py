"""Shared type definitions and constants for the property-graph substrate.

The reproduction follows GraphflowDB's storage conventions described in
Section IV-B of the paper:

* vertex IDs are dense 4-byte integers assigned consecutively from 0,
* edge IDs are dense 8-byte integers assigned consecutively from 0,
* categorical properties (used as partitioning keys) are dictionary-coded to
  small non-negative integers, with ``NULL_CATEGORY`` reserved for missing
  values (the paper: "Edges with null property values form a special
  partition").
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

# Dtypes used throughout the storage layer.  Edge IDs are stored as 8-byte
# integers and neighbour vertex IDs as 4-byte integers, matching the byte
# accounting in Section IV-B of the paper.
VERTEX_ID_DTYPE = np.int32
EDGE_ID_DTYPE = np.int64
OFFSET_DTYPE = np.int64

#: Number of bytes charged per neighbour-vertex-ID entry in ID lists.
VERTEX_ID_BYTES = 4
#: Number of bytes charged per edge-ID entry in ID lists.
EDGE_ID_BYTES = 8
#: Number of bytes charged per CSR offset entry in partitioning levels.
CSR_OFFSET_BYTES = 4

#: Vertices/edges per page for offset-list byte-width selection (Section IV-B:
#: "a CSR for groups of 64 vertices ... one data page for each group").
PAGE_SIZE = 64

#: Sentinel integer code for a missing (null) categorical value.  Nulls form
#: their own partition and are ordered last when used as a sort key.
NULL_CATEGORY = -1

#: Sentinel used for missing numeric property values.
NULL_INT = np.iinfo(np.int64).min

PropertyValue = Union[int, float, str, bool, None]


class PropertyType(enum.Enum):
    """Type of a vertex or edge property column.

    ``CATEGORICAL`` columns are dictionary-coded to small integers and are the
    only columns allowed as partitioning keys of an A+ index.  ``INT``,
    ``FLOAT`` and ``STRING`` columns may be used in predicates and as sorting
    keys.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CATEGORICAL = "categorical"


class Direction(enum.Enum):
    """Direction of an adjacency-list index relative to its bound vertex.

    ``FORWARD`` lists contain the out-edges of the bound vertex (neighbours
    are edge destinations); ``BACKWARD`` lists contain the in-edges
    (neighbours are edge sources).
    """

    FORWARD = "fw"
    BACKWARD = "bw"

    @property
    def reverse(self) -> "Direction":
        """Return the opposite direction."""
        if self is Direction.FORWARD:
            return Direction.BACKWARD
        return Direction.FORWARD

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class EdgeAdjacencyType(enum.Enum):
    """The four ways an edge's adjacency can be defined (Section III-B2).

    For a bound edge ``eb = (vs, vd)``:

    * ``DST_FW``:  ``vs -[eb]-> vd -[eadj]-> vnbr``  (forward edges of ``vd``)
    * ``DST_BW``:  ``vs -[eb]-> vd <-[eadj]- vnbr``  (backward edges of ``vd``)
    * ``SRC_FW``:  ``vnbr -[eadj]-> vs -[eb]-> vd``  (backward edges of ``vs``
      in terms of the join, i.e. edges whose destination is ``vs``)
    * ``SRC_BW``:  ``vnbr <-[eadj]- vs -[eb]-> vd``  (forward edges of ``vs``)
    """

    DST_FW = "destination-fw"
    DST_BW = "destination-bw"
    SRC_FW = "source-fw"
    SRC_BW = "source-bw"

    @property
    def bound_endpoint_is_destination(self) -> bool:
        """True if adjacency is anchored on the bound edge's destination."""
        return self in (EdgeAdjacencyType.DST_FW, EdgeAdjacencyType.DST_BW)

    @property
    def adjacency_direction(self) -> Direction:
        """Direction of the adjacent edges relative to the shared vertex."""
        if self in (EdgeAdjacencyType.DST_FW, EdgeAdjacencyType.SRC_BW):
            return Direction.FORWARD
        return Direction.BACKWARD
