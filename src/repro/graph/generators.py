"""Synthetic graph generators.

The paper evaluates on four real-world graphs (Orkut, LiveJournal,
Wiki-topcats, BerkStan; Table I) with randomly assigned vertex/edge labels and,
for the fraud workload, randomly assigned account/city/amount/currency/date
properties (Section V-C2).  Those graphs are hundreds of millions of edges and
cannot be processed at full scale by a pure-Python engine, so this module
provides deterministic, laptop-scale substitutes that preserve the structural
features the paper's claims depend on:

* skewed (power-law-like) degree distributions via a preferential-attachment
  style generator,
* small average degrees typical of real-world graphs (the property that makes
  offset lists compact, Section III-B3),
* uniformly random vertex/edge label assignment with configurable label counts
  (the ``G_{i,j}`` notation of Table I), and
* the financial property distributions of Section V-C2 (account type from
  ``{CQ, SV}``, a city drawn from a configurable number of cities, an amount
  in ``[1, 1000]``, a currency, and a date within a 5-year range).

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .graph import PropertyGraph
from .property_store import PropertyStore
from .schema import GraphSchema
from .types import PropertyType

#: Default categorical domains used by the financial workload (Section V-C2).
ACCOUNT_TYPES = ("CQ", "SV")
CURRENCIES = ("USD", "EUR", "GBP", "CAD")
#: The paper samples cities from 4417 cities; a smaller default keeps the
#: equality-join selectivity comparable at our reduced graph scale.
DEFAULT_NUM_CITIES = 64
#: Date range in integer days (5 years, Section V-C2).
DATE_RANGE_DAYS = 5 * 365


def _power_law_edges(
    num_vertices: int,
    num_edges: int,
    rng: np.random.Generator,
    skew: float = 0.75,
) -> tuple:
    """Generate edge endpoints with a skewed degree distribution.

    A preferential-attachment-flavoured scheme: destination (and source)
    vertices are sampled from a Zipf-like distribution over vertex IDs, then
    shuffled through a fixed permutation so that vertex ID does not correlate
    with degree (real datasets do not have that correlation either).

    Returns:
        (src, dst) int32 arrays of length ``num_edges``; self-loops are
        remapped to a neighbouring vertex.
    """
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    permutation = rng.permutation(num_vertices)
    src = permutation[rng.choice(num_vertices, size=num_edges, p=weights)]
    dst = permutation[rng.choice(num_vertices, size=num_edges, p=weights)]
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    return src.astype(np.int32), dst.astype(np.int32)


def _uniform_edges(
    num_vertices: int, num_edges: int, rng: np.random.Generator
) -> tuple:
    """Generate uniformly random edge endpoints (Erdos-Renyi-like)."""
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    return src.astype(np.int32), dst.astype(np.int32)


@dataclass
class LabelledGraphSpec:
    """Parameters for :func:`generate_labelled_graph`.

    Attributes:
        num_vertices: number of vertices.
        num_edges: number of edges.
        num_vertex_labels: ``i`` in the paper's ``G_{i,j}`` notation.
        num_edge_labels: ``j`` in the paper's ``G_{i,j}`` notation.
        skew: degree-distribution skew exponent; 0 gives uniform degrees.
        seed: RNG seed.
    """

    num_vertices: int
    num_edges: int
    num_vertex_labels: int = 1
    num_edge_labels: int = 1
    skew: float = 0.75
    seed: int = 42


def generate_labelled_graph(spec: LabelledGraphSpec) -> PropertyGraph:
    """Generate a labelled graph per the paper's ``G_{i,j}`` methodology.

    Vertex and edge labels are assigned uniformly at random, which is the
    data-generation methodology of Section V-B (following prior subgraph-query
    work).
    """
    rng = np.random.default_rng(spec.seed)
    schema = GraphSchema()
    for i in range(spec.num_vertex_labels):
        schema.add_vertex_label(f"VL{i}")
    for j in range(spec.num_edge_labels):
        schema.add_edge_label(f"EL{j}")

    if spec.skew > 0:
        src, dst = _power_law_edges(spec.num_vertices, spec.num_edges, rng, spec.skew)
    else:
        src, dst = _uniform_edges(spec.num_vertices, spec.num_edges, rng)

    vertex_labels = rng.integers(
        0, spec.num_vertex_labels, size=spec.num_vertices, dtype=np.int32
    )
    edge_labels = rng.integers(
        0, spec.num_edge_labels, size=spec.num_edges, dtype=np.int32
    )

    vertex_store = PropertyStore(schema, "vertex")
    vertex_store.set_count(spec.num_vertices)
    edge_store = PropertyStore(schema, "edge")
    edge_store.set_count(spec.num_edges)

    return PropertyGraph(
        schema=schema,
        vertex_labels=vertex_labels,
        edge_src=src,
        edge_dst=dst,
        edge_labels=edge_labels,
        vertex_props=vertex_store,
        edge_props=edge_store,
    )


@dataclass
class HubSkewedGraphSpec:
    """Parameters for :func:`generate_hub_skewed_graph`.

    Attributes:
        num_vertices: number of vertices.
        num_edges: number of edges.
        skew: Zipf exponent of the degree distribution.
        seed: RNG seed.
    """

    num_vertices: int
    num_edges: int
    skew: float = 1.1
    seed: int = 42


def generate_hub_skewed_graph(spec: HubSkewedGraphSpec) -> PropertyGraph:
    """Generate a Zipf graph whose *out*-degree correlates with vertex ID.

    Unlike :func:`_power_law_edges`, edge sources are **not** shuffled
    through a permutation: vertex 0 is the heaviest hub and expected
    out-degree decays with the vertex ID, so the low-ID region of the
    vertex domain carries nearly all the forward adjacency work.  This is
    the pathological case for splitting a scan domain into equal
    vertex-*count* morsels (the first ranges become stragglers) and the
    motivating case for degree-weighted morsel generation — it models
    hub-clustered ID assignment (e.g. crawl order or insertion order
    putting celebrities first), which the other generators deliberately
    destroy.  Destinations are uniform, keeping in-degrees flat: workloads
    can hop *backward* with uniform fan-out and still hit the skewed
    forward lists, which bounds their total work linearly in the hub degree.
    """
    rng = np.random.default_rng(spec.seed)
    schema = GraphSchema()
    schema.add_vertex_label("V")
    schema.add_edge_label("E")

    ranks = np.arange(1, spec.num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-spec.skew)
    weights /= weights.sum()
    src = rng.choice(spec.num_vertices, size=spec.num_edges, p=weights)
    dst = rng.integers(0, spec.num_vertices, size=spec.num_edges)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % spec.num_vertices

    vertex_store = PropertyStore(schema, "vertex")
    vertex_store.set_count(spec.num_vertices)
    edge_store = PropertyStore(schema, "edge")
    edge_store.set_count(spec.num_edges)

    return PropertyGraph(
        schema=schema,
        vertex_labels=np.zeros(spec.num_vertices, dtype=np.int32),
        edge_src=src.astype(np.int32),
        edge_dst=dst.astype(np.int32),
        edge_labels=np.zeros(spec.num_edges, dtype=np.int32),
        vertex_props=vertex_store,
        edge_props=edge_store,
    )


@dataclass
class SocialGraphSpec:
    """Parameters for :func:`generate_social_graph` (MagicRecs workload).

    The MagicRecs queries (Section V-C1) run on follower graphs whose edges
    carry a ``time`` property; the time predicate in the queries is tuned to
    5% selectivity.
    """

    num_vertices: int
    num_edges: int
    skew: float = 0.75
    time_range: int = 1_000_000
    seed: int = 7


def generate_social_graph(spec: SocialGraphSpec) -> PropertyGraph:
    """Generate a follower graph with a ``time`` property on edges."""
    rng = np.random.default_rng(spec.seed)
    schema = GraphSchema()
    schema.add_vertex_label("User")
    schema.add_edge_label("Follows")
    schema.add_edge_property("time", PropertyType.INT)

    src, dst = _power_law_edges(spec.num_vertices, spec.num_edges, rng, spec.skew)
    vertex_labels = np.zeros(spec.num_vertices, dtype=np.int32)
    edge_labels = np.zeros(spec.num_edges, dtype=np.int32)

    vertex_store = PropertyStore(schema, "vertex")
    vertex_store.set_count(spec.num_vertices)
    edge_store = PropertyStore(schema, "edge")
    edge_store.set_count(spec.num_edges)
    edge_store.set_column(
        "time", rng.integers(0, spec.time_range, size=spec.num_edges, dtype=np.int64)
    )

    return PropertyGraph(
        schema=schema,
        vertex_labels=vertex_labels,
        edge_src=src,
        edge_dst=dst,
        edge_labels=edge_labels,
        vertex_props=vertex_store,
        edge_props=edge_store,
    )


@dataclass
class FinancialGraphSpec:
    """Parameters for :func:`generate_financial_graph` (fraud workload).

    Mirrors the data-augmentation methodology of Section V-C2: every vertex is
    an account with an ``acc`` type from ``{CQ, SV}`` and a ``city``; every
    edge is a transfer with label ``Wire`` or ``DirDeposit``, an ``amt`` in
    ``[1, 1000]``, a ``currency``, and a ``date`` within a 5-year range.
    """

    num_vertices: int
    num_edges: int
    num_cities: int = DEFAULT_NUM_CITIES
    skew: float = 0.75
    seed: int = 11


def generate_financial_graph(spec: FinancialGraphSpec) -> PropertyGraph:
    """Generate a financial transfer graph for the fraud workload."""
    rng = np.random.default_rng(spec.seed)
    cities = tuple(f"city{i}" for i in range(spec.num_cities))

    schema = GraphSchema()
    schema.add_vertex_label("Account")
    schema.add_edge_label("Wire")
    schema.add_edge_label("DirDeposit")
    schema.add_vertex_property("acc", PropertyType.CATEGORICAL, ACCOUNT_TYPES)
    schema.add_vertex_property("city", PropertyType.CATEGORICAL, cities)
    schema.add_edge_property("amt", PropertyType.INT)
    schema.add_edge_property("date", PropertyType.INT)
    schema.add_edge_property("currency", PropertyType.CATEGORICAL, CURRENCIES)

    src, dst = _power_law_edges(spec.num_vertices, spec.num_edges, rng, spec.skew)
    vertex_labels = np.zeros(spec.num_vertices, dtype=np.int32)
    edge_labels = rng.integers(0, 2, size=spec.num_edges, dtype=np.int32)

    vertex_store = PropertyStore(schema, "vertex")
    vertex_store.set_count(spec.num_vertices)
    vertex_store.set_column(
        "acc", rng.integers(0, len(ACCOUNT_TYPES), size=spec.num_vertices)
    )
    vertex_store.set_column(
        "city", rng.integers(0, spec.num_cities, size=spec.num_vertices)
    )

    edge_store = PropertyStore(schema, "edge")
    edge_store.set_count(spec.num_edges)
    edge_store.set_column("amt", rng.integers(1, 1001, size=spec.num_edges))
    edge_store.set_column("date", rng.integers(0, DATE_RANGE_DAYS, size=spec.num_edges))
    edge_store.set_column(
        "currency", rng.integers(0, len(CURRENCIES), size=spec.num_edges)
    )

    return PropertyGraph(
        schema=schema,
        vertex_labels=vertex_labels,
        edge_src=src,
        edge_dst=dst,
        edge_labels=edge_labels,
        vertex_props=vertex_store,
        edge_props=edge_store,
    )


def running_example_graph() -> PropertyGraph:
    """Build the paper's running example graph (Figure 1).

    Five ``Account`` vertices (v1..v5), three ``Customer`` vertices (v6..v8),
    ``Owns`` edges from customers to accounts, and twenty transfer edges
    t1..t20 with ``Wire``/``DirDeposit`` labels, amounts, currencies and dates
    (``ti.date < tj.date`` iff ``i < j``).  Useful for examples and tests that
    mirror the figures in the paper.
    """
    from .builder import GraphBuilder

    builder = GraphBuilder()
    builder.declare_edge_property("currency", PropertyType.CATEGORICAL)
    builder.declare_vertex_property("city", PropertyType.CATEGORICAL)
    builder.declare_vertex_property("acc", PropertyType.CATEGORICAL)

    accounts = {
        "v1": dict(acc="SV", city="SF"),
        "v2": dict(acc="CQ", city="SF"),
        "v3": dict(acc="SV", city="BOS"),
        "v4": dict(acc="CQ", city="BOS"),
        "v5": dict(acc="SV", city="LA"),
    }
    for key, props in accounts.items():
        builder.add_vertex("Account", key=key, **props)
    for key, name in (("v6", "Charles"), ("v7", "Alice"), ("v8", "Bob")):
        builder.add_vertex("Customer", key=key, name=name)

    # Customer ownership edges e1..e5 (assignment consistent with Figure 1's
    # description: Alice owns v1, and the remaining accounts are covered).
    owns = [("v7", "v1"), ("v7", "v2"), ("v6", "v3"), ("v8", "v4"), ("v8", "v5")]
    for customer, account in owns:
        builder.add_edge(
            builder.vertex_id(customer), builder.vertex_id(account), "Owns"
        )

    # Transfer edges t1..t20.  Amounts/currencies follow Figure 1; dates are
    # the transfer's ordinal so that ti.date < tj.date iff i < j.
    transfers = [
        ("t1", "DD", "v1", "v2", 40, "USD"),
        ("t2", "DD", "v3", "v1", 20, "GBP"),
        ("t3", "DD", "v3", "v1", 200, "USD"),
        ("t4", "W", "v1", "v3", 200, "EUR"),
        ("t5", "W", "v4", "v2", 50, "USD"),
        ("t6", "DD", "v4", "v2", 70, "USD"),
        ("t7", "DD", "v2", "v4", 75, "USD"),
        ("t8", "W", "v2", "v4", 75, "USD"),
        ("t9", "W", "v3", "v4", 75, "USD"),
        ("t10", "DD", "v3", "v4", 80, "USD"),
        ("t11", "W", "v4", "v3", 5, "EUR"),
        ("t12", "DD", "v4", "v3", 50, "USD"),
        ("t13", "DD", "v2", "v5", 10, "GBP"),
        ("t14", "W", "v5", "v4", 10, "USD"),
        ("t15", "DD", "v1", "v2", 25, "USD"),
        ("t16", "DD", "v5", "v3", 195, "USD"),
        ("t17", "W", "v1", "v2", 25, "EUR"),
        ("t18", "DD", "v1", "v5", 30, "EUR"),
        ("t19", "W", "v5", "v3", 5, "GBP"),
        ("t20", "W", "v1", "v4", 80, "USD"),
    ]
    label_names = {"W": "Wire", "DD": "DirDeposit"}
    for ordinal, (_, label, src, dst, amount, currency) in enumerate(transfers, 1):
        builder.add_edge(
            builder.vertex_id(src),
            builder.vertex_id(dst),
            label_names[label],
            amt=amount,
            currency=currency,
            date=ordinal,
        )
    return builder.build()
