"""Graph schema: label dictionaries and property definitions.

A :class:`GraphSchema` records, for vertices and edges separately:

* the label dictionary (label name -> small integer code), and
* the property catalog (property name -> :class:`PropertyDef`).

Labels and categorical properties are dictionary-coded because A+ index
partitioning levels require small integer key domains ("In our implementation
we allow integers or enums that are mapped to small number of integers as
categorical values", Section III-A1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import SchemaError
from .types import PropertyType


@dataclass(frozen=True)
class PropertyDef:
    """Definition of a vertex or edge property column.

    Attributes:
        name: property name as used in queries (e.g. ``"amt"``).
        ptype: the :class:`PropertyType` of the column.
        categories: for ``CATEGORICAL`` columns, the ordered list of category
            names; the integer code of a category is its position in this
            list.  Empty for non-categorical columns.
    """

    name: str
    ptype: PropertyType
    categories: tuple = field(default_factory=tuple)

    @property
    def is_categorical(self) -> bool:
        return self.ptype is PropertyType.CATEGORICAL

    @property
    def num_categories(self) -> int:
        if not self.is_categorical:
            raise SchemaError(f"property {self.name!r} is not categorical")
        return len(self.categories)

    def code_of(self, category: str) -> int:
        """Return the integer code of ``category``.

        Raises:
            SchemaError: if the category is unknown.
        """
        try:
            return self.categories.index(category)
        except ValueError as exc:
            raise SchemaError(
                f"unknown category {category!r} for property {self.name!r}; "
                f"known: {list(self.categories)}"
            ) from exc

    def category_of(self, code: int) -> str:
        """Return the category name for an integer ``code``."""
        if code < 0 or code >= len(self.categories):
            raise SchemaError(
                f"category code {code} out of range for property {self.name!r}"
            )
        return self.categories[code]


class _LabelDictionary:
    """A bidirectional mapping between label names and dense integer codes."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._name_to_code: Dict[str, int] = {}
        self._names: List[str] = []

    def add(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its code."""
        if name in self._name_to_code:
            return self._name_to_code[name]
        code = len(self._names)
        self._name_to_code[name] = code
        self._names.append(name)
        return code

    def code(self, name: str) -> int:
        try:
            return self._name_to_code[name]
        except KeyError as exc:
            raise SchemaError(
                f"unknown {self._kind} label {name!r}; known: {self._names}"
            ) from exc

    def name(self, code: int) -> str:
        if code < 0 or code >= len(self._names):
            raise SchemaError(f"{self._kind} label code {code} out of range")
        return self._names[code]

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_code

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> List[str]:
        return list(self._names)


class GraphSchema:
    """Catalog of labels and properties for a property graph.

    The schema is mutable while the graph is being built and is shared by the
    finalized :class:`~repro.graph.graph.PropertyGraph`.
    """

    def __init__(self) -> None:
        self.vertex_labels = _LabelDictionary("vertex")
        self.edge_labels = _LabelDictionary("edge")
        self._vertex_props: Dict[str, PropertyDef] = {}
        self._edge_props: Dict[str, PropertyDef] = {}

    # ------------------------------------------------------------------
    # label helpers
    # ------------------------------------------------------------------
    def add_vertex_label(self, name: str) -> int:
        """Register a vertex label and return its integer code."""
        return self.vertex_labels.add(name)

    def add_edge_label(self, name: str) -> int:
        """Register an edge label and return its integer code."""
        return self.edge_labels.add(name)

    def vertex_label_code(self, name: str) -> int:
        return self.vertex_labels.code(name)

    def edge_label_code(self, name: str) -> int:
        return self.edge_labels.code(name)

    @property
    def num_vertex_labels(self) -> int:
        return len(self.vertex_labels)

    @property
    def num_edge_labels(self) -> int:
        return len(self.edge_labels)

    # ------------------------------------------------------------------
    # property helpers
    # ------------------------------------------------------------------
    def add_vertex_property(
        self,
        name: str,
        ptype: PropertyType,
        categories: Optional[Iterable[str]] = None,
    ) -> PropertyDef:
        """Register a vertex property column definition."""
        return self._add_property(self._vertex_props, "vertex", name, ptype, categories)

    def add_edge_property(
        self,
        name: str,
        ptype: PropertyType,
        categories: Optional[Iterable[str]] = None,
    ) -> PropertyDef:
        """Register an edge property column definition."""
        return self._add_property(self._edge_props, "edge", name, ptype, categories)

    def _add_property(
        self,
        table: Dict[str, PropertyDef],
        kind: str,
        name: str,
        ptype: PropertyType,
        categories: Optional[Iterable[str]],
    ) -> PropertyDef:
        if name in table:
            existing = table[name]
            if existing.ptype is not ptype:
                raise SchemaError(
                    f"{kind} property {name!r} already registered with type "
                    f"{existing.ptype}, cannot re-register as {ptype}"
                )
            return existing
        cats = tuple(categories) if categories else tuple()
        if ptype is PropertyType.CATEGORICAL and not cats:
            raise SchemaError(
                f"categorical {kind} property {name!r} requires a category list"
            )
        if ptype is not PropertyType.CATEGORICAL and cats:
            raise SchemaError(
                f"{kind} property {name!r} of type {ptype} must not define categories"
            )
        prop = PropertyDef(name=name, ptype=ptype, categories=cats)
        table[name] = prop
        return prop

    def vertex_property(self, name: str) -> PropertyDef:
        try:
            return self._vertex_props[name]
        except KeyError as exc:
            raise SchemaError(f"unknown vertex property {name!r}") from exc

    def edge_property(self, name: str) -> PropertyDef:
        try:
            return self._edge_props[name]
        except KeyError as exc:
            raise SchemaError(f"unknown edge property {name!r}") from exc

    def has_vertex_property(self, name: str) -> bool:
        return name in self._vertex_props

    def has_edge_property(self, name: str) -> bool:
        return name in self._edge_props

    @property
    def vertex_property_names(self) -> List[str]:
        return list(self._vertex_props)

    @property
    def edge_property_names(self) -> List[str]:
        return list(self._edge_props)

    def describe(self) -> str:
        """Return a short human-readable description of the schema."""
        lines = ["GraphSchema:"]
        lines.append(f"  vertex labels: {self.vertex_labels.names}")
        lines.append(f"  edge labels:   {self.edge_labels.names}")
        lines.append("  vertex properties:")
        for prop in self._vertex_props.values():
            lines.append(f"    {prop.name}: {prop.ptype.value}")
        lines.append("  edge properties:")
        for prop in self._edge_props.values():
            lines.append(f"    {prop.name}: {prop.ptype.value}")
        return "\n".join(lines)
