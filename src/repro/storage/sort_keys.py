"""Sorting criteria for the most granular ID lists of an A+ index.

"The most granular sublists can be sorted according to one or more arbitrary
properties of the adjacent edges or neighbour vertices, e.g., the date
property of Transfer edges and the city property of the Account vertices"
(Section III-A2).  Sorting on neighbour IDs is the GraphflowDB default and is
what enables intersection-based (WCOJ) plans; sorting on other properties
enables MULTI-EXTEND intersections on those properties.

Null values sort last, mirroring the partitioning convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.types import NULL_CATEGORY, NULL_INT, PropertyType


@dataclass(frozen=True)
class SortKey:
    """One component of an ID list sort order.

    Attributes:
        target: ``"edge"`` (property of the adjacent edge), ``"nbr"``
            (property of the neighbour vertex), or ``"nbr_id"`` (the neighbour
            vertex ID itself, the system default).
        prop: property name; ignored for ``"nbr_id"``.
    """

    target: str
    prop: str = ""

    def __post_init__(self) -> None:
        if self.target not in ("edge", "nbr", "nbr_id", "edge_id"):
            raise IndexConfigError(
                "sort key target must be 'edge', 'nbr', 'nbr_id' or 'edge_id', "
                f"got {self.target!r}"
            )
        if self.target in ("edge", "nbr") and not self.prop:
            raise IndexConfigError("property sort keys require a property name")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def neighbour_id(cls) -> "SortKey":
        """Sort by neighbour vertex ID (``vnbr.ID``), the system default."""
        return cls("nbr_id")

    @classmethod
    def edge_id(cls) -> "SortKey":
        """Sort by edge ID, i.e. keep edges in insertion order.

        Used to model fixed-structure systems whose adjacency lists are not
        kept in any query-relevant order (e.g. linked-list storage).
        """
        return cls("edge_id")

    @classmethod
    def edge_property(cls, name: str) -> "SortKey":
        """Sort by a property of the adjacent edge (e.g. ``eadj.date``)."""
        return cls("edge", name)

    @classmethod
    def nbr_property(cls, name: str) -> "SortKey":
        """Sort by a property of the neighbour vertex (e.g. ``vnbr.city``)."""
        return cls("nbr", name)

    @classmethod
    def parse(cls, text: str) -> "SortKey":
        """Parse the DDL form ``vnbr.ID`` / ``eadj.date`` / ``vnbr.city``."""
        text = text.strip()
        if "." not in text:
            raise IndexConfigError(f"cannot parse sort key {text!r}")
        prefix, prop = text.split(".", 1)
        prefix = prefix.strip().lower()
        prop = prop.strip()
        if prefix in ("vnbr", "v", "nbr", "vertex") and prop.lower() == "id":
            return cls.neighbour_id()
        if prefix in ("eadj", "e", "edge"):
            return cls.edge_property(prop)
        if prefix in ("vnbr", "v", "nbr", "vertex"):
            return cls.nbr_property(prop)
        raise IndexConfigError(f"sort key prefix must be 'eadj' or 'vnbr', got {prefix!r}")

    # ------------------------------------------------------------------
    # key extraction
    # ------------------------------------------------------------------
    @property
    def is_neighbour_id(self) -> bool:
        return self.target == "nbr_id"

    @property
    def is_edge_id(self) -> bool:
        return self.target == "edge_id"

    def values(
        self,
        graph: PropertyGraph,
        edge_ids: np.ndarray,
        nbr_ids: np.ndarray,
    ) -> np.ndarray:
        """Return the sortable value of each edge (nulls mapped to +inf-like).

        The returned array is always a float64 or int64 array suitable for
        ``np.lexsort`` and binary search; null integer/categorical values are
        replaced by a value greater than every real value so that they sort
        last.
        """
        if self.is_neighbour_id:
            return np.asarray(nbr_ids, dtype=np.int64)
        if self.is_edge_id:
            return np.asarray(edge_ids, dtype=np.int64)
        if self.prop == "label":
            if self.target == "edge":
                return graph.edge_labels[edge_ids].astype(np.int64)
            return graph.vertex_labels[nbr_ids].astype(np.int64)
        if self.target == "edge":
            prop = graph.schema.edge_property(self.prop)
            column = graph.edge_props.column(self.prop)
            raw = np.asarray(column[edge_ids])
        else:
            prop = graph.schema.vertex_property(self.prop)
            column = graph.vertex_props.column(self.prop)
            raw = np.asarray(column[nbr_ids])
        if prop.ptype is PropertyType.STRING:
            raise IndexConfigError(
                f"cannot sort on string property {self.prop!r}; "
                "declare it categorical instead"
            )
        if prop.ptype is PropertyType.FLOAT:
            values = raw.astype(np.float64).copy()
            values[np.isnan(values)] = np.inf
            return values
        values = raw.astype(np.int64).copy()
        null_marker = NULL_CATEGORY if prop.ptype is PropertyType.CATEGORICAL else NULL_INT
        values[raw == null_marker] = np.iinfo(np.int64).max
        return values

    def value_for_element(self, graph: PropertyGraph, edge_id: int, nbr_id: int):
        """Sortable value of a single (edge, neighbour) pair."""
        edge_ids = np.asarray([edge_id], dtype=np.int64)
        nbr_ids = np.asarray([nbr_id], dtype=np.int64)
        return self.values(graph, edge_ids, nbr_ids)[0]

    def describe(self) -> str:
        if self.is_neighbour_id:
            return "vnbr.ID"
        if self.is_edge_id:
            return "eadj.ID"
        prefix = "eadj" if self.target == "edge" else "vnbr"
        return f"{prefix}.{self.prop}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def sort_values_matrix(
    keys: Sequence[SortKey],
    graph: PropertyGraph,
    edge_ids: np.ndarray,
    nbr_ids: np.ndarray,
) -> List[np.ndarray]:
    """Extract sortable value arrays for a list of sort keys (major first)."""
    return [key.values(graph, edge_ids, nbr_ids) for key in keys]
