"""Batch-wide segment intersection kernel for multi-leg extensions.

The extension operators fetch, per leg, the concatenation of a whole batch's
adjacency lists (``list_many``: flat ID arrays plus per-row counts).  This
module intersects those concatenated segments across all legs *for the entire
batch at once* — the list-based-processing idea of Kùzu (Gupta et al.)
applied to the WCOJ building block of A+ index plans: no Python loop over
partial matches remains on the hot path.

Composite keys
--------------

Row-locality is encoded into the join key itself.  Entry ``j`` of a leg whose
segments partition into batch rows by ``counts`` gets the composite key
``row(j) * domain + key(j)``.  Because segments are emitted in batch-row
order and each segment is (or is made) internally sorted on the join key, the
composite array is *globally* sorted — so one ``searchsorted`` per leg
replaces one binary search per (row, candidate) pair.  Integer keys that fit
are packed directly; anything else (floats, null markers near ``int64`` max)
is rank-encoded through one shared ``np.unique`` pass, which preserves order
and exact-equality semantics.

Adaptive membership strategies
------------------------------

Candidate (row, key) groups start as the first leg's distinct composite keys
and are filtered through every other leg.  Per leg, the chooser picks among
three membership tests on the sorted composite array (``m`` candidates, ``n``
leg entries, ``span`` the leg's composite value range):

* **gallop** — two binary searches per candidate, ``O(m log n)``.  Chosen
  when ``n >= GALLOP_RATIO * m`` (default 16): with few candidates against a
  long leg, per-candidate search beats touching all ``n`` entries.
* **hash** — a boolean table over the leg's value span probed directly,
  ``O(m + n + span)``.  Chosen when the span is dense,
  ``span <= HASH_TABLE_DENSITY * (m + n)`` (default 4) and below
  ``HASH_SPAN_CAP``, so the table allocation stays proportional to the data.
* **merge** — one linear merge of the two sorted arrays: the concatenation
  is stably sorted (timsort detects the two pre-sorted runs, so this is
  ``O(m + n)``, not a full sort) and members are the candidates with an equal
  neighbour.  The fallback when the sides are comparable and the key space is
  sparse.

All three produce identical surviving candidate sets; the final per-leg
``[left, right)`` run boundaries for the survivors then drive the vectorized
cross-product expansion (:func:`combo_positions`), through which edge-column
alignment survives the intersection: per-combination positions index back
into each leg's *original* concatenated arrays, so edge IDs fetched alongside
the neighbour IDs stay bound to the right output row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

#: Leg-to-candidate size ratio above which per-candidate binary search wins.
#: Confirmed by benchmarks/bench_intersect_ablation.py: gallop is the fastest
#: strategy from entry/candidate ratios of ~16 upward across key densities.
GALLOP_RATIO = 16
#: Maximum table-span-to-data ratio for the boolean-table probe.  Tuned from
#: the first-principles value of 4 by the same ablation: the O(span) table
#: stays fastest up to span ratios of ~16 (the zero-fill and probe are single
#: vectorized passes, so sparsity hurts less than the asymptotics suggest).
HASH_TABLE_DENSITY = 16
#: Hard cap on the boolean table size (entries), whatever the density says.
HASH_SPAN_CAP = 1 << 26
#: Largest composite key domain packed directly into int64.
_PACK_LIMIT = 1 << 62

_STRATEGIES = ("merge", "gallop", "hash")


def dedup_sorted(values: np.ndarray) -> np.ndarray:
    """Distinct values of an already-sorted array, without re-sorting.

    ``np.unique`` unconditionally sorts its input; for the sorted ID lists
    coming out of the indexes a linear neighbour comparison suffices.
    """
    if len(values) < 2:
        return values
    keep = np.empty(len(values), dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def combo_positions(
    lefts: Sequence[np.ndarray],
    sizes_per_leg: Sequence[np.ndarray],
    multiplicity: np.ndarray,
) -> Tuple[List[np.ndarray], int]:
    """Vectorized cross-product expansion over many groups at once.

    For group ``g`` (e.g. one common neighbour or one common key value), leg
    ``l`` contributes a slice of ``sizes_per_leg[l][g]`` entries starting at
    ``lefts[l][g]``; the group produces ``multiplicity[g]`` combinations (the
    product of the per-leg sizes).  Returns, per leg, the int64 positions into
    that leg's entry arrays selecting its member of every combination, groups
    concatenated in order.  Combination order inside a group iterates the last
    leg fastest, matching the historical tuple-at-a-time enumeration.
    """
    total = int(multiplicity.sum())
    if total == 0:
        return [np.empty(0, dtype=np.int64) for _ in lefts], 0
    out_starts = np.cumsum(multiplicity) - multiplicity
    within = np.arange(total, dtype=np.int64) - np.repeat(out_starts, multiplicity)
    # suffix[l][g] = product of later legs' sizes: the stride of leg l's
    # choice inside group g's combination enumeration.
    suffixes: List[np.ndarray] = []
    acc = np.ones(len(multiplicity), dtype=np.int64)
    for sizes in reversed(list(sizes_per_leg)):
        suffixes.append(acc)
        acc = acc * sizes
    suffixes.reverse()
    positions = []
    for left, sizes, suffix in zip(lefts, sizes_per_leg, suffixes):
        choice = (within // np.repeat(suffix, multiplicity)) % np.repeat(
            sizes, multiplicity
        )
        positions.append(np.repeat(left, multiplicity) + choice)
    return positions, total


@dataclass
class BatchIntersection:
    """Result of intersecting all legs of one batch in one kernel call.

    Groups are the surviving (row, key) pairs, ordered by row then key —
    exactly the concatenation order the per-row oracle produces.

    Attributes:
        num_rows: number of batch rows the counts are aligned with.
        group_rows: batch row of each surviving group (non-decreasing).
        group_keys: join-key value of each group, in the original key space.
        multiplicity: combinations produced per group (product of per-leg
            parallel-entry run lengths).
        counts_out: combinations produced per *batch row* (length
            ``num_rows``); feeds ``MatchBatch.repeat`` directly.
        total: total number of combinations (``multiplicity.sum()``).
        positions: per leg, the int64 position of the leg's chosen entry for
            every combination, indexing the leg's original concatenated
            arrays (``None`` when ``need_positions=False``).
    """

    num_rows: int
    group_rows: np.ndarray
    group_keys: np.ndarray
    multiplicity: np.ndarray
    counts_out: np.ndarray
    total: int
    positions: Optional[List[np.ndarray]]

    def combo_rows(self) -> np.ndarray:
        """Batch row of every combination."""
        return np.repeat(self.group_rows, self.multiplicity)

    def expanded_keys(self) -> np.ndarray:
        """Join-key value of every combination (the new neighbour column)."""
        return np.repeat(self.group_keys, self.multiplicity)


def _empty_intersection(
    num_rows: int, num_legs: int, need_positions: bool
) -> BatchIntersection:
    empty = np.empty(0, dtype=np.int64)
    return BatchIntersection(
        num_rows=num_rows,
        group_rows=empty,
        group_keys=empty.copy(),
        multiplicity=empty.copy(),
        counts_out=np.zeros(num_rows, dtype=np.int64),
        total=0,
        positions=(
            [np.empty(0, dtype=np.int64) for _ in range(num_legs)]
            if need_positions
            else None
        ),
    )


def _encode_composites(
    leg_keys: Sequence[np.ndarray],
    leg_counts: Sequence[np.ndarray],
    num_rows: int,
) -> Tuple[List[np.ndarray], int, Callable[[np.ndarray], np.ndarray]]:
    """Composite (row, key) int64 arrays per leg, plus a key decoder.

    Non-negative integer keys whose domain fits are packed as
    ``row * domain + key``; otherwise all legs' keys are rank-encoded through
    one shared ``np.unique`` (order-preserving, exact equality), so float
    join keys and ``int64``-max null markers work unchanged.  Float NaNs are
    re-expanded to one code per occurrence — NaN never equals NaN, matching
    the elementwise-comparison semantics of the per-row oracle.
    """
    packable = all(keys.dtype.kind in "iu" for keys in leg_keys)
    if packable:
        lo = min(int(keys.min()) for keys in leg_keys)
        hi = max(int(keys.max()) for keys in leg_keys)
        # Python ints: hi + 1 may not be representable in int64.
        packable = lo >= 0 and num_rows * (hi + 1) < _PACK_LIMIT
    if packable:
        domain = hi + 1
        composites = [
            np.repeat(
                np.arange(num_rows, dtype=np.int64) * domain, counts
            )
            + keys.astype(np.int64, copy=False)
            for keys, counts in zip(leg_keys, leg_counts)
        ]
        return composites, domain, lambda codes: codes
    all_keys = np.concatenate(leg_keys)
    uniq, inverse = np.unique(all_keys, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    lookup = uniq
    domain = len(uniq)
    if all_keys.dtype.kind == "f":
        # ``np.unique`` collapses NaNs to one value, but NaN never equals
        # NaN: give every NaN occurrence its own code so it joins nothing
        # (each still decodes back to NaN).
        nan_entries = np.nonzero(np.isnan(all_keys))[0]
        if len(nan_entries):
            inverse = inverse.copy()
            inverse[nan_entries] = domain + np.arange(
                len(nan_entries), dtype=np.int64
            )
            lookup = np.concatenate([uniq, all_keys[nan_entries]])
            domain += len(nan_entries)
    composites = []
    offset = 0
    for keys, counts in zip(leg_keys, leg_counts):
        codes = inverse[offset : offset + len(keys)]
        offset += len(keys)
        composites.append(
            np.repeat(np.arange(num_rows, dtype=np.int64) * domain, counts) + codes
        )
    return composites, domain, lambda codes: lookup[codes]


def choose_strategy(num_candidates: int, num_entries: int, span: int) -> str:
    """Pick the membership strategy for one leg (see module docstring)."""
    if num_entries >= GALLOP_RATIO * num_candidates:
        return "gallop"
    if span <= HASH_TABLE_DENSITY * (num_candidates + num_entries) and (
        span <= HASH_SPAN_CAP
    ):
        return "hash"
    return "merge"


def _membership(
    candidates: np.ndarray,
    leg_sorted: np.ndarray,
    strategy: Optional[str],
) -> Tuple[np.ndarray, Optional[Tuple[np.ndarray, np.ndarray]]]:
    """Boolean mask of ``candidates`` present in the sorted ``leg_sorted``.

    The gallop strategy computes the per-candidate ``[left, right)`` run
    bounds as a by-product; they are returned so the final expansion pass can
    reuse them instead of repeating the binary searches (the second element
    is ``None`` for the other strategies).
    """
    num_candidates = len(candidates)
    num_entries = len(leg_sorted)
    base = int(leg_sorted[0])
    span = int(leg_sorted[-1]) - base + 1
    if strategy is None:
        strategy = choose_strategy(num_candidates, num_entries, span)
    elif strategy == "hash" and span > HASH_SPAN_CAP:
        # A forced hash probe must still respect the table-size cap: the
        # table spans the raw composite-key range, which can be astronomically
        # larger than the data.  Degrade to the merge (results are identical).
        strategy = "merge"
    if strategy == "gallop":
        left = np.searchsorted(leg_sorted, candidates, side="left").astype(np.int64)
        right = np.searchsorted(leg_sorted, candidates, side="right").astype(
            np.int64
        )
        return right > left, (left, right)
    if strategy == "hash":
        table = np.zeros(span, dtype=bool)
        table[leg_sorted - base] = True
        offsets = candidates - base
        inside = (offsets >= 0) & (offsets < span)
        mask = np.zeros(num_candidates, dtype=bool)
        mask[inside] = table[offsets[inside]]
        return mask, None
    if strategy == "merge":
        # Both sides are sorted and (after dedup) unique, so the stable sort
        # of their concatenation is a linear two-run merge under timsort and
        # every value appears at most twice; a candidate is a member exactly
        # when its successor in merge order equals it.
        merged = np.concatenate([candidates, dedup_sorted(leg_sorted)])
        order = np.argsort(merged, kind="stable")
        merged_sorted = merged[order]
        has_equal_next = np.zeros(len(merged), dtype=bool)
        np.equal(merged_sorted[1:], merged_sorted[:-1], out=has_equal_next[:-1])
        members = order[has_equal_next & (order < num_candidates)]
        mask = np.zeros(num_candidates, dtype=bool)
        mask[members] = True
        return mask, None
    raise ValueError(f"unknown intersection strategy {strategy!r}")


def intersect_segments(
    leg_keys: Sequence[np.ndarray],
    leg_counts: Sequence[np.ndarray],
    num_rows: int,
    presorted: Sequence[bool],
    need_positions: bool = True,
    strategy: Optional[str] = None,
) -> BatchIntersection:
    """Intersect all legs' concatenated segments for a whole batch at once.

    Args:
        leg_keys: per leg, the join-key value of every entry — the
            concatenation of the batch rows' segments (e.g. the neighbour IDs
            from ``list_many``, or equality-key property values).
        leg_counts: per leg, the per-row segment lengths (each sums to that
            leg's entry count; all legs cover the same ``num_rows`` rows).
        num_rows: number of batch rows.
        presorted: per leg, True when every segment is already internally
            sorted on the join key (index sort order); unsorted legs are
            stably sorted segment-wise inside the kernel, and the returned
            positions are mapped back to the original entry order.
        need_positions: compute per-combination entry positions (required to
            bind edge columns; skip for untracked intersections).
        strategy: force one membership strategy (``"merge"``, ``"gallop"``,
            ``"hash"``) instead of the adaptive chooser — used by tests and
            ablations.  A forced ``"hash"`` still falls back to ``"merge"``
            when the composite span exceeds ``HASH_SPAN_CAP`` (the table
            would not fit in memory); results are identical either way.

    Returns:
        a :class:`BatchIntersection`; equivalent to running the per-row
        sorted intersection over every batch row and concatenating.  A
        single leg degenerates to grouping that leg's entries by (row, key)
        — the single-leg MULTI-EXTEND shape.
    """
    if len(leg_keys) < 1:
        raise ValueError("intersect_segments requires at least one leg")
    if strategy is not None and strategy not in _STRATEGIES:
        raise ValueError(f"unknown intersection strategy {strategy!r}")
    leg_keys = [np.asarray(keys) for keys in leg_keys]
    leg_counts = [np.asarray(counts, dtype=np.int64) for counts in leg_counts]
    if any(len(keys) == 0 for keys in leg_keys):
        return _empty_intersection(num_rows, len(leg_keys), need_positions)

    composites, domain, decode = _encode_composites(leg_keys, leg_counts, num_rows)
    sorted_comps: List[np.ndarray] = []
    orders: List[Optional[np.ndarray]] = []
    for comp, pre in zip(composites, presorted):
        if pre:
            # Segments arrive in row order and are internally key-sorted, so
            # the composite array is already globally sorted.
            sorted_comps.append(comp)
            orders.append(None)
        else:
            order = np.argsort(comp, kind="stable")
            sorted_comps.append(comp[order])
            orders.append(order)

    # Candidate groups start as leg 0's distinct composite keys; the
    # first-occurrence flags double as leg 0's run bounds, and gallop legs
    # return their bounds as a membership by-product, so only merge/hash legs
    # need the final searchsorted pass.  ``bounds`` stays aligned with
    # ``candidates`` by filtering both with every membership mask.
    first_comp = sorted_comps[0]
    flags = np.empty(len(first_comp), dtype=bool)
    flags[0] = True
    np.not_equal(first_comp[1:], first_comp[:-1], out=flags[1:])
    candidates = first_comp[flags]
    first_left = np.nonzero(flags)[0].astype(np.int64)
    first_right = np.empty_like(first_left)
    first_right[:-1] = first_left[1:]
    first_right[-1] = len(first_comp)
    bounds: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [
        (first_left, first_right)
    ] + [None] * (len(sorted_comps) - 1)

    for index, comp in enumerate(sorted_comps[1:], start=1):
        if len(candidates) == 0:
            break
        member, leg_bounds = _membership(candidates, comp, strategy)
        bounds[index] = leg_bounds
        candidates = candidates[member]
        for position, known in enumerate(bounds):
            if known is not None:
                bounds[position] = (known[0][member], known[1][member])
    if len(candidates) == 0:
        return _empty_intersection(num_rows, len(leg_keys), need_positions)

    lefts: List[np.ndarray] = []
    sizes_per_leg: List[np.ndarray] = []
    multiplicity = np.ones(len(candidates), dtype=np.int64)
    for comp, known in zip(sorted_comps, bounds):
        if known is None:
            left = np.searchsorted(comp, candidates, side="left").astype(np.int64)
            right = np.searchsorted(comp, candidates, side="right").astype(np.int64)
        else:
            left, right = known
        lefts.append(left)
        sizes_per_leg.append(right - left)
        multiplicity *= sizes_per_leg[-1]

    group_rows = candidates // domain
    group_keys = decode(candidates - group_rows * domain)
    total = int(multiplicity.sum())

    cumulative = np.empty(len(multiplicity) + 1, dtype=np.int64)
    cumulative[0] = 0
    np.cumsum(multiplicity, out=cumulative[1:])
    boundaries = np.searchsorted(
        group_rows, np.arange(num_rows + 1, dtype=np.int64), side="left"
    )
    counts_out = cumulative[boundaries[1:]] - cumulative[boundaries[:-1]]

    positions: Optional[List[np.ndarray]] = None
    if need_positions:
        sorted_positions, _ = combo_positions(lefts, sizes_per_leg, multiplicity)
        positions = [
            pos if order is None else order[pos]
            for pos, order in zip(sorted_positions, orders)
        ]

    return BatchIntersection(
        num_rows=num_rows,
        group_rows=group_rows,
        group_keys=group_keys,
        multiplicity=multiplicity,
        counts_out=counts_out,
        total=total,
        positions=positions,
    )
