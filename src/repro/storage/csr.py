"""Nested CSR: the constant-depth container behind every A+ index.

A nested CSR partitions a set of indexed entries (edges) first by a *bound*
element ID (a vertex ID for primary and vertex-partitioned indexes, an edge ID
for edge-partitioned indexes) and then by zero or more nested categorical
partitioning levels.  The most granular groups are contiguous ranges over flat
payload arrays, sorted by the configured sort keys.  Every lookup is a
constant number of array accesses — one offset computation per level — which
is the property that distinguishes adjacency-list indexes from tree indexes
(Section II of the paper).

The class is payload-agnostic: it computes the permutation that sorts the
entries and the group-boundary offsets; callers apply the permutation to their
own payload arrays (edge IDs, neighbour IDs, or offsets into a primary list).

Two access granularities are exposed:

* **tuple-at-a-time** — :meth:`group_range` returns the ``[start, end)`` range
  of one (partial) key prefix, a constant number of array accesses;
* **batch-at-a-time** — :meth:`gather` computes the ranges of a whole array of
  bound IDs (sharing one partition-code prefix) with pure array indexing and
  materializes a single flat gather-index covering every addressed list, so
  the operator stack can fetch thousands of adjacency lists without entering
  the Python interpreter per list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexLookupError
from ..graph.types import CSR_OFFSET_BYTES, OFFSET_DTYPE

#: Largest packed lexicographic-key domain folded into a single int64.
_PACK_LIMIT = 1 << 62


def fold_group_ids(
    bound_ids: np.ndarray,
    level_codes: Sequence[np.ndarray],
    level_domains: Sequence[int],
) -> np.ndarray:
    """Fold bound IDs and nested partition codes into flat deepest-level
    group IDs, exactly as :class:`NestedCSR` numbers its most granular
    groups (``((bound * d1 + c1) * d2 + c2) ...``)."""
    group_ids = np.asarray(bound_ids, dtype=np.int64).copy()
    for codes, domain in zip(level_codes, level_domains):
        group_ids *= int(domain)
        group_ids += np.asarray(codes, dtype=np.int64)
    return group_ids


def _rank_encode(base: np.ndarray, delta: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    """Order-preserving integer ranks of two arrays over their joint values."""
    uniq = np.unique(np.concatenate([base, delta]))
    return (
        np.searchsorted(uniq, base).astype(np.int64),
        np.searchsorted(uniq, delta).astype(np.int64),
        len(uniq),
    )


def _packed_composites(
    base_keys: Sequence[np.ndarray], delta_keys: Sequence[np.ndarray]
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Fold aligned lexicographic key columns into one int64 per entry.

    Integer columns are shifted to a zero base; float columns and integer
    columns whose raw range is excessive (e.g. null markers near the int64
    extremes) are rank-encoded over the joint values, which preserves order
    and exact equality.  Returns ``None`` when even the rank-encoded domains
    cannot be packed into an int64 without overflow.
    """
    levels: List[Tuple[np.ndarray, np.ndarray, int]] = []
    for base, delta in zip(base_keys, delta_keys):
        if base.dtype.kind in "iu" and delta.dtype.kind in "iu":
            lo = min(int(base.min()), int(delta.min()))
            hi = max(int(base.max()), int(delta.max()))
            domain = hi - lo + 1
            if domain <= _PACK_LIMIT:
                levels.append(
                    (
                        base.astype(np.int64) - lo,
                        delta.astype(np.int64) - lo,
                        domain,
                    )
                )
                continue
        levels.append(_rank_encode(base, delta))
    total = 1
    for _, _, domain in levels:
        total *= domain  # Python ints: no silent overflow.
    if total > _PACK_LIMIT:
        return None
    base_comp = np.zeros(len(base_keys[0]), dtype=np.int64)
    delta_comp = np.zeros(len(delta_keys[0]), dtype=np.int64)
    for base, delta, domain in levels:
        base_comp *= domain
        base_comp += base
        delta_comp *= domain
        delta_comp += delta
    return base_comp, delta_comp


def merge_sorted_runs(
    base_keys: Sequence[np.ndarray],
    delta_keys: Sequence[np.ndarray],
    base_first_on_ties: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two individually lex-sorted runs into one globally sorted order.

    This is the vectorized splice behind incremental index maintenance: the
    surviving entries of an index (already in index order) form the base run
    and the sorted pending insertions form the delta run.  Keys are aligned
    column sequences, **major key first** (typically the flat group ID
    followed by the sort-key values).

    The fast path folds the key columns into one int64 composite per entry
    (see :func:`_packed_composites`) and finds every delta entry's insertion
    point with a single ``searchsorted`` into the base run; output positions
    follow from pure index arithmetic.  When the composite domain cannot fit
    in an int64 the merge falls back to one stable ``np.lexsort`` over the
    concatenated columns — still loop-free, with identical results.

    Args:
        base_keys / delta_keys: aligned key columns, major first; each run
            must already be lex-sorted on its own keys (ties in input order).
        base_first_on_ties: when True, base entries precede delta entries
            that compare equal on every key (the stable-sort convention for
            appended entries with larger IDs).

    Returns:
        ``(base_positions, delta_positions)``: the output position of every
        base / delta entry in the merged order.  Both runs keep their
        internal relative order.
    """
    if len(base_keys) != len(delta_keys) or not base_keys:
        raise IndexLookupError("merge_sorted_runs requires aligned, non-empty key lists")
    base_keys = [np.asarray(keys) for keys in base_keys]
    delta_keys = [np.asarray(keys) for keys in delta_keys]
    num_base = len(base_keys[0])
    num_delta = len(delta_keys[0])
    if num_delta == 0:
        return np.arange(num_base, dtype=np.int64), np.empty(0, dtype=np.int64)
    if num_base == 0:
        return np.empty(0, dtype=np.int64), np.arange(num_delta, dtype=np.int64)

    packed = _packed_composites(base_keys, delta_keys)
    if packed is not None:
        base_comp, delta_comp = packed
        side = "right" if base_first_on_ties else "left"
        insert_at = np.searchsorted(base_comp, delta_comp, side=side).astype(np.int64)
        delta_positions = insert_at + np.arange(num_delta, dtype=np.int64)
        # A delta entry precedes base entry i exactly when its insertion
        # point is <= i (both tie conventions reduce to the same test).
        base_positions = np.arange(num_base, dtype=np.int64) + np.searchsorted(
            insert_at, np.arange(num_base, dtype=np.int64), side="right"
        )
        return base_positions, delta_positions

    # Fallback: one stable lexsort of the concatenated columns with a
    # run-indicator as the most minor key to realize the tie convention.
    indicator = np.concatenate(
        [
            np.zeros(num_base, dtype=np.int8),
            np.ones(num_delta, dtype=np.int8),
        ]
    )
    if not base_first_on_ties:
        indicator = 1 - indicator
    lexsort_keys: List[np.ndarray] = [indicator]
    for base, delta in zip(reversed(base_keys), reversed(delta_keys)):
        lexsort_keys.append(np.concatenate([base, delta]))
    order = np.lexsort(tuple(lexsort_keys))
    inverse = np.empty(num_base + num_delta, dtype=np.int64)
    inverse[order] = np.arange(num_base + num_delta, dtype=np.int64)
    return inverse[:num_base], inverse[num_base:]


def segment_mask_counts(counts: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-segment True counts of a mask over concatenated segments.

    ``counts`` partitions ``mask`` into consecutive segments (as produced by
    :meth:`NestedCSR.gather`); the result is the number of surviving entries
    per segment, so that ``array[mask]`` can be re-segmented without a Python
    loop.
    """
    kept = np.empty(len(mask) + 1, dtype=np.int64)
    kept[0] = 0
    np.cumsum(mask, out=kept[1:])
    ends = np.cumsum(counts)
    return kept[ends] - kept[ends - counts]


class NestedCSR:
    """Partition/sort skeleton of one A+ index.

    Args:
        num_bound: size of the bound-ID domain (number of vertices or edges).
        bound_ids: int array (length = number of indexed entries) giving the
            bound element of each entry.
        level_codes: one int array per nested partitioning level giving the
            *effective* partition code of each entry (nulls already mapped to
            the trailing partition).
        level_domains: effective domain size of each level (including the
            null partition).
        sort_values: sort-key value arrays, major key first; entries inside
            the most granular group are ordered by these values (ties broken
            by input order, i.e. the sort is stable).
    """

    def __init__(
        self,
        num_bound: int,
        bound_ids: np.ndarray,
        level_codes: Sequence[np.ndarray],
        level_domains: Sequence[int],
        sort_values: Sequence[np.ndarray],
    ) -> None:
        if len(level_codes) != len(level_domains):
            raise IndexLookupError("level_codes and level_domains length mismatch")
        self.num_bound = int(num_bound)
        self.level_domains = [int(d) for d in level_domains]
        self.num_levels = len(self.level_domains)
        num_entries = len(bound_ids)
        self.num_entries = num_entries

        bound_ids = np.asarray(bound_ids, dtype=np.int64)
        codes = [np.asarray(c, dtype=np.int64) for c in level_codes]

        # Total number of most-granular groups, and the number of most
        # granular groups under each bound ID (cached: the product is needed
        # by every vectorized lookup).
        per_bound = 1
        for domain in self.level_domains:
            per_bound *= domain
        self._per_bound = per_bound
        total_groups = self.num_bound * per_bound
        self._total_groups = total_groups

        # Flattened group ID of each entry at the deepest level.
        group_ids = fold_group_ids(bound_ids, codes, self.level_domains)

        # Sort order: bound ID, then partition codes (already folded into the
        # group ID), then the sort keys (major first).  ``np.lexsort`` treats
        # its *last* key as the primary key, so keys are passed minor-first.
        lexsort_keys: List[np.ndarray] = []
        for values in reversed(list(sort_values)):
            lexsort_keys.append(np.asarray(values))
        lexsort_keys.append(group_ids)
        if num_entries:
            self.order = np.lexsort(tuple(lexsort_keys)).astype(np.int64)
        else:
            self.order = np.empty(0, dtype=np.int64)

        counts = np.bincount(group_ids, minlength=total_groups)
        # Cumsum directly into a preallocated offsets array; building it via
        # ``concatenate([[0], cumsum]).astype(...)`` would allocate the array
        # twice.
        self.offsets = np.empty(total_groups + 1, dtype=OFFSET_DTYPE)
        self.offsets[0] = 0
        np.cumsum(counts, out=self.offsets[1:])

    @classmethod
    def from_sorted_groups(
        cls,
        num_bound: int,
        level_domains: Sequence[int],
        group_ids: np.ndarray,
    ) -> "NestedCSR":
        """Build a nested CSR whose entries are already in index order.

        The incremental-maintenance path merges an index's surviving entries
        with its sorted delta outside the CSR (see
        :func:`merge_sorted_runs`); this constructor then installs the
        offsets over the pre-sorted deepest-level ``group_ids`` without
        re-running the O(n log n) lexsort.  ``order`` is the identity
        permutation because the caller's payload arrays are already sorted.
        """
        self = object.__new__(cls)
        self.num_bound = int(num_bound)
        self.level_domains = [int(d) for d in level_domains]
        self.num_levels = len(self.level_domains)
        group_ids = np.asarray(group_ids, dtype=np.int64)
        num_entries = len(group_ids)
        self.num_entries = num_entries
        per_bound = 1
        for domain in self.level_domains:
            per_bound *= domain
        self._per_bound = per_bound
        total_groups = self.num_bound * per_bound
        self._total_groups = total_groups
        if num_entries and np.any(group_ids[1:] < group_ids[:-1]):
            raise IndexLookupError("from_sorted_groups requires sorted group IDs")
        self.order = np.arange(num_entries, dtype=np.int64)
        counts = np.bincount(group_ids, minlength=total_groups)
        self.offsets = np.empty(total_groups + 1, dtype=OFFSET_DTYPE)
        self.offsets[0] = 0
        np.cumsum(counts, out=self.offsets[1:])
        return self

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def group_range(
        self, bound_id: int, codes: Sequence[int] = ()
    ) -> Tuple[int, int]:
        """Return the ``[start, end)`` entry range for a (partial) key prefix.

        Args:
            bound_id: the bound vertex or edge ID.
            codes: effective partition codes for a *prefix* of the nested
                levels.  Fewer codes than levels selects the coarser list that
                unions all deeper partitions (e.g. "all edges of v with label
                Wire" when the index also partitions by currency).
        """
        if bound_id < 0 or bound_id >= self.num_bound:
            raise IndexLookupError(
                f"bound id {bound_id} out of range [0, {self.num_bound})"
            )
        if len(codes) > self.num_levels:
            raise IndexLookupError(
                f"{len(codes)} partition codes supplied but index has "
                f"{self.num_levels} levels"
            )
        group = int(bound_id)
        for position, code in enumerate(codes):
            domain = self.level_domains[position]
            code = int(code)
            if code < 0 or code >= domain:
                raise IndexLookupError(
                    f"partition code {code} out of range [0, {domain}) at level "
                    f"{position + 1}"
                )
            group = group * domain + code
        remaining = 1
        for domain in self.level_domains[len(codes):]:
            remaining *= domain
        start_group = group * remaining
        end_group = (group + 1) * remaining
        return int(self.offsets[start_group]), int(self.offsets[end_group])

    def bound_range(self, bound_id: int) -> Tuple[int, int]:
        """Entry range of all entries bound to ``bound_id`` (level-0 list)."""
        return self.group_range(bound_id, ())

    def _prefix_groups(
        self, bound_ids: np.ndarray, codes: Sequence[int] = ()
    ) -> Tuple[np.ndarray, int]:
        """Vectorized form of the group computation in :meth:`group_range`.

        Returns the (partial) group ID of every bound ID under the shared
        partition-code prefix, and the number of most-granular groups each
        partial group spans.
        """
        bound_ids = np.asarray(bound_ids, dtype=np.int64)
        if len(codes) > self.num_levels:
            raise IndexLookupError(
                f"{len(codes)} partition codes supplied but index has "
                f"{self.num_levels} levels"
            )
        if len(bound_ids) and (
            int(bound_ids.min()) < 0 or int(bound_ids.max()) >= self.num_bound
        ):
            raise IndexLookupError(
                f"bound ids out of range [0, {self.num_bound})"
            )
        group = bound_ids
        for position, code in enumerate(codes):
            domain = self.level_domains[position]
            code = int(code)
            if code < 0 or code >= domain:
                raise IndexLookupError(
                    f"partition code {code} out of range [0, {domain}) at level "
                    f"{position + 1}"
                )
            group = group * domain + code
        remaining = 1
        for domain in self.level_domains[len(codes):]:
            remaining *= domain
        return group, remaining

    def prefix_ranges(
        self, bound_ids: np.ndarray, codes: Sequence[int] = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ``[start, end)`` positions for many bound IDs.

        Generalizes :meth:`bound_starts`/:meth:`bound_ends` to an arbitrary
        partition-code prefix shared by all rows; the batched counterpart of
        :meth:`group_range`.
        """
        group, remaining = self._prefix_groups(bound_ids, codes)
        start_groups = group * remaining
        return (
            self.offsets[start_groups].astype(np.int64),
            self.offsets[start_groups + remaining].astype(np.int64),
        )

    def prefix_starts(
        self, bound_ids: np.ndarray, codes: Sequence[int] = ()
    ) -> np.ndarray:
        """Vectorized start positions for many bound IDs under a code prefix."""
        return self.prefix_ranges(bound_ids, codes)[0]

    def prefix_ends(
        self, bound_ids: np.ndarray, codes: Sequence[int] = ()
    ) -> np.ndarray:
        """Vectorized end positions for many bound IDs under a code prefix."""
        return self.prefix_ranges(bound_ids, codes)[1]

    def bound_starts(self, bound_ids: np.ndarray) -> np.ndarray:
        """Vectorized start positions of the level-0 lists of many bound IDs."""
        return self.offsets[np.asarray(bound_ids, dtype=np.int64) * self._per_bound]

    def bound_ends(self, bound_ids: np.ndarray) -> np.ndarray:
        """Vectorized end positions of the level-0 lists of many bound IDs."""
        return self.offsets[
            (np.asarray(bound_ids, dtype=np.int64) + 1) * self._per_bound
        ]

    def gather(
        self, bound_ids: np.ndarray, codes: Sequence[int] = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`group_range`: one flat gather-index for many lists.

        Computes the ``[start, end)`` range of every bound ID's list under the
        shared partition-code prefix with pure array indexing, then expands the
        ranges into a single flat array of entry positions using
        ``np.repeat``-style segment arithmetic — no Python loop over rows.

        Args:
            bound_ids: int array of bound vertex/edge IDs (may repeat).
            codes: effective partition codes for a prefix of the nested
                levels, shared by all rows.

        Returns:
            ``(positions, counts)``: ``positions`` is the int64 concatenation
            of ``arange(start_i, end_i)`` over the rows, suitable for fancy
            indexing into the payload arrays; ``counts`` is the int64 per-row
            list length, so ``positions`` splits back into rows at
            ``cumsum(counts)``.
        """
        starts, ends = self.prefix_ranges(bound_ids, codes)
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        # positions[k] = starts[row(k)] + (k - out_start[row(k)]) where
        # out_start is the output-side prefix sum of the counts.
        out_starts = np.cumsum(counts) - counts
        return (
            np.repeat(starts - out_starts, counts) + np.arange(total, dtype=np.int64),
            counts,
        )

    def list_length(self, bound_id: int, codes: Sequence[int] = ()) -> int:
        start, end = self.group_range(bound_id, codes)
        return end - start

    def nonempty_bounds(self) -> np.ndarray:
        """Return the bound IDs that have at least one entry."""
        start_indices = np.arange(self.num_bound, dtype=np.int64) * self._per_bound
        starts = self.offsets[start_indices]
        ends = self.offsets[start_indices + self._per_bound]
        return np.nonzero(ends > starts)[0]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def level_group_counts(self) -> List[int]:
        """Number of groups at each level (level 0 = bound IDs)."""
        counts = [self.num_bound]
        for domain in self.level_domains:
            counts.append(counts[-1] * domain)
        return counts

    def nbytes_levels(self) -> int:
        """Bytes charged for the partitioning levels of this CSR.

        Every level stores one CSR offset (4 bytes, Section IV-B) per group at
        that level; this mirrors the paper's accounting where adding a
        partitioning level adds a new offset layer.
        """
        return sum(count * CSR_OFFSET_BYTES for count in self.level_group_counts())

    def describe(self) -> str:
        return (
            f"NestedCSR(bound={self.num_bound}, entries={self.num_entries}, "
            f"levels={self.num_levels}, domains={self.level_domains})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
