"""ID lists: the payload of primary A+ indexes.

The lowest level of a primary A+ index stores, for every indexed edge, the
globally identifiable pair ``(edge ID, neighbour vertex ID)``.  Neighbour IDs
are charged 4 bytes and edge IDs 8 bytes, following Section IV-B of the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.types import (
    EDGE_ID_BYTES,
    EDGE_ID_DTYPE,
    VERTEX_ID_BYTES,
    VERTEX_ID_DTYPE,
)


class IdLists:
    """Flat, sorted (edge ID, neighbour ID) arrays of a primary index.

    The arrays are stored in index position order, i.e. already permuted by
    the owning :class:`~repro.storage.csr.NestedCSR`'s sort order, so a CSR
    group range ``[start, end)`` directly slices both arrays.
    """

    def __init__(self, edge_ids: np.ndarray, nbr_ids: np.ndarray) -> None:
        if len(edge_ids) != len(nbr_ids):
            raise ValueError("edge_ids and nbr_ids must have equal length")
        self.edge_ids = np.asarray(edge_ids, dtype=EDGE_ID_DTYPE)
        self.nbr_ids = np.asarray(nbr_ids, dtype=VERTEX_ID_DTYPE)

    def __len__(self) -> int:
        return len(self.edge_ids)

    def slice(self, start: int, end: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the ``(edge_ids, nbr_ids)`` views for a group range."""
        return self.edge_ids[start:end], self.nbr_ids[start:end]

    def nbytes(self) -> int:
        """Bytes charged for the ID lists (8 B per edge ID + 4 B per nbr ID)."""
        return len(self.edge_ids) * EDGE_ID_BYTES + len(self.nbr_ids) * VERTEX_ID_BYTES
