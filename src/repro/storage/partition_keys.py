"""Partitioning keys for nested CSR levels.

A+ indexes "can contain nested secondary partitioning criteria on any
categorical property of adjacent edges as well as neighbour vertices, such as
edge or neighbour vertex labels, or the currency property on the edges"
(Section III-A1).  A :class:`PartitionKey` names one such criterion and knows
how to extract the integer partition code of each indexed edge.

Edges whose key value is null are placed in a dedicated trailing partition
("Edges with null property values form a special partition").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import IndexConfigError
from ..graph.graph import PropertyGraph
from ..graph.types import NULL_CATEGORY, PropertyType


@dataclass(frozen=True)
class PartitionKey:
    """One nested partitioning criterion of an A+ index.

    Attributes:
        target: ``"edge"`` (a property of the adjacent edge ``eadj``) or
            ``"nbr"`` (a property of the neighbour vertex ``vnbr``).
        prop: property name, or ``"label"`` for the label of the target.
    """

    target: str  # "edge" | "nbr"
    prop: str

    def __post_init__(self) -> None:
        if self.target not in ("edge", "nbr"):
            raise IndexConfigError(
                f"partition key target must be 'edge' or 'nbr', got {self.target!r}"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def edge_label(cls) -> "PartitionKey":
        """Partition by the label of the adjacent edge (``eadj.label``)."""
        return cls("edge", "label")

    @classmethod
    def nbr_label(cls) -> "PartitionKey":
        """Partition by the label of the neighbour vertex (``vnbr.label``)."""
        return cls("nbr", "label")

    @classmethod
    def edge_property(cls, name: str) -> "PartitionKey":
        """Partition by a categorical property of the adjacent edge."""
        return cls("edge", name)

    @classmethod
    def nbr_property(cls, name: str) -> "PartitionKey":
        """Partition by a categorical property of the neighbour vertex."""
        return cls("nbr", name)

    @classmethod
    def parse(cls, text: str) -> "PartitionKey":
        """Parse the DDL form ``eadj.label`` / ``vnbr.city`` etc."""
        text = text.strip()
        if "." not in text:
            raise IndexConfigError(f"cannot parse partition key {text!r}")
        prefix, prop = text.split(".", 1)
        prefix = prefix.strip().lower()
        prop = prop.strip()
        if prefix in ("eadj", "e", "edge"):
            return cls("edge", prop)
        if prefix in ("vnbr", "v", "nbr", "vertex"):
            return cls("nbr", prop)
        raise IndexConfigError(
            f"partition key prefix must be 'eadj' or 'vnbr', got {prefix!r}"
        )

    # ------------------------------------------------------------------
    # domain and code extraction
    # ------------------------------------------------------------------
    def domain_size(self, graph: PropertyGraph) -> int:
        """Number of non-null partition codes this key can take."""
        if self.prop == "label":
            if self.target == "edge":
                return max(graph.schema.num_edge_labels, 1)
            return max(graph.schema.num_vertex_labels, 1)
        if self.target == "edge":
            prop = graph.schema.edge_property(self.prop)
        else:
            prop = graph.schema.vertex_property(self.prop)
        if prop.ptype is not PropertyType.CATEGORICAL:
            raise IndexConfigError(
                f"partitioning requires a categorical property; "
                f"{self.target}.{self.prop} has type {prop.ptype.value}"
            )
        return max(prop.num_categories, 1)

    def codes(
        self,
        graph: PropertyGraph,
        edge_ids: np.ndarray,
        nbr_ids: np.ndarray,
    ) -> np.ndarray:
        """Extract the raw (possibly null) partition codes of the given edges.

        Args:
            graph: the property graph.
            edge_ids: IDs of the adjacent edges being indexed.
            nbr_ids: IDs of the corresponding neighbour vertices.

        Returns:
            int array of codes; nulls appear as ``NULL_CATEGORY``.
        """
        if self.prop == "label":
            if self.target == "edge":
                return graph.edge_labels[edge_ids].astype(np.int64)
            return graph.vertex_labels[nbr_ids].astype(np.int64)
        if self.target == "edge":
            column = graph.edge_props.column(self.prop)
            return np.asarray(column[edge_ids], dtype=np.int64)
        column = graph.vertex_props.column(self.prop)
        return np.asarray(column[nbr_ids], dtype=np.int64)

    def effective_codes(
        self,
        graph: PropertyGraph,
        edge_ids: np.ndarray,
        nbr_ids: np.ndarray,
    ) -> np.ndarray:
        """Like :meth:`codes` but with nulls mapped to the trailing partition."""
        codes = self.codes(graph, edge_ids, nbr_ids)
        domain = self.domain_size(graph)
        codes = codes.copy()
        codes[codes == NULL_CATEGORY] = domain
        return codes

    def effective_domain_size(self, graph: PropertyGraph) -> int:
        """Domain size including the trailing null partition."""
        return self.domain_size(graph) + 1

    def code_for_value(self, graph: PropertyGraph, value) -> int:
        """Map a query-level value (label or category name / code) to a code.

        ``None`` maps to the null partition.
        """
        domain = self.domain_size(graph)
        if value is None:
            return domain
        if self.prop == "label":
            if isinstance(value, str):
                if self.target == "edge":
                    return graph.schema.edge_label_code(value)
                return graph.schema.vertex_label_code(value)
            return int(value)
        if self.target == "edge":
            prop = graph.schema.edge_property(self.prop)
        else:
            prop = graph.schema.vertex_property(self.prop)
        if isinstance(value, str):
            return prop.code_of(value)
        return int(value)

    def describe(self) -> str:
        prefix = "eadj" if self.target == "edge" else "vnbr"
        return f"{prefix}.{self.prop}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
