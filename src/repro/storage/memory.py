"""Memory accounting for A+ indexes.

The paper reports memory as the bytes consumed by the adjacency-list indexes:
ID lists (8 B per edge ID + 4 B per neighbour ID), CSR partitioning-level
offsets (4 B each), and offset lists (1-4 B per indexed edge depending on the
per-page width).  :class:`MemoryBreakdown` collects these components per index
so benchmarks can report both absolute sizes and the overhead ratios of
Tables II-IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class MemoryBreakdown:
    """Byte counts of one index, split by storage component."""

    name: str
    id_list_bytes: int = 0
    offset_list_bytes: int = 0
    partition_level_bytes: int = 0
    other_bytes: int = 0

    @property
    def total(self) -> int:
        return (
            self.id_list_bytes
            + self.offset_list_bytes
            + self.partition_level_bytes
            + self.other_bytes
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "id_lists": self.id_list_bytes,
            "offset_lists": self.offset_list_bytes,
            "partition_levels": self.partition_level_bytes,
            "other": self.other_bytes,
            "total": self.total,
        }


@dataclass
class MemoryReport:
    """Aggregate of several index breakdowns (one database configuration)."""

    breakdowns: List[MemoryBreakdown] = field(default_factory=list)

    def add(self, breakdown: MemoryBreakdown) -> None:
        self.breakdowns.append(breakdown)

    @property
    def total(self) -> int:
        return sum(b.total for b in self.breakdowns)

    def total_megabytes(self) -> float:
        return self.total / (1024 * 1024)

    def ratio_to(self, baseline: "MemoryReport") -> float:
        """Memory overhead ratio relative to a baseline configuration."""
        if baseline.total == 0:
            return float("inf") if self.total else 1.0
        return self.total / baseline.total

    def format_table(self) -> str:
        """Return a human-readable table of the breakdowns."""
        header = f"{'index':<32} {'ID lists':>12} {'offsets':>12} {'levels':>12} {'total':>12}"
        lines = [header, "-" * len(header)]
        for b in self.breakdowns:
            lines.append(
                f"{b.name:<32} {b.id_list_bytes:>12,} {b.offset_list_bytes:>12,} "
                f"{b.partition_level_bytes:>12,} {b.total:>12,}"
            )
        lines.append("-" * len(header))
        lines.append(f"{'TOTAL':<32} {'':>12} {'':>12} {'':>12} {self.total:>12,}")
        return "\n".join(lines)


def format_bytes(num_bytes: int) -> str:
    """Format a byte count as a human-readable string (KiB/MiB)."""
    if num_bytes < 1024:
        return f"{num_bytes} B"
    if num_bytes < 1024 * 1024:
        return f"{num_bytes / 1024:.1f} KiB"
    return f"{num_bytes / (1024 * 1024):.2f} MiB"
