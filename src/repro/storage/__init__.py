"""Physical storage layer: nested CSR, ID lists, offset lists, accounting."""

from .csr import NestedCSR
from .id_lists import IdLists
from .intersect import (
    BatchIntersection,
    combo_positions,
    dedup_sorted,
    intersect_segments,
)
from .memory import MemoryBreakdown, MemoryReport, format_bytes
from .offset_lists import OffsetLists, bytes_needed
from .partition_keys import PartitionKey
from .search import (
    equal_range,
    group_by_sorted_key,
    intersect_sorted,
    prefix_below,
    range_between,
    suffix_above,
)
from .sort_keys import SortKey, sort_values_matrix

__all__ = [
    "BatchIntersection",
    "IdLists",
    "MemoryBreakdown",
    "MemoryReport",
    "NestedCSR",
    "OffsetLists",
    "PartitionKey",
    "SortKey",
    "bytes_needed",
    "combo_positions",
    "dedup_sorted",
    "equal_range",
    "format_bytes",
    "group_by_sorted_key",
    "intersect_segments",
    "intersect_sorted",
    "prefix_below",
    "range_between",
    "sort_values_matrix",
    "suffix_above",
]
