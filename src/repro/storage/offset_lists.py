"""Offset lists: the space-efficient payload of secondary A+ indexes.

A list bound to vertex ``v`` in a secondary vertex-partitioned index is a
subset of ``v``'s ID list in the primary index; a list bound to edge
``e = (vs, vd)`` in an edge-partitioned index is a subset of ``vs``'s or
``vd``'s primary list.  Because the ID lists of each vertex are contiguous in
the primary index's CSR, an indexed edge can be identified by a single small
*offset* into the appropriate primary list instead of by an 8-byte edge ID
plus a 4-byte neighbour ID (Section III-B3).

Physically (Section IV-B), offsets are fixed-length and grouped into pages of
64 bound elements; the width of every offset in a page is the number of bytes
needed by the largest offset occurring in that page (i.e. the logarithm of the
length of the longest primary list among those 64 elements, rounded up to the
next byte).  This module keeps the offsets in a flat int32 array for fast
access and separately computes the byte-accurate memory charge implied by the
paged fixed-width layout.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.types import PAGE_SIZE


def bytes_needed_many(max_offsets: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bytes_needed` over an array of per-page maxima.

    The single definition of the paged offset width: the scalar helper and
    the paged accounting both derive from this threshold ladder.
    """
    maxima = np.asarray(max_offsets, dtype=np.int64)
    widths = np.ones(len(maxima), dtype=np.int64)
    limit = 1 << 8
    while True:
        above = maxima >= limit
        if not above.any():
            break
        widths[above] += 1
        limit <<= 8
    return widths


def bytes_needed(max_offset: int) -> int:
    """Number of bytes needed to store offsets up to ``max_offset``.

    Always at least 1; 255 fits in one byte, 65535 in two, and so on.
    """
    return int(bytes_needed_many(np.asarray([max_offset]))[0])


class OffsetLists:
    """Flat offset array plus paged byte-width accounting.

    Args:
        offsets: int array of list-relative offsets, one per indexed edge, in
            index position order (already permuted by the owning CSR).
        bound_of_entry: int array of the same length giving the bound element
            ID of each entry; used only to group entries into pages of
            ``PAGE_SIZE`` bound elements for the byte-width computation.
    """

    def __init__(self, offsets: np.ndarray, bound_of_entry: np.ndarray) -> None:
        if len(offsets) != len(bound_of_entry):
            raise ValueError("offsets and bound_of_entry must have equal length")
        self.offsets = np.asarray(offsets, dtype=np.int32)
        self._bound_of_entry = np.asarray(bound_of_entry, dtype=np.int64)
        self._nbytes = self._compute_paged_bytes()

    def _compute_paged_bytes(self) -> int:
        """Memory charge of the paged fixed-width offset layout.

        Entries arrive grouped by bound element (CSR order), so page IDs are
        non-decreasing: per-page maxima reduce over contiguous runs
        (``np.maximum.reduceat``) and the byte width per page is a small
        threshold ladder — no Python loop over pages.
        """
        if len(self.offsets) == 0:
            return 0
        pages = self._bound_of_entry // PAGE_SIZE
        changes = np.nonzero(pages[1:] != pages[:-1])[0] + 1
        starts = np.concatenate([[0], changes])
        sizes = np.diff(np.concatenate([starts, [len(self.offsets)]]))
        maxima = np.maximum.reduceat(self.offsets.astype(np.int64), starts)
        return int((bytes_needed_many(maxima) * sizes).sum())

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def bound_of_entry(self) -> np.ndarray:
        """Bound element ID of every entry, in index position order.

        Exposed for the incremental maintenance merge, which resolves the
        surviving entries' primary positions per bound element.
        """
        return self._bound_of_entry

    def slice(self, start: int, end: int) -> np.ndarray:
        """Return the offsets for a CSR group range."""
        return self.offsets[start:end]

    def resolve(
        self,
        start: int,
        end: int,
        primary_list_start: int,
        primary_edge_ids: np.ndarray,
        primary_nbr_ids: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dereference a group range into (edge IDs, neighbour IDs).

        Args:
            start, end: CSR group range in this offset-list index.
            primary_list_start: start position of the bound element's ID list
                in the primary index (offsets are relative to it).
            primary_edge_ids / primary_nbr_ids: the primary index's ID lists.

        Returns:
            ``(edge_ids, nbr_ids)`` arrays for the indexed edges, in this
            index's sort order.
        """
        positions = primary_list_start + self.offsets[start:end].astype(np.int64)
        return primary_edge_ids[positions], primary_nbr_ids[positions]

    def resolve_many(
        self,
        positions: np.ndarray,
        primary_list_starts: np.ndarray,
        counts: np.ndarray,
        primary_edge_ids: np.ndarray,
        primary_nbr_ids: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`resolve`: dereference many group ranges at once.

        Args:
            positions: flat gather-index into this offset-list index, as
                produced by :meth:`~repro.storage.csr.NestedCSR.gather`.
            primary_list_starts: per-row start position of each bound
                element's ID list in the primary index.
            counts: per-row entry counts aligning ``positions`` with
                ``primary_list_starts`` (``len(positions) == counts.sum()``).
            primary_edge_ids / primary_nbr_ids: the primary index's ID lists.

        Returns:
            ``(edge_ids, nbr_ids)`` for all rows concatenated, equal to
            concatenating :meth:`resolve` over the rows.
        """
        flat_starts = np.repeat(
            np.asarray(primary_list_starts, dtype=np.int64), counts
        )
        flat = flat_starts + self.offsets[positions].astype(np.int64)
        return primary_edge_ids[flat], primary_nbr_ids[flat]

    def nbytes(self) -> int:
        """Bytes charged for the offsets under the paged fixed-width layout."""
        return self._nbytes
