"""Binary-search helpers over sorted adjacency lists.

When an ID list (or offset list) is sorted on a property, the system can
locate the sub-list satisfying an equality or range predicate in time
logarithmic in the list size instead of scanning and evaluating the predicate
per edge (Section II "Sorting", Section V-B's Ds configuration).  These
helpers operate on the materialized sort-key values of one list slice.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def equal_range(values: np.ndarray, key) -> Tuple[int, int]:
    """Return the ``[lo, hi)`` range of entries equal to ``key``.

    ``values`` must be sorted ascending.
    """
    lo = int(np.searchsorted(values, key, side="left"))
    hi = int(np.searchsorted(values, key, side="right"))
    return lo, hi


def prefix_below(values: np.ndarray, bound, inclusive: bool = False) -> int:
    """Return the length of the prefix with values < bound (or <= if inclusive)."""
    side = "right" if inclusive else "left"
    return int(np.searchsorted(values, bound, side=side))


def suffix_above(values: np.ndarray, bound, inclusive: bool = False) -> int:
    """Return the start position of the suffix with values > bound (>= if inclusive)."""
    side = "left" if inclusive else "right"
    return int(np.searchsorted(values, bound, side=side))


def range_between(
    values: np.ndarray,
    low=None,
    high=None,
    low_inclusive: bool = True,
    high_inclusive: bool = False,
) -> Tuple[int, int]:
    """Return the ``[lo, hi)`` range of entries within the given bounds.

    ``None`` bounds are treated as unbounded.  ``values`` must be sorted
    ascending.
    """
    lo = 0
    hi = len(values)
    if low is not None:
        lo = suffix_above(values, low, inclusive=low_inclusive)
    if high is not None:
        hi = prefix_below(values, high, inclusive=high_inclusive)
    if hi < lo:
        hi = lo
    return lo, hi


def intersect_sorted(lists) -> np.ndarray:
    """Intersect two or more ascending-sorted integer arrays.

    This is the z-way intersection primitive of the EXTEND/INTERSECT operator.
    Duplicates within one list are preserved only once in the output.
    """
    lists = [np.asarray(lst) for lst in lists]
    if not lists:
        return np.empty(0, dtype=np.int64)
    result = np.unique(lists[0])
    for other in lists[1:]:
        if len(result) == 0:
            break
        result = np.intersect1d(result, other, assume_unique=False)
    return result


def group_by_sorted_key(keys: np.ndarray):
    """Yield ``(key, start, end)`` runs of equal keys in an ascending array.

    Used by MULTI-EXTEND to join lists sorted on the same property: runs with
    equal keys on both sides form the join partners.
    """
    position = 0
    length = len(keys)
    while position < length:
        key = keys[position]
        end = int(np.searchsorted(keys, key, side="right"))
        yield key, position, end
        position = end
