"""MagicRecs recommendation queries (MR1-MR3) for the Table III workload.

The MagicRecs engine (Twitter) recommends, for a user ``a1``, the common
followers of the users ``a2 ... ak`` that ``a1`` started following recently
(Section V-C1; Figure 4 of the paper).  The "recently" condition is a
predicate ``ei.time < alpha`` on the edges leaving ``a1``, tuned to 5%
selectivity in the paper's experiments.

* **MR1** (k=2): ``a1 -e1-> a2 <-e2- a3`` — follow + one common follower hop.
* **MR2** (k=2): ``a1`` follows ``a2`` and ``a3``; ``a4`` follows both.
* **MR3** (k=3): ``a1`` follows ``a2``, ``a3`` and ``a4``; ``a5`` follows all
  three.

These queries benefit from a secondary vertex-partitioned index sorted on the
``time`` property of edges (configuration ``D+VPt``), which lets the first
extensions locate the qualifying 5% prefix with a binary search instead of
evaluating the predicate on every edge.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.graph import PropertyGraph
from ..query.pattern import QueryGraph
from ..predicates import cmp, prop

#: Query names in the order reported in Table III.
MR_QUERY_NAMES = ("MR1", "MR2", "MR3")


def time_threshold(graph: PropertyGraph, selectivity: float = 0.05) -> int:
    """The ``alpha`` giving the requested selectivity on the ``time`` property."""
    times = np.asarray(graph.edge_props.column("time"))
    if len(times) == 0:
        return 0
    return int(np.quantile(times, selectivity))


def build_mr1(alpha: int) -> QueryGraph:
    """``a1 -e1-> a2 <-e2- a3`` with ``e1.time < alpha`` (simple extend tail)."""
    query = QueryGraph("MR1")
    for name in ("a1", "a2", "a3"):
        query.add_vertex(name, label="User")
    query.add_edge("a1", "a2", label="Follows", name="e1")
    query.add_edge("a3", "a2", label="Follows", name="e2")
    query.add_predicate(cmp(prop("e1", "time"), "<", alpha))
    return query


def build_mr2(alpha: int) -> QueryGraph:
    """``a1`` recently follows ``a2``/``a3``; ``a4`` follows both (cyclic)."""
    query = QueryGraph("MR2")
    for name in ("a1", "a2", "a3", "a4"):
        query.add_vertex(name, label="User")
    query.add_edge("a1", "a2", label="Follows", name="e1")
    query.add_edge("a1", "a3", label="Follows", name="e2")
    query.add_edge("a4", "a2", label="Follows", name="e3")
    query.add_edge("a4", "a3", label="Follows", name="e4")
    query.add_predicate(cmp(prop("e1", "time"), "<", alpha))
    query.add_predicate(cmp(prop("e2", "time"), "<", alpha))
    return query


def build_mr3(alpha: int, a1_limit: int = 0) -> QueryGraph:
    """``a1`` recently follows ``a2``/``a3``/``a4``; ``a5`` follows all three.

    ``a1_limit`` restricts ``a1`` to IDs below the limit — the paper does the
    same on its two largest datasets "to run the query in a reasonable time".
    """
    query = QueryGraph("MR3")
    for name in ("a1", "a2", "a3", "a4", "a5"):
        query.add_vertex(name, label="User")
    query.add_edge("a1", "a2", label="Follows", name="e1")
    query.add_edge("a1", "a3", label="Follows", name="e2")
    query.add_edge("a1", "a4", label="Follows", name="e3")
    query.add_edge("a5", "a2", label="Follows", name="e4")
    query.add_edge("a5", "a3", label="Follows", name="e5")
    query.add_edge("a5", "a4", label="Follows", name="e6")
    query.add_predicate(cmp(prop("e1", "time"), "<", alpha))
    query.add_predicate(cmp(prop("e2", "time"), "<", alpha))
    query.add_predicate(cmp(prop("e3", "time"), "<", alpha))
    if a1_limit:
        query.add_predicate(cmp(prop("a1", "ID"), "<", a1_limit))
    return query


def build_workload(
    graph: PropertyGraph, selectivity: float = 0.05, mr3_a1_limit: int = 0
) -> Dict[str, QueryGraph]:
    """Build MR1-MR3 with ``alpha`` tuned to the requested selectivity.

    ``mr3_a1_limit`` optionally bounds MR3's start vertex (see
    :func:`build_mr3`); 0 leaves it unbounded.
    """
    alpha = time_threshold(graph, selectivity)
    return {
        "MR1": build_mr1(alpha),
        "MR2": build_mr2(alpha),
        "MR3": build_mr3(alpha, a1_limit=mr3_a1_limit),
    }
