"""Workload runner: timing and bookkeeping shared by benchmarks and examples.

A :class:`WorkloadRunner` executes a dictionary of queries against an engine
(anything exposing ``plan``/``run``/``memory_report``, i.e. a
:class:`repro.query.engine.Database` or one of the baselines) and collects
per-query runtimes, match counts and execution statistics, plus the memory
footprint of the engine's index configuration.  Benchmarks use it to produce
the rows of the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..query.pattern import QueryGraph
from ..query.plan import QueryPlan


@dataclass
class QueryMeasurement:
    """Result of running one query once."""

    name: str
    seconds: float
    plan_seconds: float
    count: int
    lists_accessed: int
    list_entries_fetched: int
    intermediate_rows: int
    plan: QueryPlan


@dataclass
class WorkloadMeasurement:
    """Results of running a whole workload under one configuration."""

    config_name: str
    queries: Dict[str, QueryMeasurement] = field(default_factory=dict)
    memory_bytes: int = 0
    setup_seconds: float = 0.0

    def runtime(self, query_name: str) -> float:
        return self.queries[query_name].seconds

    def total_runtime(self) -> float:
        return sum(m.seconds for m in self.queries.values())

    def memory_megabytes(self) -> float:
        return self.memory_bytes / (1024 * 1024)

    def speedup_over(self, baseline: "WorkloadMeasurement", query_name: str) -> float:
        base = baseline.queries[query_name].seconds
        mine = self.queries[query_name].seconds
        if mine <= 0:
            return float("inf")
        return base / mine

    def memory_ratio_over(self, baseline: "WorkloadMeasurement") -> float:
        if baseline.memory_bytes == 0:
            return float("inf") if self.memory_bytes else 1.0
        return self.memory_bytes / baseline.memory_bytes


class WorkloadRunner:
    """Runs query workloads against an engine and records measurements."""

    def __init__(self, engine, config_name: str, setup_seconds: float = 0.0) -> None:
        self.engine = engine
        self.config_name = config_name
        self.setup_seconds = setup_seconds

    def run(
        self,
        queries: Mapping[str, QueryGraph],
        repetitions: int = 1,
        warmup: bool = False,
    ) -> WorkloadMeasurement:
        """Run every query ``repetitions`` times and keep the best runtime.

        The best-of-N convention mirrors how steady-state runtimes are usually
        reported for in-memory systems; ``warmup`` adds one untimed run.
        """
        measurement = WorkloadMeasurement(
            config_name=self.config_name, setup_seconds=self.setup_seconds
        )
        for name, query in queries.items():
            plan_started = time.perf_counter()
            plan = self.engine.plan(query)
            plan_seconds = time.perf_counter() - plan_started
            if warmup:
                self.engine.run(plan)
            best: Optional[QueryMeasurement] = None
            for _ in range(max(repetitions, 1)):
                result = self.engine.run(plan)
                candidate = QueryMeasurement(
                    name=name,
                    seconds=result.seconds,
                    plan_seconds=plan_seconds,
                    count=result.count,
                    lists_accessed=result.stats.lists_accessed,
                    list_entries_fetched=result.stats.list_entries_fetched,
                    intermediate_rows=result.stats.intermediate_rows,
                    plan=plan,
                )
                if best is None or candidate.seconds < best.seconds:
                    best = candidate
            measurement.queries[name] = best
        report = self.engine.memory_report()
        measurement.memory_bytes = report.total
        return measurement
