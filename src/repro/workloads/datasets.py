"""Scaled-down stand-ins for the paper's datasets (Table I).

The paper evaluates on four real graphs — Orkut (117.1M edges), LiveJournal
(68.5M), Wiki-topcats (28.5M) and BerkStan (7.6M) — with randomly assigned
vertex/edge labels (``G_{i,j}``) and, for the fraud workload, randomly
assigned financial properties.  A pure-Python engine cannot process graphs of
that size, so this module defines deterministic synthetic datasets that keep

* the relative size ordering (Ork > LJ > WT > Brk),
* realistic small average degrees (Table I reports 11-39), and
* the label/property assignment methodology of Sections V-B and V-C,

at a scale the interpreter can evaluate in seconds.  The ``scale`` parameter
multiplies vertex/edge counts for users with more patience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..graph.generators import (
    FinancialGraphSpec,
    LabelledGraphSpec,
    SocialGraphSpec,
    generate_financial_graph,
    generate_labelled_graph,
    generate_social_graph,
)
from ..graph.graph import PropertyGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Base sizes of one scaled dataset (before the ``scale`` multiplier)."""

    name: str
    num_vertices: int
    num_edges: int
    #: Average degree of the original graph, recorded for reporting parity
    #: with Table I (our scaled graphs approximate it through num_edges).
    paper_avg_degree: float
    paper_num_vertices: str
    paper_num_edges: str
    seed: int


#: Scaled stand-ins for Table I.  Edge counts preserve the originals' ordering
#: and (roughly) their average degrees.
DATASETS: Dict[str, DatasetSpec] = {
    "ork": DatasetSpec("ork", 4000, 96_000, 39.03, "3.0M", "117.1M", seed=101),
    "lj": DatasetSpec("lj", 5000, 70_000, 14.27, "4.8M", "68.5M", seed=102),
    "wt": DatasetSpec("wt", 3600, 56_000, 15.83, "1.8M", "28.5M", seed=103),
    "brk": DatasetSpec("brk", 2400, 26_000, 11.09, "685K", "7.6M", seed=104),
}

_CACHE: Dict[Tuple, PropertyGraph] = {}


def dataset_names() -> Tuple[str, ...]:
    return tuple(DATASETS)


def labelled_dataset(
    name: str,
    num_vertex_labels: int = 1,
    num_edge_labels: int = 1,
    scale: float = 1.0,
) -> PropertyGraph:
    """A ``G_{i,j}``-style labelled graph for the subgraph-query workload."""
    spec = DATASETS[name]
    key = ("labelled", name, num_vertex_labels, num_edge_labels, scale)
    if key not in _CACHE:
        _CACHE[key] = generate_labelled_graph(
            LabelledGraphSpec(
                num_vertices=int(spec.num_vertices * scale),
                num_edges=int(spec.num_edges * scale),
                num_vertex_labels=num_vertex_labels,
                num_edge_labels=num_edge_labels,
                seed=spec.seed,
            )
        )
    return _CACHE[key]


def social_dataset(name: str, scale: float = 1.0) -> PropertyGraph:
    """A follower graph with edge timestamps for the MagicRecs workload."""
    spec = DATASETS[name]
    key = ("social", name, scale)
    if key not in _CACHE:
        _CACHE[key] = generate_social_graph(
            SocialGraphSpec(
                num_vertices=int(spec.num_vertices * scale),
                num_edges=int(spec.num_edges * scale),
                seed=spec.seed + 1000,
            )
        )
    return _CACHE[key]


def financial_dataset(
    name: str, scale: float = 1.0, num_cities: int = 64
) -> PropertyGraph:
    """A transfer graph with financial properties for the fraud workload."""
    spec = DATASETS[name]
    key = ("financial", name, scale, num_cities)
    if key not in _CACHE:
        _CACHE[key] = generate_financial_graph(
            FinancialGraphSpec(
                num_vertices=int(spec.num_vertices * scale),
                num_edges=int(spec.num_edges * scale),
                num_cities=num_cities,
                seed=spec.seed + 2000,
            )
        )
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached graphs (used by tests that care about memory)."""
    _CACHE.clear()


def table1_rows(scale: float = 1.0):
    """Rows for the Table I reproduction: name, |V|, |E|, avg degree.

    Returns both the paper's reported values and the scaled stand-in's actual
    values so the benchmark can print them side by side.
    """
    rows = []
    for name, spec in DATASETS.items():
        graph = labelled_dataset(name, 1, 1, scale)
        rows.append(
            {
                "name": name,
                "paper_vertices": spec.paper_num_vertices,
                "paper_edges": spec.paper_num_edges,
                "paper_avg_degree": spec.paper_avg_degree,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "avg_degree": round(graph.average_degree, 2),
            }
        )
    return rows
