"""Financial-fraud money-flow queries (MF1-MF5) for the Table IV workload.

Section V-C2/V-D evaluates five fraud-detection queries (Figure 5 of the
paper) over transfer graphs whose vertices carry an account type
(``acc`` in {CQ, SV}) and a ``city``, and whose edges carry ``amt``, ``date``
and ``currency``:

* **MF1** — a 4-cycle of transfers between CQ accounts where the two
  "middle" accounts are in the same city.
* **MF2** — a 4-account transfer path whose consecutive accounts share a city.
* **MF3** — a three-branch pattern with a money-flow condition ``Pf`` between
  two consecutive transfers and city equalities across branches (the query of
  Figure 6's plan).
* **MF4** — two 2-step money flows out of one account whose first hops are in
  the same city.
* **MF5** — a 4-step money-flow path with ``Pf`` on every consecutive pair.

``Pf(ei, ej)`` is the paper's money-flow predicate: the second transfer
happens later, for a smaller amount, and for a cut of at most ``alpha``:
``ei.date < ej.date AND ei.amt > ej.amt AND ei.amt < ej.amt + alpha``
(Figure 5 states it for the reverse edge order; the inequality structure is
identical).

The module also provides the index DDL-equivalents used by the Table IV
configurations: the city-sorted vertex-partitioned view (``VPc``) and the
money-flow edge-partitioned view (``EPc``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.graph import PropertyGraph
from ..graph.types import EdgeAdjacencyType
from ..index.config import IndexConfig
from ..index.views import OneHopView, TwoHopView
from ..predicates import Comparison, Predicate, cmp, prop
from ..query.pattern import QueryGraph
from ..storage.partition_keys import PartitionKey
from ..storage.sort_keys import SortKey

#: Query names in the order reported in Table IV.
MF_QUERY_NAMES = ("MF1", "MF2", "MF3", "MF4", "MF5")


def amount_alpha(graph: PropertyGraph, selectivity: float = 0.05) -> int:
    """The money-flow "cut" ``alpha`` giving roughly the requested selectivity.

    Amounts are (approximately) uniform on ``[1, max_amt]``, so the
    probability that a random pair of transfers satisfies
    ``0 < ei.amt - ej.amt < alpha`` is about ``alpha / max_amt``.
    """
    amounts = np.asarray(graph.edge_props.column("amt"))
    if len(amounts) == 0:
        return 1
    max_amount = float(amounts.max())
    return max(int(round(selectivity * max_amount)), 1)


def money_flow_conjuncts(earlier: str, later: str, alpha: int) -> List[Comparison]:
    """``Pf(earlier, later)``: later transfer is later, smaller, cut <= alpha."""
    return [
        cmp(prop(earlier, "date"), "<", prop(later, "date")),
        cmp(prop(earlier, "amt"), ">", prop(later, "amt")),
        cmp(prop(earlier, "amt"), "<", prop(later, "amt"), offset=float(alpha)),
    ]


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def build_mf1() -> QueryGraph:
    """4-cycle of transfers between CQ accounts, a2 and a4 in the same city."""
    query = QueryGraph("MF1")
    for name in ("a1", "a2", "a3", "a4"):
        query.add_vertex(name, label="Account")
        query.add_predicate(cmp(prop(name, "acc"), "=", "CQ"))
    query.add_edge("a1", "a2", name="e1")
    query.add_edge("a2", "a3", name="e2")
    query.add_edge("a3", "a4", name="e3")
    query.add_edge("a4", "a1", name="e4")
    query.add_predicate(cmp(prop("a2", "city"), "=", prop("a4", "city")))
    return query


def build_mf2() -> QueryGraph:
    """Transfer path a1 -> a2 -> a3 -> a4 with consecutive city equality."""
    query = QueryGraph("MF2")
    for name in ("a1", "a2", "a3", "a4"):
        query.add_vertex(name, label="Account")
    query.add_edge("a1", "a2", name="e1")
    query.add_edge("a2", "a3", name="e2")
    query.add_edge("a3", "a4", name="e3")
    query.add_predicate(cmp(prop("a1", "city"), "=", prop("a2", "city")))
    query.add_predicate(cmp(prop("a2", "city"), "=", prop("a3", "city")))
    query.add_predicate(cmp(prop("a3", "city"), "=", prop("a4", "city")))
    return query


def build_mf3(graph: PropertyGraph, alpha: int) -> QueryGraph:
    """Three branches out of a1 with a money-flow hop and city equalities.

    Shape (Figure 5c): ``a1 -e1-> a2``, ``a1 -e2-> a3 -e3-> a4``,
    ``a1 -e4-> a5`` with ``Pf(e2, e3)``, ``a2.city = a4.city = a5.city``,
    ``a3.ID < c`` (a selective ID range), CQ accounts except ``a5`` (SV).
    """
    query = QueryGraph("MF3")
    for name in ("a1", "a2", "a3", "a4", "a5"):
        query.add_vertex(name, label="Account")
    query.add_edge("a1", "a2", name="e1")
    query.add_edge("a1", "a3", name="e2")
    query.add_edge("a3", "a4", name="e3")
    query.add_edge("a1", "a5", name="e4")
    for name in ("a1", "a2", "a3", "a4"):
        query.add_predicate(cmp(prop(name, "acc"), "=", "CQ"))
    query.add_predicate(cmp(prop("a5", "acc"), "=", "SV"))
    id_bound = max(graph.num_vertices // 5, 1)
    query.add_predicate(cmp(prop("a3", "ID"), "<", id_bound))
    query.add_predicate(cmp(prop("a2", "city"), "=", prop("a4", "city")))
    query.add_predicate(cmp(prop("a4", "city"), "=", prop("a5", "city")))
    for comparison in money_flow_conjuncts("e2", "e3", alpha):
        query.add_predicate(comparison)
    return query


def build_mf4(graph: PropertyGraph, alpha: int, beta_city: str = "city0") -> QueryGraph:
    """Two 2-step money flows out of a1, first hops in the same city.

    Shape (Figure 5d): ``a1 -e1-> a2 -e2-> a3`` and ``a1 -e3-> a4 -e4-> a5``
    with ``Pf(e1, e2)``, ``Pf(e3, e4)``, ``a2.city = a4.city``,
    ``a1.city = beta``, CQ first hops and SV second hops.
    """
    query = QueryGraph("MF4")
    for name in ("a1", "a2", "a3", "a4", "a5"):
        query.add_vertex(name, label="Account")
    query.add_edge("a1", "a2", name="e1")
    query.add_edge("a2", "a3", name="e2")
    query.add_edge("a1", "a4", name="e3")
    query.add_edge("a4", "a5", name="e4")
    query.add_predicate(cmp(prop("a1", "city"), "=", beta_city))
    query.add_predicate(cmp(prop("a2", "city"), "=", prop("a4", "city")))
    query.add_predicate(cmp(prop("a2", "acc"), "=", "CQ"))
    query.add_predicate(cmp(prop("a3", "acc"), "=", "CQ"))
    query.add_predicate(cmp(prop("a4", "acc"), "=", "SV"))
    query.add_predicate(cmp(prop("a5", "acc"), "=", "SV"))
    for comparison in money_flow_conjuncts("e1", "e2", alpha):
        query.add_predicate(comparison)
    for comparison in money_flow_conjuncts("e3", "e4", alpha):
        query.add_predicate(comparison)
    return query


def build_mf5(graph: PropertyGraph, alpha: int) -> QueryGraph:
    """4-step money-flow path with ``Pf`` between every consecutive pair."""
    query = QueryGraph("MF5")
    for name in ("a1", "a2", "a3", "a4", "a5"):
        query.add_vertex(name, label="Account")
        query.add_predicate(cmp(prop(name, "acc"), "=", "CQ"))
    query.add_edge("a1", "a2", name="e1")
    query.add_edge("a2", "a3", name="e2")
    query.add_edge("a3", "a4", name="e3")
    query.add_edge("a4", "a5", name="e4")
    id_bound = max(graph.num_vertices // 2, 1)
    query.add_predicate(cmp(prop("a1", "ID"), "<", id_bound))
    for earlier, later in (("e1", "e2"), ("e2", "e3"), ("e3", "e4")):
        for comparison in money_flow_conjuncts(earlier, later, alpha):
            query.add_predicate(comparison)
    return query


def build_workload(graph: PropertyGraph, selectivity: float = 0.05) -> Dict[str, QueryGraph]:
    """Build MF1-MF5 with ``alpha`` tuned to the requested selectivity."""
    alpha = amount_alpha(graph, selectivity)
    return {
        "MF1": build_mf1(),
        "MF2": build_mf2(),
        "MF3": build_mf3(graph, alpha),
        "MF4": build_mf4(graph, alpha),
        "MF5": build_mf5(graph, alpha),
    }


# ----------------------------------------------------------------------
# index configurations of Table IV
# ----------------------------------------------------------------------
def vpc_view_and_config() -> Tuple[OneHopView, IndexConfig]:
    """The ``VPc`` secondary vertex-partitioned index of Section V-C2.

    A global 1-hop view (all edges) with the same partitioning structure as
    the primary index, sorted on the neighbour's ``city`` property; built in
    both directions so forward and backward lists can be intersected on city.
    """
    view = OneHopView(name="VPc")
    config = IndexConfig(
        partition_keys=(PartitionKey.edge_label(),),
        sort_keys=(SortKey.nbr_property("city"), SortKey.neighbour_id()),
    )
    return view, config


def epc_view_and_config(alpha: int) -> Tuple[TwoHopView, IndexConfig]:
    """The ``EPc`` secondary edge-partitioned index of Section V-D.

    A Destination-FW 2-hop view with the money-flow predicate (including the
    ``alpha`` cut), partitioned on the neighbour's account type and sorted on
    the neighbour's ``city``.
    """
    predicate = Predicate(
        [
            cmp(prop("eb", "date"), "<", prop("eadj", "date")),
            cmp(prop("eb", "amt"), ">", prop("eadj", "amt")),
            cmp(prop("eb", "amt"), "<", prop("eadj", "amt"), offset=float(alpha)),
        ]
    )
    view = TwoHopView(name="EPc", adjacency=EdgeAdjacencyType.DST_FW, predicate=predicate)
    config = IndexConfig(
        partition_keys=(PartitionKey.nbr_property("acc"),),
        sort_keys=(SortKey.nbr_property("city"), SortKey.neighbour_id()),
    )
    return view, config
