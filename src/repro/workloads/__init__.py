"""The paper's three evaluation workloads plus scaled datasets and a runner."""

from . import fraud, labelled_subgraph, magicrecs
from .datasets import (
    DATASETS,
    DatasetSpec,
    clear_cache,
    dataset_names,
    financial_dataset,
    labelled_dataset,
    social_dataset,
    table1_rows,
)
from .runner import QueryMeasurement, WorkloadMeasurement, WorkloadRunner

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "QueryMeasurement",
    "WorkloadMeasurement",
    "WorkloadRunner",
    "clear_cache",
    "dataset_names",
    "financial_dataset",
    "fraud",
    "labelled_dataset",
    "labelled_subgraph",
    "magicrecs",
    "social_dataset",
    "table1_rows",
]
