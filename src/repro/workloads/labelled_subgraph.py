"""Labelled subgraph queries (SQ1-SQ14) for the Table II workload.

Section V-B evaluates 13 labelled subgraph queries taken from the
GraphflowDB optimizer paper (reference [4] of the A+ paper): acyclic and
cyclic shapes with dense and sparse connectivity, up to 7 query vertices and
21 query edges, with fixed edge labels and (in the A+ paper's modification)
fixed vertex labels.  The query set itself is omitted from the A+ paper "due
to space reasons", so this module reconstructs a representative family with
the same characteristics; DESIGN.md records the substitution.

Labels are assigned deterministically per query (cycling through the
dataset's vertex/edge label alphabets), so the same query object is usable on
any ``G_{i,j}`` dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..query.pattern import QueryGraph

#: (query name, vertex variables, edges as (src, dst) pairs, cyclic?)
_SHAPES: List[Tuple[str, Sequence[str], Sequence[Tuple[str, str]], bool]] = [
    # Acyclic, sparse.
    ("SQ1", "abc", [("a", "b"), ("b", "c")], False),
    ("SQ2", "abcd", [("a", "b"), ("b", "c"), ("c", "d")], False),
    ("SQ3", "abcd", [("a", "b"), ("a", "c"), ("a", "d")], False),
    # Cyclic, small.
    ("SQ4", "abc", [("a", "b"), ("b", "c"), ("a", "c")], True),
    ("SQ5", "abcd", [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], True),
    ("SQ6", "abcd", [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")], True),
    # Cyclic, denser.
    ("SQ7", "abcd", [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d"), ("a", "c")], True),
    (
        "SQ8",
        "abcd",
        [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")],
        True,
    ),
    ("SQ9", "abcde", [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "e")], True),
    (
        "SQ10",
        "abcde",
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("a", "e"), ("b", "e")],
        True,
    ),
    # Longer paths / trees.
    ("SQ11", "abcde", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")], False),
    (
        "SQ12",
        "abcde",
        [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("c", "e"), ("d", "e")],
        True,
    ),
    # SQ13 is the long 5-edge path singled out in the Table V discussion.
    ("SQ13", "abcdef", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")], False),
    # SQ14 has very few or no outputs on the paper's datasets and is omitted
    # from Table II; it is kept here for completeness (a 5-vertex near-clique).
    (
        "SQ14",
        "abcdef",
        [
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
            ("d", "e"),
            ("e", "f"),
            ("a", "f"),
            ("a", "c"),
            ("b", "d"),
        ],
        True,
    ),
]


@dataclass(frozen=True)
class SubgraphQuerySpec:
    """Shape metadata of one labelled subgraph query."""

    name: str
    num_vertices: int
    num_edges: int
    cyclic: bool


def query_specs() -> List[SubgraphQuerySpec]:
    """Metadata of the full SQ1-SQ14 family."""
    return [
        SubgraphQuerySpec(name, len(vertices), len(edges), cyclic)
        for name, vertices, edges, cyclic in _SHAPES
    ]


def query_names(include_sq14: bool = False) -> List[str]:
    names = [shape[0] for shape in _SHAPES]
    return names if include_sq14 else names[:-1]


def build_query(
    name: str,
    num_vertex_labels: int,
    num_edge_labels: int,
    with_vertex_labels: bool = True,
) -> QueryGraph:
    """Materialize one SQ query with labels drawn from ``VL*`` / ``EL*``.

    Args:
        name: one of ``SQ1`` ... ``SQ14``.
        num_vertex_labels: size of the dataset's vertex-label alphabet (the
            ``i`` of ``G_{i,j}``).
        num_edge_labels: size of the edge-label alphabet (the ``j``).
        with_vertex_labels: when False, only edge labels are fixed — this is
            the original workload of reference [4], for which GraphflowDB's
            default index is already tuned; the A+ paper's modification fixes
            vertex labels as well.
    """
    for shape_name, vertices, edges, _ in _SHAPES:
        if shape_name == name:
            break
    else:
        raise KeyError(f"unknown subgraph query {name!r}")

    query = QueryGraph(name)
    for position, vertex in enumerate(vertices):
        label = f"VL{position % num_vertex_labels}" if with_vertex_labels else None
        query.add_vertex(vertex, label=label)
    for position, (src, dst) in enumerate(edges):
        label = f"EL{position % num_edge_labels}" if num_edge_labels > 0 else None
        query.add_edge(src, dst, label=label, name=f"e{position}")
    return query


def build_workload(
    num_vertex_labels: int,
    num_edge_labels: int,
    names: Sequence[str] = (),
    with_vertex_labels: bool = True,
) -> Dict[str, QueryGraph]:
    """Build the whole workload (or a named subset) keyed by query name."""
    selected = list(names) if names else query_names()
    return {
        name: build_query(name, num_vertex_labels, num_edge_labels, with_vertex_labels)
        for name in selected
    }
