"""repro — a reproduction of "A+ Indexes: Tunable and Space-Efficient Adjacency
Lists in Graph Database Management Systems" (ICDE 2021).

The package provides:

* an in-memory property-graph substrate (:mod:`repro.graph`),
* the A+ indexing subsystem — primary, secondary vertex-partitioned and
  secondary edge-partitioned indexes over nested CSRs and offset lists
  (:mod:`repro.index`, :mod:`repro.storage`),
* a GraphflowDB-style query processor with EXTEND/INTERSECT, MULTI-EXTEND and
  a DP join optimizer that selects A+ indexes (:mod:`repro.query`),
* fixed-adjacency-list baseline engines (:mod:`repro.baselines`),
* the paper's three evaluation workloads (:mod:`repro.workloads`), and
* the benchmark harness that regenerates the paper's tables
  (:mod:`repro.bench`, driven from ``benchmarks/``).

Quickstart::

    from repro import Database, QueryGraph, cmp, prop
    from repro.graph import running_example_graph

    db = Database(running_example_graph())
    q = QueryGraph("alice-accounts")
    q.add_vertex("c1", label="Customer")
    q.add_vertex("a1", label="Account")
    q.add_edge("c1", "a1", label="Owns", name="r1")
    q.add_predicate(cmp(prop("c1", "name"), "=", "Alice"))
    print(db.count(q))
"""

from .errors import (
    DDLParseError,
    ExecutionError,
    GraphBuildError,
    IndexConfigError,
    IndexLookupError,
    MaintenanceError,
    PlanningError,
    QueryCancelledError,
    QueryParseError,
    QueryTimeoutError,
    ReproError,
    SchemaError,
    ServerClosedError,
    ServerError,
    ServerOverloadedError,
    WorkerCrashError,
)
from .graph import (
    Direction,
    EdgeAdjacencyType,
    GraphBuilder,
    GraphSchema,
    PropertyGraph,
    PropertyType,
)
from .index import (
    EdgePartitionedIndex,
    IndexConfig,
    IndexStore,
    OneHopView,
    PrimaryIndex,
    TwoHopView,
    VertexPartitionedIndex,
)
from .query import (
    CancellationToken,
    CountSink,
    Database,
    ExistsSink,
    Executor,
    FaultPlan,
    FlattenSink,
    LimitSink,
    MorselExecutor,
    NaiveMatcher,
    Optimizer,
    PipelineBuilder,
    PlanCache,
    PlanCacheStats,
    Predicate,
    QueryContext,
    QueryGraph,
    QueryPlan,
    QueryResult,
    cmp,
    const,
    prop,
)
from .server import DatabaseServer, ServerConfig, ServerTicket

__version__ = "1.0.0"

__all__ = [
    "CancellationToken",
    "CountSink",
    "Database",
    "DatabaseServer",
    "DDLParseError",
    "ExistsSink",
    "FaultPlan",
    "FlattenSink",
    "LimitSink",
    "PipelineBuilder",
    "QueryCancelledError",
    "QueryContext",
    "QueryTimeoutError",
    "WorkerCrashError",
    "Direction",
    "EdgeAdjacencyType",
    "EdgePartitionedIndex",
    "ExecutionError",
    "Executor",
    "MorselExecutor",
    "GraphBuildError",
    "GraphBuilder",
    "GraphSchema",
    "IndexConfig",
    "IndexConfigError",
    "IndexLookupError",
    "IndexStore",
    "MaintenanceError",
    "NaiveMatcher",
    "OneHopView",
    "Optimizer",
    "PlanCache",
    "PlanCacheStats",
    "PlanningError",
    "Predicate",
    "PrimaryIndex",
    "PropertyGraph",
    "PropertyType",
    "QueryGraph",
    "QueryParseError",
    "QueryPlan",
    "QueryResult",
    "ReproError",
    "SchemaError",
    "ServerClosedError",
    "ServerConfig",
    "ServerError",
    "ServerOverloadedError",
    "ServerTicket",
    "TwoHopView",
    "VertexPartitionedIndex",
    "cmp",
    "const",
    "prop",
    "__version__",
]
