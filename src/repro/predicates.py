"""Predicate AST: comparisons, conjunctions, evaluation, and subsumption.

Predicates appear in three places in the reproduction:

* in **query patterns** (WHERE clauses of the workload queries),
* in **1-hop / 2-hop view definitions** of secondary A+ indexes, and
* in the **INDEX STORE**'s matching logic, which checks whether the predicate
  an index materializes *subsumes* the predicate a query needs
  (Section IV-A: conjunctive-component subsumption and range subsumption).

A predicate is a conjunction of comparisons.  Each comparison compares a
property reference (``var.prop``) against either a constant or another
property reference; cross-variable comparisons (``a2.city = a4.city``,
``e1.date < e2.date``) are what drive MULTI-EXTEND plans and edge-partitioned
indexes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from .errors import QueryParseError
from .graph.graph import PropertyGraph
from .graph.types import NULL_CATEGORY, NULL_INT, PropertyType


class CompareOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def flipped(self) -> "CompareOp":
        """Operator with operands swapped (a < b  <=>  b > a)."""
        mapping = {
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.NE: CompareOp.NE,
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
        }
        return mapping[self]

    def apply(self, left, right) -> bool:
        if left is None or right is None:
            return False
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if self is CompareOp.LT:
            return left < right
        if self is CompareOp.LE:
            return left <= right
        if self is CompareOp.GT:
            return left > right
        return left >= right

    def apply_bulk(self, left: np.ndarray, right) -> np.ndarray:
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if self is CompareOp.LT:
            return left < right
        if self is CompareOp.LE:
            return left <= right
        if self is CompareOp.GT:
            return left > right
        return left >= right


# ----------------------------------------------------------------------
# operands
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PropertyRef:
    """A reference to a property of a query/view variable.

    ``prop`` may be a declared property name, ``"label"`` (the label code), or
    ``"ID"`` (the element's own ID).
    """

    var: str
    prop: str

    def renamed(self, mapping: Mapping[str, str]) -> "PropertyRef":
        return PropertyRef(mapping.get(self.var, self.var), self.prop)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.var}.{self.prop}"


@dataclass(frozen=True)
class Constant:
    """A literal constant operand."""

    value: Union[int, float, str]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


Operand = Union[PropertyRef, Constant]

#: A raw-column provider for one bulk-evaluation variable: called with a
#: property name, returns the coded value column for the variable's rows, or
#: ``None`` to defer to the graph's own columns.
ColumnProvider = Callable[[str], Optional[np.ndarray]]


def _raw_scalar(
    graph: PropertyGraph, kind: str, element_id: int, prop: str
) -> Optional[Union[int, float]]:
    """Raw (coded) property value of one element; None when null."""
    if prop == "ID":
        return element_id
    if prop == "label":
        if kind == "vertex":
            return int(graph.vertex_labels[element_id])
        return int(graph.edge_labels[element_id])
    store = graph.vertex_props if kind == "vertex" else graph.edge_props
    value = store.raw_value(element_id, prop)
    if isinstance(value, (np.floating, float)):
        value = float(value)
        return None if math.isnan(value) else value
    value = int(value)
    if value == NULL_INT or value == NULL_CATEGORY and _is_categorical(graph, kind, prop):
        return None
    return value


def _is_categorical(graph: PropertyGraph, kind: str, prop: str) -> bool:
    schema = graph.schema
    if prop in ("ID", "label"):
        return False
    if kind == "vertex":
        return (
            schema.has_vertex_property(prop)
            and schema.vertex_property(prop).ptype is PropertyType.CATEGORICAL
        )
    return (
        schema.has_edge_property(prop)
        and schema.edge_property(prop).ptype is PropertyType.CATEGORICAL
    )


def _raw_bulk(
    graph: PropertyGraph, kind: str, element_ids: np.ndarray, prop: str
) -> np.ndarray:
    """Vectorized raw property values for many elements."""
    if prop == "ID":
        return np.asarray(element_ids, dtype=np.int64)
    if prop == "label":
        labels = graph.vertex_labels if kind == "vertex" else graph.edge_labels
        return labels[element_ids].astype(np.int64)
    store = graph.vertex_props if kind == "vertex" else graph.edge_props
    return np.asarray(store.values_for(np.asarray(element_ids), prop))


def encode_constant(
    graph: PropertyGraph, ref: PropertyRef, kind: str, value
) -> Union[int, float]:
    """Encode a query-level constant for comparison against raw column values.

    Label names and categorical strings are mapped to their integer codes so
    that comparisons operate on the coded columns.
    """
    if not isinstance(value, str):
        return value
    if ref.prop == "label":
        if kind == "vertex":
            return graph.schema.vertex_label_code(value)
        return graph.schema.edge_label_code(value)
    schema = graph.schema
    if kind == "vertex" and schema.has_vertex_property(ref.prop):
        prop = schema.vertex_property(ref.prop)
    elif kind == "edge" and schema.has_edge_property(ref.prop):
        prop = schema.edge_property(ref.prop)
    else:
        raise QueryParseError(f"unknown property {ref.prop!r} on {kind} {ref.var!r}")
    if prop.ptype is PropertyType.CATEGORICAL:
        return prop.code_of(value)
    return value


# ----------------------------------------------------------------------
# comparisons and conjunctions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """A single comparison between two operands.

    ``offset`` supports the paper's fraud predicates of the form
    ``ei.amt < ej.amt + alpha``: it is added to the *right* operand's value
    before comparing and is only meaningful when the right operand is a
    :class:`PropertyRef`.
    """

    left: Operand
    op: CompareOp
    right: Operand
    offset: float = 0.0

    # -- structure ------------------------------------------------------
    def variables(self) -> Set[str]:
        names = set()
        if isinstance(self.left, PropertyRef):
            names.add(self.left.var)
        if isinstance(self.right, PropertyRef):
            names.add(self.right.var)
        return names

    def renamed(self, mapping: Mapping[str, str]) -> "Comparison":
        left = self.left.renamed(mapping) if isinstance(self.left, PropertyRef) else self.left
        right = (
            self.right.renamed(mapping) if isinstance(self.right, PropertyRef) else self.right
        )
        return Comparison(left, self.op, right, self.offset)

    def normalized(self) -> "Comparison":
        """Canonical form used for equality and subsumption checks.

        * constant-vs-reference comparisons put the reference on the left;
        * cross-variable comparisons order the two references lexicographically
          (flipping the operator and negating the offset), so that logically
          identical predicates written in either direction — e.g.
          ``eadj.amt < eb.amt`` and ``eb.amt > eadj.amt`` — compare equal.
        """
        if (
            isinstance(self.left, Constant)
            and isinstance(self.right, PropertyRef)
            and self.offset == 0.0
        ):
            return Comparison(self.right, self.op.flipped, self.left)
        if (
            isinstance(self.left, PropertyRef)
            and isinstance(self.right, PropertyRef)
            and (self.right.var, self.right.prop) < (self.left.var, self.left.prop)
        ):
            return Comparison(self.right, self.op.flipped, self.left, -self.offset)
        return self

    @property
    def is_cross_variable(self) -> bool:
        """True when the comparison references two different variables."""
        return (
            isinstance(self.left, PropertyRef)
            and isinstance(self.right, PropertyRef)
            and self.left.var != self.right.var
        )

    @property
    def is_constant_comparison(self) -> bool:
        """True when exactly one side is a constant."""
        return isinstance(self.left, PropertyRef) and isinstance(self.right, Constant)

    # -- evaluation ------------------------------------------------------
    def _operand_value(
        self,
        operand: Operand,
        graph: PropertyGraph,
        binding: Mapping[str, Tuple[str, int]],
        reference: Optional[PropertyRef] = None,
    ):
        if isinstance(operand, Constant):
            if reference is not None and isinstance(operand.value, str):
                kind = binding[reference.var][0]
                return encode_constant(graph, reference, kind, operand.value)
            return operand.value
        kind, element_id = binding[operand.var]
        return _raw_scalar(graph, kind, element_id, operand.prop)

    def evaluate(
        self, graph: PropertyGraph, binding: Mapping[str, Tuple[str, int]]
    ) -> bool:
        """Evaluate against a full binding of every referenced variable.

        ``binding`` maps variable name to ``(kind, element_id)`` where kind is
        ``"vertex"`` or ``"edge"``.  Comparisons involving nulls are False.
        """
        comp = self.normalized()
        reference = comp.left if isinstance(comp.left, PropertyRef) else None
        left = comp._operand_value(comp.left, graph, binding, None)
        right = comp._operand_value(comp.right, graph, binding, reference)
        if comp.offset and isinstance(comp.right, PropertyRef) and right is not None:
            right = right + comp.offset
        return comp.op.apply(left, right)

    def evaluate_bulk(
        self,
        graph: PropertyGraph,
        fixed: Mapping[str, Tuple[str, int]],
        arrays: Mapping[str, Tuple[str, np.ndarray]],
        overrides: Optional[Mapping[str, "ColumnProvider"]] = None,
    ) -> np.ndarray:
        """Vectorized evaluation.

        Variables in ``arrays`` range over aligned arrays of element IDs (all
        the same length); variables in ``fixed`` are scalar bindings.  Returns
        a boolean mask of the common array length.

        ``overrides`` optionally maps a variable name to a *column provider*,
        a callable ``prop -> Optional[ndarray]`` returning the raw (coded)
        value column of that property for the variable's rows, or ``None`` to
        fall back to the graph columns.  This is how not-yet-materialized
        elements (e.g. the pending edges of a columnar maintenance buffer)
        are evaluated once per batch: the provider serves the buffered
        columns while the other variables keep reading the graph.
        """
        comp = self.normalized()
        length = len(next(iter(arrays.values()))[1]) if arrays else 1

        def operand_values(operand: Operand, reference: Optional[PropertyRef]):
            if isinstance(operand, Constant):
                value = operand.value
                if reference is not None and isinstance(value, str):
                    if reference.var in arrays:
                        kind = arrays[reference.var][0]
                    else:
                        kind = fixed[reference.var][0]
                    value = encode_constant(graph, reference, kind, value)
                return value, True
            if overrides is not None and operand.var in overrides:
                column = overrides[operand.var](operand.prop)
                if column is not None:
                    return np.asarray(column), False
            if operand.var in arrays:
                kind, ids = arrays[operand.var]
                return _raw_bulk(graph, kind, ids, operand.prop), False
            kind, element_id = fixed[operand.var]
            return _raw_scalar(graph, kind, element_id, operand.prop), True

        reference = comp.left if isinstance(comp.left, PropertyRef) else None
        left, left_scalar = operand_values(comp.left, None)
        right, right_scalar = operand_values(comp.right, reference)
        left_raw, right_raw = left, right
        if comp.offset and isinstance(comp.right, PropertyRef) and right is not None:
            right = right + comp.offset

        if left_scalar and right_scalar:
            result = comp.op.apply(left, right)
            return np.full(length, result, dtype=bool)
        if left_scalar:
            if left is None:
                return np.zeros(length, dtype=bool)
            left = np.full(length, left)
            left_raw = left
        if right_scalar:
            if right is None:
                return np.zeros(length, dtype=bool)
            right = np.full(length, right)
            right_raw = right
        mask = comp.op.apply_bulk(np.asarray(left), np.asarray(right))
        # Null handling: raw null codes never satisfy a comparison.
        for side, side_ref in ((left_raw, comp.left), (right_raw, comp.right)):
            if isinstance(side_ref, PropertyRef):
                side_arr = np.asarray(side)
                if np.issubdtype(side_arr.dtype, np.floating):
                    mask &= ~np.isnan(side_arr)
                else:
                    mask &= side_arr != NULL_INT
                    if _is_categorical(
                        graph,
                        arrays.get(side_ref.var, fixed.get(side_ref.var, ("vertex", 0)))[0],
                        side_ref.prop,
                    ):
                        mask &= side_arr != NULL_CATEGORY
        return mask

    def describe(self) -> str:
        offset = ""
        if self.offset:
            sign = "+" if self.offset > 0 else "-"
            offset = f" {sign} {abs(self.offset):g}"
        return f"{self.left} {self.op.value} {self.right}{offset}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class Predicate:
    """A conjunction of :class:`Comparison` terms (possibly empty = TRUE)."""

    def __init__(self, comparisons: Iterable[Comparison] = ()) -> None:
        self._comparisons: List[Comparison] = list(comparisons)

    # -- constructors ----------------------------------------------------
    @classmethod
    def true(cls) -> "Predicate":
        return cls(())

    @classmethod
    def of(cls, *comparisons: Comparison) -> "Predicate":
        return cls(comparisons)

    def and_also(self, other: "Predicate") -> "Predicate":
        return Predicate(self._comparisons + other.conjuncts())

    # -- structure -------------------------------------------------------
    def conjuncts(self) -> List[Comparison]:
        return list(self._comparisons)

    @property
    def is_true(self) -> bool:
        return not self._comparisons

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for comparison in self._comparisons:
            names |= comparison.variables()
        return names

    def renamed(self, mapping: Mapping[str, str]) -> "Predicate":
        return Predicate(c.renamed(mapping) for c in self._comparisons)

    def restricted_to(self, variables: Set[str]) -> "Predicate":
        """Conjuncts that reference only the given variables."""
        return Predicate(
            c for c in self._comparisons if c.variables() <= set(variables)
        )

    def without(self, comparisons: Sequence[Comparison]) -> "Predicate":
        removed = list(comparisons)
        remaining = []
        for comparison in self._comparisons:
            if comparison in removed:
                removed.remove(comparison)
            else:
                remaining.append(comparison)
        return Predicate(remaining)

    # -- evaluation ------------------------------------------------------
    def evaluate(
        self, graph: PropertyGraph, binding: Mapping[str, Tuple[str, int]]
    ) -> bool:
        return all(c.evaluate(graph, binding) for c in self._comparisons)

    def evaluate_bulk(
        self,
        graph: PropertyGraph,
        fixed: Mapping[str, Tuple[str, int]],
        arrays: Mapping[str, Tuple[str, np.ndarray]],
        overrides: Optional[Mapping[str, ColumnProvider]] = None,
    ) -> np.ndarray:
        if not arrays:
            raise QueryParseError("evaluate_bulk requires at least one array variable")
        length = len(next(iter(arrays.values()))[1])
        mask = np.ones(length, dtype=bool)
        for comparison in self._comparisons:
            if not mask.any():
                break
            mask &= comparison.evaluate_bulk(graph, fixed, arrays, overrides)
        return mask

    def describe(self) -> str:
        if not self._comparisons:
            return "TRUE"
        return " AND ".join(c.describe() for c in self._comparisons)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def __eq__(self, other) -> bool:
        return isinstance(other, Predicate) and self._comparisons == other._comparisons

    def __hash__(self) -> int:
        return hash(tuple(self._comparisons))


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def prop(var: str, name: str) -> PropertyRef:
    """Shorthand for :class:`PropertyRef`."""
    return PropertyRef(var, name)


def const(value) -> Constant:
    """Shorthand for :class:`Constant`."""
    return Constant(value)


def cmp(left: Operand, op: str, right, offset: float = 0.0) -> Comparison:
    """Build a comparison from an operator string (e.g. ``cmp(p, "<", 5)``).

    ``offset`` is added to the right operand before comparing (only meaningful
    when the right operand is a property reference), supporting predicates
    like ``e1.amt < e2.amt + alpha``.
    """
    if not isinstance(right, (PropertyRef, Constant)):
        right = Constant(right)
    op_map = {
        "=": CompareOp.EQ,
        "==": CompareOp.EQ,
        "<>": CompareOp.NE,
        "!=": CompareOp.NE,
        "<": CompareOp.LT,
        "<=": CompareOp.LE,
        ">": CompareOp.GT,
        ">=": CompareOp.GE,
    }
    if op not in op_map:
        raise QueryParseError(f"unknown comparison operator {op!r}")
    return Comparison(left, op_map[op], right, offset)


# ----------------------------------------------------------------------
# subsumption (Section IV-A)
# ----------------------------------------------------------------------
def comparison_subsumes(index_comp: Comparison, query_comp: Comparison) -> bool:
    """True if every tuple satisfying ``query_comp`` also satisfies ``index_comp``.

    Two forms are recognized, mirroring the paper's implementation:

    * **exact match** of the (normalized) comparisons, and
    * **range subsumption**: both compare the same property reference against
      a constant with range operators, and the index range is no tighter than
      the query range (e.g. index ``amt > 10000`` subsumes query
      ``amt > 15000``).
    """
    index_comp = index_comp.normalized()
    query_comp = query_comp.normalized()
    if index_comp == query_comp:
        return True
    if not (
        isinstance(index_comp.left, PropertyRef)
        and isinstance(query_comp.left, PropertyRef)
        and index_comp.left == query_comp.left
        and isinstance(index_comp.right, Constant)
        and isinstance(query_comp.right, Constant)
    ):
        return False
    index_value = index_comp.right.value
    query_value = query_comp.right.value
    if isinstance(index_value, str) or isinstance(query_value, str):
        # Categorical equality only subsumes on exact match (handled above).
        return False
    greater_ops = (CompareOp.GT, CompareOp.GE)
    less_ops = (CompareOp.LT, CompareOp.LE)
    if index_comp.op in greater_ops:
        if query_comp.op in greater_ops:
            if query_value > index_value:
                return True
            if query_value == index_value:
                return not (
                    index_comp.op is CompareOp.GT and query_comp.op is CompareOp.GE
                )
            return False
        if query_comp.op is CompareOp.EQ:
            return index_comp.op.apply(query_value, index_value)
        return False
    if index_comp.op in less_ops:
        if query_comp.op in less_ops:
            if query_value < index_value:
                return True
            if query_value == index_value:
                return not (
                    index_comp.op is CompareOp.LT and query_comp.op is CompareOp.LE
                )
            return False
        if query_comp.op is CompareOp.EQ:
            return index_comp.op.apply(query_value, index_value)
        return False
    return False


def predicate_subsumes(index_pred: Predicate, query_pred: Predicate) -> bool:
    """True if the index's predicate is implied by the query's predicate.

    Every conjunct of the index predicate must be subsumed by some conjunct of
    the query predicate; otherwise the index might be missing edges the query
    needs and cannot be used as an access path.
    """
    query_conjuncts = query_pred.conjuncts()
    return all(
        any(comparison_subsumes(ic, qc) for qc in query_conjuncts)
        for ic in index_pred.conjuncts()
    )


def residual_conjuncts(
    index_pred: Predicate, query_pred: Predicate
) -> List[Comparison]:
    """Query conjuncts that are not *exactly* guaranteed by the index lists.

    These must still be evaluated by a FILTER (or during the extension) even
    when the index is usable: e.g. an index on ``amt > 10000`` used for a
    query with ``amt > 15000`` leaves the ``amt > 15000`` check as residual.
    """
    index_conjuncts = [c.normalized() for c in index_pred.conjuncts()]
    residual = []
    for query_comp in query_pred.conjuncts():
        if query_comp.normalized() not in index_conjuncts:
            residual.append(query_comp)
    return residual
