"""Round-trip pickling of the runtime's typed errors with their attachments.

The default exception reduction replays only ``args`` — for these classes
that is just the message, so ``stats``/``timeout``/admission context would
silently vanish the first time an error crosses a process pool's exception
transport or the server boundary.  Each class carries a ``__reduce__``
replaying its full constructor; these tests pin that contract both through
``pickle`` directly and through a real ``multiprocessing`` pool.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle

import pytest

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    WorkerCrashError,
)
from repro.query.backends import fork_available
from repro.query.operators import ExecutionStats
from repro.server.pools import PayloadMissing


def _stats() -> ExecutionStats:
    stats = ExecutionStats()
    stats.lists_accessed = 7
    stats.output_rows = 1234
    stats.retries = 2
    stats.morsels_recovered = 1
    stats.deadline_remaining = 0.0
    return stats


def _assert_stats_equal(left: ExecutionStats, right: ExecutionStats) -> None:
    assert dataclasses.astuple(left) == dataclasses.astuple(right)


@pytest.mark.parametrize("protocol", [2, pickle.HIGHEST_PROTOCOL])
def test_query_timeout_error_round_trip(protocol):
    error = QueryTimeoutError(
        "query exceeded its 1.5s deadline", stats=_stats(), timeout=1.5
    )
    clone = pickle.loads(pickle.dumps(error, protocol=protocol))
    assert type(clone) is QueryTimeoutError
    assert str(clone) == str(error)
    assert clone.timeout == 1.5
    _assert_stats_equal(clone.stats, error.stats)


@pytest.mark.parametrize("protocol", [2, pickle.HIGHEST_PROTOCOL])
def test_query_cancelled_error_round_trip(protocol):
    error = QueryCancelledError("query cancelled via token", stats=_stats())
    clone = pickle.loads(pickle.dumps(error, protocol=protocol))
    assert type(clone) is QueryCancelledError
    assert str(clone) == str(error)
    _assert_stats_equal(clone.stats, error.stats)


def test_worker_crash_error_round_trip():
    error = WorkerCrashError("morsel 3 [10, 20) lost: worker died")
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is WorkerCrashError
    assert str(clone) == str(error)


def test_server_overloaded_error_round_trip():
    error = ServerOverloadedError(
        "admission queue full",
        policy="reject",
        queue_depth=8,
        max_queue_depth=8,
    )
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is ServerOverloadedError
    assert str(clone) == str(error)
    assert clone.policy == "reject"
    assert clone.queue_depth == 8
    assert clone.max_queue_depth == 8


def test_server_closed_error_round_trip():
    error = ServerClosedError("server is draining")
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is ServerClosedError
    assert str(clone) == str(error)


def test_payload_missing_round_trip():
    error = PayloadMissing(17, 3)
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is PayloadMissing
    assert clone.plan_id == 17
    assert clone.generation == 3


def test_stats_attachment_survives_error_chaining():
    # Attaching fresh stats after construction (what the dispatcher does
    # when it annotates a propagating error with the merged partials) must
    # also survive a round trip.
    error = QueryTimeoutError("late", stats=None, timeout=0.5)
    error.stats = _stats()
    clone = pickle.loads(pickle.dumps(error))
    _assert_stats_equal(clone.stats, error.stats)


def _raise_timeout_in_worker(_):
    raise QueryTimeoutError("worker-side deadline", stats=_stats(), timeout=2.0)


@pytest.mark.skipif(not fork_available(), reason="needs cheap fork pools")
def test_timeout_error_crosses_a_real_process_boundary():
    pool = multiprocessing.get_context("fork").Pool(processes=1)
    try:
        with pytest.raises(QueryTimeoutError) as excinfo:
            pool.apply(_raise_timeout_in_worker, (None,))
    finally:
        pool.terminate()
        pool.join()
    assert excinfo.value.timeout == 2.0
    _assert_stats_equal(excinfo.value.stats, _stats())
