"""Tests for offset lists, ID lists, search helpers, and memory accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.types import EDGE_ID_BYTES, PAGE_SIZE, VERTEX_ID_BYTES
from repro.storage.id_lists import IdLists
from repro.storage.memory import MemoryBreakdown, MemoryReport, format_bytes
from repro.storage.offset_lists import OffsetLists, bytes_needed
from repro.storage.search import (
    equal_range,
    group_by_sorted_key,
    intersect_sorted,
    prefix_below,
    range_between,
    suffix_above,
)


class TestBytesNeeded:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (255, 1), (256, 2), (65535, 2), (65536, 3), (2**24, 4), (-1, 1)],
    )
    def test_widths(self, value, expected):
        assert bytes_needed(value) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**40))
    def test_width_is_sufficient_and_minimal(self, value):
        width = bytes_needed(value)
        assert value < 1 << (8 * width)
        if width > 1:
            assert value >= 1 << (8 * (width - 1))


class TestOffsetLists:
    def test_resolution_round_trip(self):
        primary_edges = np.arange(100, 120, dtype=np.int64)
        primary_nbrs = np.arange(200, 220, dtype=np.int32)
        offsets = np.array([0, 3, 5], dtype=np.int64)
        bounds = np.array([7, 7, 7], dtype=np.int64)
        lists = OffsetLists(offsets, bounds)
        edge_ids, nbr_ids = lists.resolve(0, 3, 10, primary_edges, primary_nbrs)
        assert list(edge_ids) == [110, 113, 115]
        assert list(nbr_ids) == [210, 213, 215]

    def test_paged_byte_accounting(self):
        # Two pages: bounds 0..63 -> page 0, bound 64 -> page 1.
        offsets = np.array([3, 300, 2], dtype=np.int64)
        bounds = np.array([0, 1, 64], dtype=np.int64)
        lists = OffsetLists(offsets, bounds)
        # Page 0 has max offset 300 -> 2 bytes each for 2 entries;
        # page 1 has max offset 2 -> 1 byte for 1 entry.
        assert lists.nbytes() == 2 * 2 + 1

    def test_empty(self):
        lists = OffsetLists(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert lists.nbytes() == 0
        assert len(lists) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            OffsetLists(np.array([1]), np.array([1, 2]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=80,
        )
    )
    def test_accounting_bounded_by_worst_case(self, pairs):
        """The paged layout never charges more than 4 bytes per entry and
        never less than 1 byte per entry."""
        pairs.sort(key=lambda p: p[0])
        bounds = np.array([p[0] for p in pairs], dtype=np.int64)
        offsets = np.array([p[1] for p in pairs], dtype=np.int64)
        lists = OffsetLists(offsets, bounds)
        if len(pairs):
            assert len(pairs) <= lists.nbytes() <= 4 * len(pairs)
        else:
            assert lists.nbytes() == 0


class TestIdLists:
    def test_byte_accounting(self):
        lists = IdLists(np.arange(10, dtype=np.int64), np.arange(10, dtype=np.int32))
        assert lists.nbytes() == 10 * (EDGE_ID_BYTES + VERTEX_ID_BYTES)

    def test_slice(self):
        lists = IdLists(np.arange(10), np.arange(10, 20))
        edges, nbrs = lists.slice(2, 5)
        assert list(edges) == [2, 3, 4]
        assert list(nbrs) == [12, 13, 14]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            IdLists(np.arange(3), np.arange(4))


class TestSearchHelpers:
    def test_equal_range(self):
        values = np.array([1, 2, 2, 2, 5])
        assert equal_range(values, 2) == (1, 4)
        assert equal_range(values, 3) == (4, 4)

    def test_prefix_and_suffix(self):
        values = np.array([1, 2, 3, 4, 5])
        assert prefix_below(values, 3) == 2
        assert prefix_below(values, 3, inclusive=True) == 3
        assert suffix_above(values, 3) == 3
        assert suffix_above(values, 3, inclusive=True) == 2

    def test_range_between(self):
        values = np.array([1, 2, 3, 4, 5])
        assert range_between(values, 2, 4) == (1, 3)
        assert range_between(values, None, 3) == (0, 2)
        assert range_between(values, 10, None) == (5, 5)
        lo, hi = range_between(values, 4, 2)
        assert hi >= lo

    def test_intersect_sorted(self):
        a = np.array([1, 2, 3, 7])
        b = np.array([2, 3, 5, 7])
        c = np.array([3, 7, 9])
        assert list(intersect_sorted([a, b, c])) == [3, 7]
        assert list(intersect_sorted([a, np.array([])])) == []
        assert list(intersect_sorted([])) == []

    def test_group_by_sorted_key(self):
        keys = np.array([1, 1, 2, 5, 5, 5])
        runs = list(group_by_sorted_key(keys))
        assert [(k, e - s) for k, s, e in runs] == [(1, 2), (2, 1), (5, 3)]


class TestMemoryReport:
    def test_totals_and_ratio(self):
        a = MemoryBreakdown("a", id_list_bytes=100, partition_level_bytes=20)
        b = MemoryBreakdown("b", offset_list_bytes=30)
        report = MemoryReport([a, b])
        baseline = MemoryReport([a])
        assert report.total == 150
        assert report.ratio_to(baseline) == pytest.approx(150 / 120)
        assert "TOTAL" in report.format_table()
        assert a.as_dict()["total"] == 120

    def test_format_bytes(self):
        assert format_bytes(10) == "10 B"
        assert "KiB" in format_bytes(2048)
        assert "MiB" in format_bytes(5 * 1024 * 1024)
